//! The paper's headline validation claims, reproduced as tests:
//!
//! * Table 3: the epoch model's MLP matches the cycle-accurate
//!   simulator's, closely at 1000-cycle latency;
//! * Table 4: the CPI equation predicts measured CPI within a few
//!   percent, even across configurations;
//! * MLP improves monotonically with latency in the cycle model
//!   (relatively more overlap time), approaching the epoch model.

use mlp_experiments::{exp, RunScale};
use mlp_model::pct_error;
use mlpsim::IssueConfig;

fn quick() -> RunScale {
    RunScale::quick()
}

#[test]
fn table3_mlpsim_matches_cyclesim() {
    // A representative slice of the grid (the full grid runs in the
    // experiments binary).
    let t3 = exp::table3::run_grid(quick(), &[32, 64], &[IssueConfig::A, IssueConfig::C]);
    assert_eq!(t3.rows.len(), 3 * 2 * 2);
    for r in &t3.rows {
        assert!(
            r.error_at_1000() < 0.08,
            "{} {}{}: MLPsim {:.3} vs CycleSim@1000 {:.3}",
            r.kind.name(),
            r.size,
            r.issue.letter(),
            r.mlpsim,
            r.cyclesim[2]
        );
    }
    assert!(t3.max_error_at_1000() < 0.08);
}

#[test]
fn table3_agreement_improves_with_latency() {
    let t3 = exp::table3::run_grid(quick(), &[64], &[IssueConfig::C]);
    for r in &t3.rows {
        let err_200 = (r.mlpsim - r.cyclesim[0]).abs() / r.cyclesim[0];
        let err_1000 = r.error_at_1000();
        // The epoch model assumes off-chip latency dwarfs on-chip time, so
        // its fit is best at 1000 cycles (allow slack for noise).
        assert!(
            err_1000 <= err_200 + 0.03,
            "{}: err@1000 {:.3} vs err@200 {:.3}",
            r.kind.name(),
            err_1000,
            err_200
        );
    }
}

#[test]
fn table4_cpi_equation_predicts_measured_cpi() {
    let t4 = exp::table4::run(quick());
    for r in &t4.rows {
        // Same-config estimate: tight agreement (paper: within 2%; allow
        // extra tolerance at the reduced test scale).
        let si = exp::table4::CONFIGS
            .iter()
            .position(|&c| c == r.target)
            .unwrap();
        let own = pct_error(r.estimated[si], r.measured).abs();
        assert!(
            own < 6.0,
            "{} {}: own-config estimate off by {:.1}% ({:.2} vs {:.2})",
            r.kind.name(),
            r.target.letter(),
            own,
            r.estimated[si],
            r.measured
        );
        // Cross-config estimates stay close too.
        assert!(
            r.max_error_pct() < 10.0,
            "{} {}: worst cross-config error {:.1}%",
            r.kind.name(),
            r.target.letter(),
            r.max_error_pct()
        );
    }
}

#[test]
fn table1_components_are_consistent() {
    let t1 = exp::table1::run_with_latencies(quick(), &[1000]);
    for r in &t1.rows {
        // CPI decomposes into the two components by construction; the
        // derived overlap must be a valid fraction and the off-chip part
        // must dominate for the database workload at 1000 cycles.
        assert!((r.cpi_on_chip + r.cpi_off_chip - r.cpi).abs() < 0.05 * r.cpi);
        assert!((0.0..=1.0).contains(&r.overlap_cm));
        assert!(r.mlp >= 1.0);
    }
    let db = t1.row(mlp_workloads::WorkloadKind::Database, 1000).unwrap();
    assert!(
        db.cpi_off_chip > db.cpi_on_chip,
        "database at 1000 cycles is memory-dominated ({:.2} vs {:.2})",
        db.cpi_off_chip,
        db.cpi_on_chip
    );
}

#[test]
fn simulators_agree_on_random_micro_traces() {
    // Beyond the workload-level Table 3 validation: on arbitrary random
    // (but structurally valid) traces, the epoch model's MLP tracks the
    // cycle model's at high latency. Fixed seeds keep this deterministic.
    use mlp_cyclesim::{CycleSim, CycleSimConfig};
    use mlp_isa::SliceTrace;
    use mlp_workloads::micro;
    use mlpsim::{MlpsimConfig, Simulator};

    let mut total_err = 0.0;
    let mut worst: f64 = 0.0;
    let n_seeds = 12;
    for seed in 0..n_seeds {
        let t = micro::random_trace(seed * 7919 + 3, 600);
        let m = Simulator::new(MlpsimConfig::default()).run(&mut SliceTrace::new(&t), 0, u64::MAX);
        let c = CycleSim::new(CycleSimConfig::default().with_mem_latency(1000)).run(
            &mut SliceTrace::new(&t),
            0,
            u64::MAX,
        );
        let err = (m.mlp() - c.mlp()).abs() / c.mlp();
        total_err += err;
        worst = worst.max(err);
    }
    let mean_err = total_err / n_seeds as f64;
    assert!(
        mean_err < 0.15,
        "mean epoch-vs-cycle MLP error {:.1}% too large",
        100.0 * mean_err
    );
    assert!(
        worst < 0.40,
        "worst-case epoch-vs-cycle MLP error {:.1}% too large",
        100.0 * worst
    );
}

#[test]
fn runahead_timing_confirms_epoch_model_prediction() {
    // The paper predicts runahead's overall speedup from MLPsim MLP via
    // the CPI equation (its simulator could not run RAE). Ours can:
    // the measured timing-domain speedup must be positive for every
    // workload, largest for the memory-bound ones, and in the same
    // ballpark as the epoch-model prediction.
    let rt = mlp_experiments::exp::extensions::run_rae_timing(quick());
    let (db_m, db_p) = rt.speedups(mlp_workloads::WorkloadKind::Database).unwrap();
    let (jbb_m, _) = rt
        .speedups(mlp_workloads::WorkloadKind::SpecJbb2000)
        .unwrap();
    let (web_m, web_p) = rt.speedups(mlp_workloads::WorkloadKind::SpecWeb99).unwrap();
    assert!(db_m > 20.0, "database runahead speedup {db_m:.1}%");
    assert!(jbb_m > 20.0, "jbb runahead speedup {jbb_m:.1}%");
    assert!(web_m > 0.0, "web runahead speedup {web_m:.1}%");
    assert!(db_m > web_m, "memory-bound workloads gain more");
    // Prediction within a factor of two of measurement (model limits:
    // serializing drains' on-chip cost is folded into CPI_on).
    assert!(
        db_p > 0.5 * db_m && db_p < 2.0 * db_m,
        "{db_p:.1} vs {db_m:.1}"
    );
    assert!(
        web_p > 0.4 * web_m && web_p < 2.5 * web_m,
        "{web_p:.1} vs {web_m:.1}"
    );
}
