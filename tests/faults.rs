//! End-to-end fault-injection suite: prove that one faulted experiment
//! cannot take the batch down, and that the survivors' output is
//! byte-identical to a fault-free run.
//!
//! Like the golden suite, this drives quick-scale simulator runs and is
//! therefore compiled out of debug builds
//! (`cargo test --release -p mlp-experiments --test faults`);
//! `scripts/check.sh` runs it. The tests spawn the real binaries with
//! `MLP_FAULT` armed in the child environment, so the global fault state
//! of this test process is never touched.
#![cfg(not(debug_assertions))]

use mlp_experiments::report::Report;
use mlp_experiments::RunScale;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn experiments_bin() -> &'static str {
    env!("CARGO_BIN_EXE_mlp-experiments")
}

fn trace_bin() -> &'static str {
    env!("CARGO_BIN_EXE_mlp-trace")
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// A scratch directory unique to this test process + label.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlp-faults-{}-{label}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `mlp-experiments` with a controlled environment: one worker
/// thread (so runs are cheap and deterministic on any host) and exactly
/// the given `MLP_FAULT` arming.
fn run_experiments(args: &[&str], fault: Option<&str>) -> Output {
    let mut cmd = Command::new(experiments_bin());
    cmd.args(args)
        .env_remove("MLP_FAULT")
        .env_remove("MLP_BLESS")
        .env("MLP_THREADS", "1");
    if let Some(spec) = fault {
        cmd.env("MLP_FAULT", spec);
    }
    cmd.output().expect("spawn mlp-experiments")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// The core acceptance test: inject a panic into the first selected
/// experiment's sweep and check that (a) the CLI exits 1 but completes
/// the remaining experiments, (b) the faulted experiment gets a
/// `status: "failed"` report/v2 JSON carrying the injected panic
/// message, and (c) the survivors' text and JSON output is byte-for-byte
/// identical to a fault-free invocation.
#[test]
fn injected_sweep_panic_leaves_survivors_byte_identical() {
    // table5, epochs and fm are the three cheapest experiments; they run
    // in registry order, so sweep job #1 of the batch belongs to table5.
    let selector = "table5,epochs,fm";
    let clean_dir = scratch("clean");
    let faulted_dir = scratch("faulted");

    let clean = run_experiments(
        &[
            "--only",
            selector,
            "--scale",
            "quick",
            "--json",
            clean_dir.to_str().unwrap(),
        ],
        None,
    );
    assert!(
        clean.status.success(),
        "clean run must exit 0; stderr:\n{}",
        stderr_of(&clean)
    );

    let faulted = run_experiments(
        &[
            "--only",
            selector,
            "--scale",
            "quick",
            "--json",
            faulted_dir.to_str().unwrap(),
        ],
        Some("sweep-panic:1"),
    );
    assert_eq!(
        faulted.status.code(),
        Some(1),
        "partial failure must exit 1; stderr:\n{}",
        stderr_of(&faulted)
    );

    let clean_stdout = stdout_of(&clean);
    let faulted_stdout = stdout_of(&faulted);

    // The failure stayed inside table5...
    let failed_json = read(&faulted_dir.join("table5.quick.json"));
    assert!(failed_json.contains("\"schema\": \"mlp-experiments.report/v2\""));
    assert!(failed_json.contains("\"status\": \"failed\""));
    assert!(
        failed_json.contains("injected fault: sweep-panic:1"),
        "degraded report must carry the panic payload:\n{failed_json}"
    );
    assert!(failed_json.contains("\"elapsed_ms\": "));
    assert!(faulted_stdout.contains("== failure summary: 1 of 3 experiments failed =="));
    assert!(faulted_stdout.contains("injected fault: sweep-panic:1"));

    // ...and the survivors are byte-identical to the clean run, which in
    // turn matches the blessed golden snapshots.
    for name in ["epochs", "fm"] {
        let clean_json = read(&clean_dir.join(format!("{name}.quick.json")));
        let faulted_json = read(&faulted_dir.join(format!("{name}.quick.json")));
        assert_eq!(
            clean_json, faulted_json,
            "{name}: surviving JSON must not be perturbed by a sibling's fault"
        );
        assert!(clean_json.contains("\"status\": \"ok\""));

        let golden_text = read(&golden_dir().join(format!("{name}.quick.txt")));
        assert!(
            clean_stdout.contains(&golden_text) && faulted_stdout.contains(&golden_text),
            "{name}: both runs must print the golden text rendering verbatim"
        );
    }

    // The faulted experiment's normal output is gone from the faulted
    // run (it never completed), but present in the clean one.
    let table5_text = read(&golden_dir().join("table5.quick.txt"));
    assert!(clean_stdout.contains(&table5_text));
    assert!(!faulted_stdout.contains(&table5_text));

    let _ = fs::remove_dir_all(&clean_dir);
    let _ = fs::remove_dir_all(&faulted_dir);
}

/// A truncated trace cursor must fail the run loudly (via the runner's
/// drained-cursor guard) instead of producing silently short statistics,
/// and the failure must be contained like any other panic.
#[test]
fn cursor_truncation_fails_loudly_and_is_contained() {
    let dir = scratch("truncate");
    let out = run_experiments(
        &[
            "--only",
            "epochs",
            "--scale",
            "quick",
            "--json",
            dir.to_str().unwrap(),
        ],
        Some("cursor-truncate:1000"),
    );
    assert_eq!(out.status.code(), Some(1));
    let json = read(&dir.join("epochs.quick.json"));
    assert!(json.contains("\"status\": \"failed\""));
    assert!(
        json.contains("drained its trace"),
        "the drained-cursor guard must name the failure:\n{json}"
    );
    assert!(
        json.contains("sweep point"),
        "the panic must name the sweep point that hit the fault:\n{json}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Usage errors exit 2, distinct from experiment failures.
#[test]
fn usage_errors_exit_2() {
    for args in [
        &[] as &[&str],
        &["no-such-experiment"],
        &["--scale", "bogus", "all"],
    ] {
        let out = run_experiments(args, None);
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} must be a usage error"
        );
    }
    // An injected fault must not masquerade as a usage error.
    let out = run_experiments(&["--list"], Some("sweep-panic:1"));
    assert!(out.status.success(), "--list runs no sweeps, nothing fires");
}

/// Pins the degraded-mode report shape: schema v2 with `status`,
/// `error` and `elapsed_ms` ahead of the (empty) axes and rows. Bless
/// with `MLP_BLESS=1` like the golden suite.
#[test]
fn degraded_report_shape_matches_golden() {
    let report = Report::failed(
        "demo",
        "Demo experiment",
        "§0",
        RunScale::quick(),
        "injected fault: sweep-panic:1 (occurrence 1)".to_string(),
        1234,
    );
    let json = report.to_json();
    let path = golden_dir().join("degraded.report.json");
    if std::env::var_os("MLP_BLESS").is_some() {
        fs::create_dir_all(golden_dir()).expect("create golden dir");
        fs::write(&path, &json).expect("write degraded golden");
        return;
    }
    let want = read(&path);
    assert_eq!(
        json, want,
        "degraded-mode report shape drifted from tests/golden/degraded.report.json \
         (bless with MLP_BLESS=1 if the change is intentional)"
    );
}

/// `mlp-trace` exit-code policy: 2 for usage, 1 for I/O and corrupt
/// traces, with the record index of the corruption on stderr.
#[test]
fn mlp_trace_error_paths() {
    let dir = scratch("trace");
    let trace = dir.join("t.bin");
    let trace_str = trace.to_str().unwrap();

    let usage = Command::new(trace_bin()).output().expect("spawn");
    assert_eq!(usage.status.code(), Some(2));

    let missing = Command::new(trace_bin())
        .args(["stats", dir.join("nope.bin").to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(missing.status.code(), Some(1));
    assert!(stderr_of(&missing).contains("mlp-trace: cannot open"));

    let gen = Command::new(trace_bin())
        .args(["gen", "db", "100", trace_str])
        .output()
        .expect("spawn");
    assert!(gen.status.success(), "stderr:\n{}", stderr_of(&gen));

    // Corrupt the kind byte of record 3 (16-byte header, 40-byte records).
    let mut bytes = fs::read(&trace).expect("read trace");
    let kind_byte = 16 + 3 * 40 + 32;
    let orig = bytes[kind_byte];
    bytes[kind_byte] = 0xee;
    fs::write(&trace, &bytes).expect("rewrite trace");
    let corrupt = Command::new(trace_bin())
        .args(["stats", trace_str])
        .output()
        .expect("spawn");
    assert_eq!(corrupt.status.code(), Some(1));
    let err = stderr_of(&corrupt);
    assert!(
        err.contains("corrupt trace record 3"),
        "corruption report must carry the record index, got:\n{err}"
    );

    // Trailing garbage is corruption too, reported at one past the end.
    bytes[kind_byte] = orig;
    bytes.push(0xff);
    fs::write(&trace, &bytes).expect("rewrite trace");
    let trailing = Command::new(trace_bin())
        .args(["stats", trace_str])
        .output()
        .expect("spawn");
    assert_eq!(trailing.status.code(), Some(1));
    assert!(stderr_of(&trailing).contains("corrupt trace record 100"));

    let _ = fs::remove_dir_all(&dir);
}
