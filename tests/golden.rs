//! Golden-snapshot regression suite: every registered experiment, run at
//! quick scale, must reproduce its checked-in text rendering and JSON
//! report byte for byte.
//!
//! Quick-scale runs take seconds to minutes apiece in release mode and
//! far longer unoptimized, so the suite only exists in release builds
//! (`cargo test --release --test golden`); `scripts/check.sh` runs it.
//! To regenerate the snapshots after an intentional change:
//!
//! ```text
//! MLP_BLESS=1 cargo test --release -p mlp-experiments --test golden
//! ```
#![cfg(not(debug_assertions))]

use mlp_experiments::registry;
use mlp_experiments::RunScale;
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn check(name: &str) {
    let e = registry::find(name).expect("experiment is registered");
    let run = e.run(RunScale::quick());
    assert_eq!(
        run.report.filename(),
        format!("{name}.quick.json"),
        "report filename must follow the <name>.<scale>.json convention"
    );
    let dir = golden_dir();
    let txt_path = dir.join(format!("{name}.quick.txt"));
    let json_path = dir.join(format!("{name}.quick.json"));
    let json = run.report.to_json();

    if std::env::var_os("MLP_BLESS").is_some() {
        fs::create_dir_all(&dir).expect("create golden dir");
        fs::write(&txt_path, &run.text).expect("write text golden");
        fs::write(&json_path, &json).expect("write json golden");
        return;
    }

    let want_txt = fs::read_to_string(&txt_path).unwrap_or_else(|_| {
        panic!(
            "missing golden {} — bless with MLP_BLESS=1 cargo test --release --test golden",
            txt_path.display()
        )
    });
    assert_eq!(
        run.text, want_txt,
        "{name}: text output drifted from tests/golden/{name}.quick.txt \
         (bless with MLP_BLESS=1 if the change is intentional)"
    );
    let want_json = fs::read_to_string(&json_path).unwrap_or_else(|_| {
        panic!(
            "missing golden {} — bless with MLP_BLESS=1 cargo test --release --test golden",
            json_path.display()
        )
    });
    assert_eq!(
        json, want_json,
        "{name}: JSON report drifted from tests/golden/{name}.quick.json \
         (bless with MLP_BLESS=1 if the change is intentional)"
    );
}

macro_rules! golden {
    ($($test:ident => $name:literal),* $(,)?) => {
        $(#[test] fn $test() { check($name); })*

        /// The macro list above must cover the registry exactly.
        #[test]
        fn suite_covers_every_registered_experiment() {
            let listed: BTreeSet<&str> = [$($name),*].into();
            let registered: BTreeSet<&str> = registry::names().into_iter().collect();
            assert_eq!(listed, registered);
        }
    };
}

golden! {
    golden_table1 => "table1",
    golden_figure2 => "figure2",
    golden_table3 => "table3",
    golden_table4 => "table4",
    golden_table5 => "table5",
    golden_figure4 => "figure4",
    golden_figure5 => "figure5",
    golden_figure6 => "figure6",
    golden_figure7 => "figure7",
    golden_figure8 => "figure8",
    golden_figure9 => "figure9",
    golden_figure10 => "figure10",
    golden_figure11 => "figure11",
    golden_store_mlp => "store-mlp",
    golden_ablations => "ablations",
    golden_epochs => "epochs",
    golden_fm => "fm",
    golden_l3 => "l3",
    golden_smt => "smt",
    golden_rae_timing => "rae-timing",
    golden_sweep1000 => "sweep1000",
}

/// Every file in the golden directory must belong to a registered
/// experiment — stale snapshots fail loudly instead of lingering.
#[test]
fn golden_dir_has_no_stray_files() {
    let dir = golden_dir();
    if !dir.exists() {
        return; // Nothing blessed yet; the per-experiment tests will say so.
    }
    let mut registered: BTreeSet<String> = registry::names()
        .into_iter()
        .flat_map(|n| [format!("{n}.quick.txt"), format!("{n}.quick.json")])
        .collect();
    // The degraded-mode report snapshot belongs to tests/faults.rs.
    registered.insert("degraded.report.json".to_string());
    for entry in fs::read_dir(&dir).expect("read golden dir") {
        let file = entry.expect("dir entry").file_name();
        let file = file.to_string_lossy().into_owned();
        assert!(
            registered.contains(&file),
            "stray golden file {file}: no registered experiment claims it"
        );
    }
}
