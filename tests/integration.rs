//! Cross-crate integration tests: workloads flowing through both
//! simulators and the experiment harness end to end.

use mlp_experiments::{exp, RunScale};
use mlp_isa::{tracefile, TraceSource, VecTrace};
use mlp_workloads::{Workload, WorkloadKind};
use mlpsim::{MlpsimConfig, Simulator};

fn quick() -> RunScale {
    RunScale::quick()
}

#[test]
fn workload_survives_trace_file_round_trip() {
    let mut wl = Workload::new(WorkloadKind::Database, 7);
    let insts = wl.take_insts(20_000);
    let mut buf = Vec::new();
    tracefile::write(&mut buf, &insts).expect("write trace");
    let back = tracefile::read(buf.as_slice()).expect("read trace");
    assert_eq!(back, insts);

    // Simulating the replayed trace gives the same result as the stream.
    let a = Simulator::new(MlpsimConfig::default()).run(
        &mut VecTrace::new(insts.clone()),
        5_000,
        u64::MAX,
    );
    let b = Simulator::new(MlpsimConfig::default()).run(&mut VecTrace::new(back), 5_000, u64::MAX);
    assert_eq!(a.offchip, b.offchip);
    assert_eq!(a.epochs, b.epochs);
}

#[test]
fn table5_in_order_ordering_holds() {
    let t5 = exp::table5::run(quick());
    for row in &t5.rows {
        assert!(
            row.stall_on_use >= row.stall_on_miss - 1e-9,
            "{}: stall-on-use {} must be at least stall-on-miss {}",
            row.kind.name(),
            row.stall_on_use,
            row.stall_on_miss
        );
        assert!(row.stall_on_miss >= 1.0);
    }
    // SPECweb99's software prefetches give it the highest in-order MLP
    // (the paper's Table 5).
    let web = t5.row(WorkloadKind::SpecWeb99).unwrap();
    let jbb = t5.row(WorkloadKind::SpecJbb2000).unwrap();
    assert!(web.stall_on_miss > jbb.stall_on_miss);
}

#[test]
fn figure4_mlp_grows_with_window_and_aggressiveness() {
    let f4 = exp::figure4::run(quick());
    for s in &f4.surfaces {
        // Config E at 256 entries dominates config A at 16 entries.
        let low = s.mlp[0][0];
        let high = s.mlp[exp::figure4::SIZES.len() - 1][4];
        assert!(
            high > low,
            "{}: 256E ({high}) must exceed 16A ({low})",
            s.kind.name()
        );
        // Within config E, MLP is (weakly) monotone in window size.
        for w in s.mlp.windows(2) {
            assert!(w[1][4] >= w[0][4] - 0.05);
        }
    }
}

#[test]
fn figure6_decoupling_helps() {
    let f6 = exp::figure6::run_grid(
        quick(),
        &[64],
        &[mlpsim::IssueConfig::D, mlpsim::IssueConfig::E],
    );
    for kind in WorkloadKind::ALL {
        for issue in [mlpsim::IssueConfig::D, mlpsim::IssueConfig::E] {
            let bar = f6.bar(kind, 64, issue).unwrap();
            assert!(
                bar.by_mult[3] >= bar.by_mult[0] - 0.02,
                "{kind}: ROB 8x ({:.3}) should not lose to 1x ({:.3})",
                bar.by_mult[3],
                bar.by_mult[0]
            );
        }
        // The INF reference is the ceiling of the coupled config-E bar.
        let inf = f6.inf_mlp(kind).unwrap();
        let bar = f6.bar(kind, 64, mlpsim::IssueConfig::E).unwrap();
        assert!(inf >= bar.by_mult[0] - 0.02);
    }
}

#[test]
fn figure8_runahead_dominates_conventional() {
    let f8 = exp::figure8::run(quick());
    for r in &f8.rows {
        assert!(
            r.rae > r.conv_256 && r.conv_256 >= r.conv_64 - 0.02,
            "{}: RAE {:.3} vs 256 {:.3} vs 64 {:.3}",
            r.kind.name(),
            r.rae,
            r.conv_256,
            r.conv_64
        );
        assert!(
            r.gain_over_64() > 20.0,
            "{}: RAE gain should be large",
            r.kind.name()
        );
    }
}

#[test]
fn figure9_value_prediction_never_hurts() {
    let f9 = exp::figure9::run(quick());
    for r in &f9.rows {
        let g = r.gains();
        for (k, &gain) in g.iter().enumerate() {
            assert!(
                gain > -1.0,
                "{} config {k}: VP must not hurt ({gain:.2}%)",
                r.kind.name()
            );
        }
        // Table 6 sanity: rates form a distribution.
        let (c, w, n) = r.accuracy;
        assert!((c + w + n - 1.0).abs() < 1e-6);
        assert!(c > 0.05, "{}: some predictability expected", r.kind.name());
    }
}

#[test]
fn figure10_perfect_arms_dominate_base() {
    let f10 = exp::figure10::run(quick());
    for series in f10.rae.iter().chain(f10.conventional.iter()) {
        let base = series.mlp[0];
        for (k, &m) in series.mlp.iter().enumerate().skip(1) {
            assert!(
                m >= base - 0.05,
                "{} arm {k}: perfect feature must not reduce MLP ({m:.3} vs {base:.3})",
                series.kind.name()
            );
        }
        // perfVP+perfBP is the strongest single arm.
        let combo = series.mlp[4];
        assert!(combo >= series.mlp[2] - 0.05 && combo >= series.mlp[3] - 0.05);
    }
}

#[test]
fn figure7_database_mlp_shrinks_with_cache() {
    let f7 = exp::figure7::run(quick());
    let db = f7.series_for(WorkloadKind::Database).unwrap();
    let first = db.points.first().unwrap();
    let last = db.points.last().unwrap();
    assert!(
        last.0 <= first.0 + 0.05,
        "database MLP should not grow with L2 size ({:.3} -> {:.3})",
        first.0,
        last.0
    );
    // Miss rate strictly falls with capacity.
    assert!(last.1 < first.1);
}

#[test]
fn figure2_misses_are_clustered() {
    let f2 = exp::figure2::run(quick());
    let idx = exp::figure2::THRESHOLDS
        .iter()
        .position(|&t| t == 100)
        .unwrap();
    for s in &f2.series {
        // The observed CDF must exceed the uniform one at short distances.
        // The paper's Figure 2: the divergence is extreme for SPECjbb2000
        // and SPECweb99, milder for the database workload.
        let factor = if s.kind == WorkloadKind::Database {
            1.15
        } else {
            2.0
        };
        assert!(
            s.observed[idx] > factor * s.uniform[idx],
            "{}: observed {:.3} vs uniform {:.3} at distance 100",
            s.kind.name(),
            s.observed[idx],
            s.uniform[idx]
        );
    }
}

#[test]
fn store_buffer_study_shows_database_sensitivity() {
    let study = exp::extensions::run_store_buffer(quick());
    let db = study.series_for(WorkloadKind::Database).unwrap();
    let (tiny_mlp, tiny_smlp) = db.points.first().unwrap();
    let (inf_mlp, inf_smlp) = db.points.last().unwrap();
    assert!(
        inf_smlp > tiny_smlp,
        "store MLP must grow with buffer size ({tiny_smlp:.2} -> {inf_smlp:.2})"
    );
    assert!(
        inf_mlp >= tiny_mlp,
        "a bounded store buffer must not help load MLP ({tiny_mlp:.2} -> {inf_mlp:.2})"
    );
}

#[test]
fn epoch_distributions_shift_right_under_runahead() {
    let stats = exp::epochs::run(quick());
    for kind in WorkloadKind::ALL {
        let conv = stats.distribution(kind, "64C").unwrap();
        let rae = stats.distribution(kind, "RAE").unwrap();
        // Runahead has fewer single-access epochs: its CDF at <=1 is lower.
        assert!(
            rae.cdf[0] <= conv.cdf[0] + 0.02,
            "{kind}: RAE <=1 share {:.2} vs conventional {:.2}",
            rae.cdf[0],
            conv.cdf[0]
        );
        assert!(rae.mlp >= conv.mlp);
        // CDFs are monotone and end at 1 for the conventional core (its
        // window bounds epoch size).
        assert!(conv.cdf.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert!(conv.cdf.last().unwrap() > &0.999);
    }
}
