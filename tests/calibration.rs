//! Calibration tests: the synthetic workloads must reproduce the
//! statistics the paper publishes for its (proprietary) traces, within
//! tolerance bands. Achieved values are recorded in `EXPERIMENTS.md`.

use mlp_isa::{InstMix, TraceSource};
use mlp_mem::{Hierarchy, HierarchyConfig};
use mlp_workloads::{Workload, WorkloadKind};

const WARM: u64 = 500_000;
const MEASURE: u64 = 1_500_000;

/// Measures the off-chip miss rate per 100 instructions (ifetch + load +
/// prefetch; stores are absorbed by the store buffer).
fn miss_rate_per_100(kind: WorkloadKind) -> f64 {
    let mut wl = Workload::new(kind, 42);
    let mut mem = Hierarchy::new(HierarchyConfig::default());
    let mut counted = 0u64;
    let mut misses = 0u64;
    for n in 0..WARM + MEASURE {
        let Some(inst) = wl.next_inst() else { break };
        let mut m = mem.ifetch(inst.pc).is_off_chip() as u64;
        if let Some(acc) = inst.mem {
            m += match inst.kind {
                mlp_isa::OpKind::Prefetch => mem.prefetch(acc.addr).is_off_chip() as u64,
                mlp_isa::OpKind::Store => {
                    mem.store(acc.addr);
                    0
                }
                _ => mem.load(acc.addr).is_off_chip() as u64,
            };
        }
        if n >= WARM {
            counted += 1;
            misses += m;
        }
    }
    100.0 * misses as f64 / counted as f64
}

#[test]
fn database_miss_rate_near_paper() {
    let rate = miss_rate_per_100(WorkloadKind::Database);
    // Paper: 0.84 per 100 instructions.
    assert!(
        (0.6..=1.1).contains(&rate),
        "database miss rate {rate:.3} outside band around 0.84"
    );
}

#[test]
fn specjbb_miss_rate_near_paper() {
    let rate = miss_rate_per_100(WorkloadKind::SpecJbb2000);
    // Paper: 0.19 per 100 instructions.
    assert!(
        (0.13..=0.26).contains(&rate),
        "SPECjbb miss rate {rate:.3} outside band around 0.19"
    );
}

#[test]
fn specweb_miss_rate_near_paper() {
    let rate = miss_rate_per_100(WorkloadKind::SpecWeb99);
    // Paper: 0.09 per 100 instructions.
    assert!(
        (0.06..=0.13).contains(&rate),
        "SPECweb miss rate {rate:.3} outside band around 0.09"
    );
}

#[test]
fn miss_rates_are_ordered_like_the_paper() {
    let db = miss_rate_per_100(WorkloadKind::Database);
    let jbb = miss_rate_per_100(WorkloadKind::SpecJbb2000);
    let web = miss_rate_per_100(WorkloadKind::SpecWeb99);
    assert!(
        db > jbb && jbb > web,
        "expected DB > JBB > Web: {db:.3} {jbb:.3} {web:.3}"
    );
}

#[test]
fn jbb_casa_density_matches_paper() {
    let wl = Workload::new(WorkloadKind::SpecJbb2000, 42);
    let mix: InstMix = wl
        .take((WARM + MEASURE) as usize)
        .collect::<Vec<_>>()
        .iter()
        .collect();
    let casa = mix.frac(mix.atomics);
    // Paper: CASA makes up more than 0.6% of dynamic instructions.
    assert!(
        (0.004..=0.012).contains(&casa),
        "SPECjbb CASA fraction {casa:.4} outside band around 0.006"
    );
}

#[test]
fn only_specweb_uses_software_prefetch() {
    for kind in WorkloadKind::ALL {
        let wl = Workload::new(kind, 42);
        let mix: InstMix = wl.take(400_000).collect::<Vec<_>>().iter().collect();
        if kind == WorkloadKind::SpecWeb99 {
            assert!(mix.prefetches > 0, "SPECweb99 must emit prefetches");
        } else {
            assert_eq!(mix.prefetches, 0, "{kind} must not emit prefetches");
        }
    }
}

#[test]
fn instruction_mixes_look_like_programs() {
    for kind in WorkloadKind::ALL {
        let wl = Workload::new(kind, 42);
        let mix: InstMix = wl.take(400_000).collect::<Vec<_>>().iter().collect();
        let loads = mix.frac(mix.loads + mix.atomics);
        let stores = mix.frac(mix.stores);
        let branches = mix.frac(mix.branches());
        assert!(
            (0.1..0.45).contains(&loads),
            "{kind}: load fraction {loads:.3}"
        );
        assert!(
            (0.03..0.25).contains(&stores),
            "{kind}: store fraction {stores:.3}"
        );
        assert!(
            (0.05..0.30).contains(&branches),
            "{kind}: branch fraction {branches:.3}"
        );
    }
}

#[test]
fn branch_mispredict_rates_are_plausible() {
    use mlp_predict::{BranchObserver, BranchPredictor, BranchPredictorConfig};
    for kind in WorkloadKind::ALL {
        let wl = Workload::new(kind, 42);
        let mut bp = BranchPredictor::new(BranchPredictorConfig::default());
        for inst in wl.take(800_000) {
            if inst.is_branch() {
                bp.observe(&inst);
            }
        }
        let rate = bp.stats().mispredict_rate();
        // Commercial workloads mispredict a few percent of branches.
        assert!(
            (0.01..0.20).contains(&rate),
            "{kind}: mispredict rate {rate:.3} implausible"
        );
    }
}

#[test]
fn value_predictability_ordering_matches_table6() {
    use mlp_predict::{LastValuePredictor, ValueObserver};
    let mut rates = Vec::new();
    for kind in WorkloadKind::ALL {
        let mut wl = Workload::new(kind, 42);
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        let mut vp = LastValuePredictor::new(16 * 1024);
        let mut warm_stats = mlp_predict::ValueStats::default();
        // The cold-cache phase floods the predictor with one-off misses;
        // measure only the steady state (as the paper's warmed traces do).
        for n in 0..2 * WARM + MEASURE {
            if n == 2 * WARM {
                warm_stats = vp.stats();
            }
            let Some(inst) = wl.next_inst() else { break };
            mem.ifetch(inst.pc);
            if let Some(acc) = inst.mem {
                match inst.kind {
                    mlp_isa::OpKind::Load => {
                        if mem.load(acc.addr).is_off_chip() {
                            vp.observe(inst.pc, inst.value);
                        }
                    }
                    mlp_isa::OpKind::Store => {
                        mem.store(acc.addr);
                    }
                    mlp_isa::OpKind::Prefetch => {
                        mem.prefetch(acc.addr);
                    }
                    _ => {
                        mem.load(acc.addr);
                    }
                }
            }
        }
        let total = vp.stats();
        let measured = mlp_predict::ValueStats {
            correct: total.correct - warm_stats.correct,
            wrong: total.wrong - warm_stats.wrong,
            no_predict: total.no_predict - warm_stats.no_predict,
        };
        rates.push((kind, measured.correct_rate()));
    }
    // Paper Table 6: Database 42% > SPECweb 25% >= SPECjbb 20%.
    let db = rates[0].1;
    let jbb = rates[1].1;
    let web = rates[2].1;
    assert!(
        db > jbb && db > web,
        "database most predictable: {db:.2} {jbb:.2} {web:.2}"
    );
    assert!(
        db > 0.25,
        "database correct rate {db:.2} too low vs paper 0.42"
    );
    assert!(
        jbb > 0.08,
        "jbb correct rate {jbb:.2} too low vs paper 0.20"
    );
    assert!(
        web > 0.12,
        "web correct rate {web:.2} too low vs paper 0.25"
    );
}
