//! Regression tests for the parallel sweep engine: a sweep must produce
//! byte-identical output regardless of how many worker threads run it,
//! and trace replay through the shared store must be deterministic.

use mlp_experiments::{exp, runner, RunScale};
use mlp_isa::TraceSource;
use mlp_workloads::{TraceStore, Workload, WorkloadKind};
use std::sync::Mutex;

/// The thread override is process-global, so tests that set it must not
/// interleave.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn quick() -> RunScale {
    RunScale::quick()
}

#[test]
fn parallel_sweep_output_is_byte_identical_to_serial() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();

    // One figure sweep both ways: figure 5 over a reduced grid keeps the
    // test fast while still fanning out 12 jobs.
    let sizes = [16, 64];
    let configs = [mlpsim::IssueConfig::A, mlpsim::IssueConfig::D];

    mlp_par::set_thread_override(Some(1));
    let serial = exp::figure5::run_grid(quick(), &sizes, &configs).render();

    mlp_par::set_thread_override(Some(4));
    let parallel = exp::figure5::run_grid(quick(), &sizes, &configs).render();

    mlp_par::set_thread_override(None);

    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "a 4-thread sweep must render byte-identically to the serial run"
    );
}

#[test]
fn parallel_table_sweep_matches_serial() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();

    mlp_par::set_thread_override(Some(1));
    let serial = exp::table5::run(quick()).render();

    mlp_par::set_thread_override(Some(3));
    let parallel = exp::table5::run(quick()).render();

    mlp_par::set_thread_override(None);

    assert_eq!(serial, parallel);
}

#[test]
fn json_report_is_byte_identical_across_thread_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();

    // The structured report must be as thread-invariant as the text
    // rendering: `--json` output feeds the golden suite and downstream
    // tooling byte-for-byte.
    let e = mlp_experiments::registry::find("table5").expect("table5 is registered");

    mlp_par::set_thread_override(Some(1));
    let serial = e.run(quick());

    mlp_par::set_thread_override(Some(3));
    let parallel = e.run(quick());

    mlp_par::set_thread_override(None);

    assert_eq!(serial.report.to_json(), parallel.report.to_json());
    assert_eq!(serial.text, parallel.text);
}

#[test]
fn shared_trace_replay_is_deterministic() {
    // The store's cursor must replay exactly the instructions a fresh
    // streaming workload generates, and do so again on a second pass.
    let n = 50_000usize;
    for kind in WorkloadKind::ALL {
        let mut streamed = Workload::new(kind, runner::SEED);
        let reference = streamed.take_insts(n);

        let shared = TraceStore::global().trace(kind, runner::SEED, n);
        let first: Vec<_> = shared.cursor().take(n).collect();
        let second: Vec<_> = shared.cursor().take(n).collect();

        assert_eq!(reference, first, "{kind:?}: cursor must match the stream");
        assert_eq!(first, second, "{kind:?}: cached replay must be identical");
    }
}

#[test]
fn runner_cursor_survives_store_clear() {
    // Materializing, clearing, and re-materializing yields the same
    // trace: the store is a cache, not a source of state.
    let kind = WorkloadKind::Database;
    let before: Vec<_> = runner::cursor(kind, 1_000).take(1_000).collect();
    TraceStore::global().clear();
    let after: Vec<_> = runner::cursor(kind, 1_000).take(1_000).collect();
    assert_eq!(before, after);
}
