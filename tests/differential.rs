//! Differential cross-validation of the two engines through the
//! `mlp-obs` counter layer — the paper's Table 1/3/4 "MLPsim agrees
//! with the cycle-accurate simulator" claim as an automated gate
//! instead of a printed table.
//!
//! For every workload preset this suite:
//!
//! 1. runs MLPsim and asserts its **obs counters** (useful off-chip
//!    accesses, instructions, epochs) are *exactly* the values in its
//!    own report — the observability layer must not drift from the
//!    engine it instruments;
//! 2. runs CycleSim (at 1000-cycle off-chip latency, where the epoch
//!    model's "off-chip dwarfs on-chip" assumption holds best, like
//!    `tests/validation.rs`) and asserts the same exactness for its
//!    counters;
//! 3. asserts the two engines count the *same memory behaviour*: their
//!    useful-off-chip-access counts over **identical warmup/measure
//!    windows** agree within [`RATE_TOLERANCE`].
//!
//! Both engines must see the same trace window for step 3 — the presets
//! are bursty enough (SPECjbb especially) that the default quick-scale
//! windows (mlpsim 700k vs cyclesim 400k instructions) disagree by
//! ~19% on per-instruction rate from sampling alone. Over identical
//! windows the engines agree to within one access per preset: the only
//! divergence channels left are out-of-order issue perturbing LRU state
//! and the MSHR merge path's classification of secondary misses.
//!
//! Quick-scale simulator runs: release-only, like the golden suite.
#![cfg(not(debug_assertions))]

use mlp_cyclesim::{CycleSim, CycleSimConfig};
use mlp_experiments::exp::sweep1000;
use mlp_experiments::runner::{run_cyclesim, run_mlpsim, shared_seeded, SEED};
use mlp_experiments::RunScale;
use mlp_obs::Mode;
use mlp_workloads::WorkloadKind;
use mlpsim::{MlpsimConfig, Simulator};
use std::sync::Mutex;

/// Maximum relative disagreement between the engines' useful off-chip
/// access counts over the shared window. Measured disagreement is one
/// access in 1068 on SPECjbb2000 (0.1%) and zero on the other presets;
/// 1% gives 10× headroom while still catching any miscounted miss
/// class (the smallest class on any preset is >10% of its total).
const RATE_TOLERANCE: f64 = 0.01;

/// Both engines over the same 200k-warmup / 400k-measure trace window,
/// so their counts are directly comparable.
fn shared_window() -> RunScale {
    RunScale {
        warmup: 200_000,
        measure: 400_000,
        cycle_warmup: 200_000,
        cycle_measure: 400_000,
    }
}

/// The obs mode is process-global; the per-preset tests share one
/// counter registry and must not interleave.
static LOCK: Mutex<()> = Mutex::new(());

fn check_preset(kind: WorkloadKind) {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    mlp_obs::set_for_test(Some(Mode::Counters));
    let _ = mlp_obs::snapshot_and_reset(); // drop other tests' leftovers
    let scale = shared_window();

    let m = run_mlpsim(kind, MlpsimConfig::default(), scale);
    let m_snap = mlp_obs::snapshot_and_reset();
    assert_eq!(
        m_snap.counter("mlpsim.offchip.useful"),
        m.offchip.total(),
        "{kind:?}: mlpsim useful-offchip counter must equal its report"
    );
    assert_eq!(m_snap.counter("mlpsim.insts"), m.insts);
    assert_eq!(m_snap.counter("mlpsim.epochs"), m.epochs);
    assert_eq!(
        m_snap.counter("mlpsim.offchip.dmiss")
            + m_snap.counter("mlpsim.offchip.imiss")
            + m_snap.counter("mlpsim.offchip.pmiss"),
        m_snap.counter("mlpsim.offchip.useful"),
        "{kind:?}: off-chip kinds must sum to the useful total"
    );

    let c = run_cyclesim(
        kind,
        CycleSimConfig::default().with_mem_latency(1000),
        scale,
    );
    let c_snap = mlp_obs::snapshot_and_reset();
    assert_eq!(
        c_snap.counter("cyclesim.offchip.useful"),
        c.offchip.total(),
        "{kind:?}: cyclesim useful-offchip counter must equal its report"
    );
    assert_eq!(c_snap.counter("cyclesim.insts"), c.insts);
    assert!(
        c_snap.counter("cyclesim.mshr.high_water") >= 1,
        "{kind:?}: a preset with off-chip misses must use at least one MSHR"
    );
    mlp_obs::set_for_test(None);

    // The cross-engine claim: over the same window both engines counted
    // the same useful off-chip accesses.
    assert_eq!(m.insts, c.insts, "{kind:?}: shared window must match");
    let (m_total, c_total) = (m.offchip.total(), c.offchip.total());
    let rel = (m_total as f64 - c_total as f64).abs() / c_total as f64;
    assert!(
        rel < RATE_TOLERANCE,
        "{kind:?}: engines disagree on useful off-chip accesses over the \
         same {}-instruction window: mlpsim {m_total} vs cyclesim {c_total} \
         (rel {rel:.4})",
        m.insts,
    );
}

#[test]
fn database_engines_count_the_same_offchip_accesses() {
    check_preset(WorkloadKind::Database);
}

#[test]
fn specjbb2000_engines_count_the_same_offchip_accesses() {
    check_preset(WorkloadKind::SpecJbb2000);
}

#[test]
fn specweb99_engines_count_the_same_offchip_accesses() {
    check_preset(WorkloadKind::SpecWeb99);
}

/// The same cross-validation driven over the structure-of-arrays path
/// directly: both engines consume the *same* `TraceSoA` columns through
/// their `run_shared` entry points (no per-run decode, no cursor copy),
/// over identical warmup/measure windows. After the SoA rewrite the
/// engines must still land at most **one** useful off-chip access apart
/// per preset — the absolute bound measured before the rewrite (one in
/// 1068 on SPECjbb2000, exact agreement elsewhere), pinned here so any
/// column-classification or reconstruction bug shows up as a count
/// divergence rather than a silent drift.
#[test]
fn soa_path_engines_land_within_one_offchip_access() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scale = shared_window();
    for kind in WorkloadKind::ALL {
        let shared = shared_seeded(kind, SEED, scale.warmup + scale.measure);
        let m = Simulator::new(MlpsimConfig::default()).run_shared(
            shared.soa(),
            shared.len(),
            scale.warmup,
            scale.measure,
        );
        let c = CycleSim::new(CycleSimConfig::default().with_mem_latency(1000)).run_shared(
            shared.soa(),
            shared.len(),
            scale.cycle_warmup,
            scale.cycle_measure,
        );
        assert_eq!(
            m.insts, c.insts,
            "{kind:?}: both engines must retire the same shared window"
        );
        let (m_total, c_total) = (m.offchip.total(), c.offchip.total());
        assert!(
            m_total.abs_diff(c_total) <= 1,
            "{kind:?}: SoA-path engines diverged beyond one useful off-chip \
             access over the same {}-instruction window: mlpsim {m_total} vs \
             cyclesim {c_total}",
            m.insts,
        );
    }
}

/// Differential check of the surrogate's active-sampling loop against
/// direct simulation: the quick-scale `sweep1000` exploration must
/// converge within its budget, and every point it *did* simulate must
/// carry exactly the CPI a standalone [`sweep1000::simulate_point`]
/// call produces — bit for bit. The loop batches points by engine cell
/// and harvests free stencil labels from each cell's report; this test
/// proves that bookkeeping never relabels, scales, or approximates a
/// simulated value.
#[test]
fn surrogate_active_loop_matches_direct_simulation_bit_for_bit() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scale = RunScale::quick();
    let sweep = sweep1000::run(scale);
    assert!(
        sweep.explored.converged,
        "sweep1000 exploration must converge within budget: cv {:?} after {} rounds",
        sweep.explored.cv, sweep.explored.rounds
    );
    assert_eq!(sweep.explored.order.len(), sweep.explored.cpi.len());
    // One engine run per distinct cell (the labels share cells 18-to-1
    // thanks to the free stencil); `simulate_point` is exactly this
    // `run_cell` + `truth_cpi` composition.
    let mut reports: std::collections::BTreeMap<_, mlpsim::Report> = Default::default();
    for (&gi, &cpi) in sweep.explored.order.iter().zip(&sweep.explored.cpi) {
        let p = &sweep.grid[gi];
        let cell = sweep1000::cell_of(p);
        let report = reports
            .entry(cell)
            .or_insert_with(|| sweep1000::run_cell(cell, scale));
        let direct = sweep1000::truth_cpi(report, p.workload, p.mshrs, p.latency);
        assert_eq!(
            cpi.to_bits(),
            direct.to_bits(),
            "{p:?}: active loop recorded CPI {cpi}, direct simulation says {direct}"
        );
    }
    // A few labels through the public entry point itself, which re-runs
    // the engine from scratch — pins run-to-run determinism too.
    for (&gi, &cpi) in sweep.explored.order.iter().zip(&sweep.explored.cpi).take(3) {
        let p = &sweep.grid[gi];
        let direct = sweep1000::simulate_point(p, scale);
        assert_eq!(
            cpi.to_bits(),
            direct.to_bits(),
            "{p:?}: simulate_point disagrees with the active loop's label"
        );
    }
}

/// With observability off, the same runs record nothing at all — the
/// zero-overhead contract, checked at the counter level (the golden
/// suite checks it at the output-bytes level).
#[test]
fn disarmed_runs_record_no_counters() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    mlp_obs::set_for_test(Some(Mode::Off));
    let _ = mlp_obs::snapshot_and_reset();
    let scale = RunScale {
        warmup: 10_000,
        measure: 50_000,
        cycle_warmup: 10_000,
        cycle_measure: 20_000,
    };
    let _ = run_mlpsim(WorkloadKind::Database, MlpsimConfig::default(), scale);
    let _ = run_cyclesim(WorkloadKind::Database, CycleSimConfig::default(), scale);
    assert!(
        mlp_obs::snapshot_and_reset().is_empty(),
        "disarmed runs must leave every counter at zero"
    );
    mlp_obs::set_for_test(None);
}
