//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses — the
//! [`strategy::Strategy`] trait, `any`, ranges, tuples, `Just`,
//! `prop_oneof!` / `prop_compose!` / `proptest!`, collection and option
//! strategies, `sample::Index`, and `prop_assert*` — with deterministic
//! per-test random streams (seeded from the test name, overridable with the
//! `PROPTEST_SEED` env var). Failing cases are reported with their case
//! number and re-runnable seed; there is no shrinking.

#![forbid(unsafe_code)]

/// Test-runner plumbing: config, RNG, and the failure type.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The input was rejected (not counted as failure).
        Reject(String),
    }

    impl TestCaseError {
        /// A property-violation error with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input-rejection error with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic RNG handed to strategies while generating one case.
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// RNG for `case` of the test named `name`, honoring `PROPTEST_SEED`.
        pub fn for_case(name: &str, case: u64) -> Self {
            TestRng(SmallRng::seed_from_u64(Self::case_seed(name, case)))
        }

        /// The seed `for_case` uses — surfaced in failure messages.
        pub fn case_seed(name: &str, case: u64) -> u64 {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x70_72_6f_70_74_65_73_74); // "proptest"
            let mut h = base;
            for b in name.bytes() {
                h = (h.rotate_left(5) ^ b as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
            }
            h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw from `[0, span)`; `span` must be non-zero.
        pub fn below(&mut self, span: u64) -> u64 {
            use rand::Rng;
            self.0.gen_range(0..span)
        }

        /// `true` with probability `num / den`.
        pub fn ratio(&mut self, num: u32, den: u32) -> bool {
            self.below(den as u64) < num as u64
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A type-erased strategy (what `prop_oneof!` arms become).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed arms (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.arms.len() as u64) as usize;
            self.arms[k].generate(rng)
        }
    }

    /// Strategy generating a function's output lazily (`prop_compose!`).
    pub struct LazyGen<T, F: Fn(&mut TestRng) -> T> {
        f: F,
        _marker: PhantomData<fn() -> T>,
    }

    impl<T, F: Fn(&mut TestRng) -> T> LazyGen<T, F> {
        /// Wrap a generator closure as a strategy.
        pub fn new(f: F) -> Self {
            LazyGen {
                f,
                _marker: PhantomData,
            }
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for LazyGen<T, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Types with a canonical "any value" strategy (see [`crate::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }

    /// The strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    // Float ranges draw a uniform fraction in [0, 1) (53 random mantissa
    // bits) and lerp — enough uniformity for property generation, no
    // shrinking semantics to preserve.
    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }
    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            lo + unit * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+)  ;
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` — the canonical whole-domain strategy for `T`.
pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};
    use std::marker::PhantomData;

    /// Strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Things `collection::vec` accepts as a length range.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (mostly `Some`).
    pub struct OptionStrategy<S>(S);

    /// `Option` strategy: `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.ratio(3, 4) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling helpers.
pub mod sample {
    /// An abstract index into a collection of not-yet-known size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Resolve against a concrete collection size (must be non-zero).
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }
}

/// The glob-imported surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Assert a condition inside a proptest body; failure aborts only the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define a function returning a composed strategy.
///
/// Supports the common form `fn name()(var in strategy, ...) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$attr:meta])*
        $vis:vis fn $name:ident ()
        ( $($arg:pat in $strat:expr),+ $(,)? ) -> $ret:ty
        $body:block
    ) => {
        $(#[$attr])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::LazyGen::new(
                move |rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), rng);
                    )+
                    $body
                },
            )
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                let outcome = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest `{}` failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        $crate::test_runner::TestRng::case_seed(stringify!($name), case),
                        msg
                    ),
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Declare property tests: each `#[test] fn` runs many random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(a in 0u64..100, b in 0u64..100) -> (u64, u64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u8..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u32>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn composed_pairs_in_bounds((a, b) in pair()) {
            prop_assert!(a < 100 && b < 100);
        }

        #[test]
        fn oneof_and_map_compose(k in prop_oneof![Just(1u32), Just(2), 5u32..7]) {
            prop_assert!(k == 1 || k == 2 || k == 5 || k == 6);
        }

        #[test]
        fn index_resolves_in_bounds(ix in any::<prop::sample::Index>(), n in 1usize..50) {
            prop_assert!(ix.index(n) < n);
        }

        #[test]
        fn options_mix(o in prop::option::of(0u64..5)) {
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(crate::arbitrary::any::<u64>(), 0..20);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|c| s.generate(&mut TestRng::for_case("det", c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|c| s.generate(&mut TestRng::for_case("det", c)))
            .collect();
        assert_eq!(a, b);
    }
}
