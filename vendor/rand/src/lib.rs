//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. This crate implements the exact subset the workspace uses with
//! the same algorithms rand 0.8 uses on 64-bit targets:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (rand 0.8's `SmallRng` on 64-bit),
//!   seeded from a `u64` through SplitMix64 exactly like
//!   `SeedableRng::seed_from_u64`;
//! * [`Rng::gen_range`] — Lemire widening-multiply rejection sampling
//!   (unbiased);
//! * [`Rng::gen_bool`] — 53-bit float comparison;
//! * [`Rng::gen`] — via the [`Standard`] distribution for primitive ints and
//!   `bool`.
//!
//! Streams are deterministic per seed, which is all the workload generator
//! and tests rely on; they assert statistical properties and cross-instance
//! determinism, never specific values from upstream rand's stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Produce the next random `u32` (upper half of a fresh `u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a small integer seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their whole value range.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Unsigned integers that [`Rng::gen_range`] can sample over a `Range`.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`; `high > low` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased `[0, span)` via Lemire's widening multiply with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// User-facing convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        // 53 random bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.8's 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Snapshots the generator state (for checkpoint/resume).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`SmallRng::state`] snapshot.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state (a xoshiro fixed point no seed
        /// can reach).
        pub fn from_state(s: [u64; 4]) -> SmallRng {
            assert!(s != [0; 4], "all-zero xoshiro state");
            SmallRng { s }
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // All-zero state is a fixed point for xoshiro; SplitMix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
        for _ in 0..100 {
            let v = r.gen_range(5usize..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..1).all(|_| !r.gen_bool(0.0)));
        assert!((0..1).all(|_| r.gen_bool(1.0)));
    }
}
