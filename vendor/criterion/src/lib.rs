//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Throughput`, `black_box`, `criterion_group!`,
//! `criterion_main!` — backed by a simple adaptive wall-clock timer: each
//! benchmark is warmed up, then timed over enough iterations to fill a small
//! measurement budget, and the mean time per iteration is printed together
//! with derived throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How to express a benchmark's throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a single benchmark's closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record mean wall-clock time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run once (compulsory) and estimate per-iteration cost.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();

        // Fit iterations into the budget, between 1 and 10_000.
        let budget = Duration::from_millis(200);
        let iters = if first.is_zero() {
            10_000
        } else {
            (budget.as_nanos() / first.as_nanos().max(1)).clamp(1, 10_000) as u64
        };

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{name:<40} (no measurement)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.2} Melem/s", n as f64 / per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.2} MB/s", n as f64 / per_iter * 1e3)
        }
        None => String::new(),
    };
    println!(
        "{name:<40} {:>12.0} ns/iter ({} iters){rate}",
        per_iter, b.iters
    );
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name, &b, None);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; this harness sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), &b, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
