#!/usr/bin/env bash
# Full local gate: formatting, lints, release build, tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> golden snapshots (quick scale, release)"
# The golden suite is compiled out of debug builds (quick-scale runs are
# far too slow unoptimized), so it needs an explicit release invocation.
cargo test -q --release -p mlp-experiments --test golden

echo "==> fault isolation (end to end, release)"
# Same deal: spawns real quick-scale CLI runs with MLP_FAULT armed and
# checks survivors stay byte-identical, so release only.
cargo test -q --release -p mlp-experiments --test faults

echo "==> differential cross-validation (release)"
# MLPsim vs CycleSim over identical trace windows, compared through the
# mlp-obs counter layer — the paper's Table 1/3/4 agreement as a gate.
cargo test -q --release -p mlp-experiments --test differential

echo "==> no-panic property suites"
# Hostile-input coverage: arbitrary/mutated trace bytes must never panic
# the decoders (v1 and chunked v2), and randomly panicking sweep jobs
# must never lose a slot.
cargo test -q -p mlp-isa --test prop
cargo test -q -p mlp-isa --test chunked_prop
cargo test -q -p mlp-par --test prop

echo "==> model + observability property suites"
# Algebraic laws of the §2.2 CPI model and conservation invariants of
# the mlp-obs counters the engines flush.
cargo test -q -p mlp-model --test prop
cargo test -q -p mlpsim --test prop

echo "==> mlp-stats smoke (armed run -> summary/timeline/self-diff)"
# One small armed experiment with an event trace, then the analyzer over
# its own output: the self-diff must report zero deltas and exit 0.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
MLP_OBS=all MLP_THREADS=1 target/release/mlp-experiments \
    --only epochs --scale quick \
    --json "$smoke_dir" --events "$smoke_dir" >/dev/null
grep -q '"schema": "mlp-experiments.report/v4"' "$smoke_dir/epochs.quick.json"
target/release/mlp-stats summary "$smoke_dir/epochs.quick.json" >/dev/null
target/release/mlp-stats timeline "$smoke_dir/epochs.quick.jsonl" >/dev/null
target/release/mlp-stats diff \
    "$smoke_dir/epochs.quick.json" "$smoke_dir/epochs.quick.json" >/dev/null

echo "==> streaming smoke (spilled trace run == in-memory run)"
# Force every trace to spill as a chunked v2 file and re-run an
# experiment from disk: the streamed report must be byte-identical to
# the in-memory one.
stream_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir" "$stream_dir"' EXIT
target/release/mlp-experiments table5 --scale quick \
    --json "$stream_dir/mem" >/dev/null
MLP_TRACE_CACHE_BYTES=0 target/release/mlp-experiments table5 --scale quick \
    --trace-cache "$stream_dir/cache" --json "$stream_dir/disk" >/dev/null
ls "$stream_dir"/cache/*.mlp2 >/dev/null   # traces really went to disk
diff "$stream_dir/mem/table5.quick.json" "$stream_dir/disk/table5.quick.json"

echo "==> surrogate property + cross-validation suites"
# Planted-coefficient recovery, ridge totality on hostile designs, and
# row-order-invariant fits (prop, also in the debug workspace run); then
# k-fold CV over the golden report corpus against the published 5%/15%
# tolerance (release only: 231-wide ridge fits).
cargo test -q --release -p mlp-surrogate --test prop
cargo test -q --release -p mlp-surrogate --test crossval

echo "==> surrogate smoke (train from reports -> predict -> self-validate)"
# Run a few experiments with --json, train the surrogate from the report
# directory (only reports with full sweep coordinates contribute rows —
# the others must be tolerated, not fatal), and check the schema-tagged
# report lands with an in-tolerance verdict (exit 0).
surr_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir" "$stream_dir" "$surr_dir"' EXIT
target/release/mlp-experiments --only sweep1000,table1,figure7 --scale quick \
    --json "$surr_dir" >/dev/null
target/release/mlp-experiments --surrogate "$surr_dir" >/dev/null
grep -q '"schema": "mlp-surrogate.report/v1"' "$surr_dir/surrogate.json"

echo "==> serve chaos suite (hang/io-error/cache-corrupt/shed, release)"
# Arms each MLP_FAULT serve site in a real daemon process and checks the
# faulted job degrades while sibling responses stay byte-identical and
# the daemon keeps serving.
cargo test -q --release -p mlp-serve --test chaos

echo "==> mlp-serve smoke (daemon response == CLI artifact bytes)"
# Start the daemon on an ephemeral port, run one experiment through it,
# and diff the response byte-for-byte against the file the CLI writes
# for the same experiment and scale.
serve_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir" "$stream_dir" "$surr_dir" "$serve_dir"' EXIT
target/release/mlp-serve --addr 127.0.0.1:0 --port-file "$serve_dir/port" \
    --workers 2 --cache-dir "$serve_dir/cache" 2>/dev/null &
serve_pid=$!
for _ in $(seq 150); do [ -s "$serve_dir/port" ] && break; sleep 0.1; done
serve_addr=$(cat "$serve_dir/port")
target/release/mlp-loadgen get "$serve_addr" /healthz | grep -q '"status":"ok"'
target/release/mlp-loadgen run "$serve_addr" fm quick > "$serve_dir/served.json"
target/release/mlp-experiments fm --scale quick --json "$serve_dir/cli" >/dev/null
diff "$serve_dir/served.json" "$serve_dir/cli/fm.quick.json"

echo "==> serve load burst (records results/BENCH_serve.json; 3x p50 guard)"
# Client-observed latency distribution + serve.* counter deltas against
# the same daemon (mostly cache-served after the smoke run above).
# Re-bless intentional changes with MLP_BENCH_GUARD=off.
target/release/mlp-loadgen bench "$serve_addr" --clients 4 --requests 8 >/dev/null
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true

echo "==> line coverage (fail-soft; see scripts/coverage.sh)"
if scripts/coverage.sh; then
    :
else
    rc=$?
    if [ "$rc" -eq 2 ]; then
        echo "coverage regression — failing the gate"
        exit 1
    fi
    echo "  (skipped: no usable coverage tooling in this environment)"
fi

echo "==> experiment bench (records results/BENCH_experiments.json; guards figure6/table3/figure5)"
# The bench compares the hot sweeps individually against the recorded
# baseline and fails on a >3x same-scale regression. Re-bless intentional
# changes with MLP_BENCH_GUARD=off.
cargo bench -q -p mlp-bench --bench experiments >/dev/null

echo "==> stream bench (records results/BENCH_stream.json; guards peak RSS + wall time)"
# Bounded-memory property of the streaming path at the paper's window
# size: spill 100M instructions, run from disk, assert peak RSS stays
# under the absolute streaming budget. (~90s; the bench's own default is
# 8M so plain 'cargo bench' stays fast.)
MLP_STREAM_BENCH_INSTS=100M cargo bench -q -p mlp-bench --bench stream >/dev/null

echo "==> surrogate bench (records results/BENCH_surrogate.json; asserts >=50x + CV tolerance)"
# Active-sampling exploration, fit time, predict throughput, and the
# speedup over a surrogate-free full sweep; fails if the speedup drops
# below 50x, the CV tolerance breaks, or exploration regresses >3x.
cargo bench -q -p mlp-bench --bench surrogate >/dev/null

echo "All checks passed."
