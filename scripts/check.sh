#!/usr/bin/env bash
# Full local gate: formatting, lints, release build, tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "All checks passed."
