#!/usr/bin/env bash
# Line-coverage gate for the pure-logic crates, fail-soft by design.
#
# Exit codes:
#   0  coverage measured and within the recorded baseline
#   1  skipped — no usable coverage tooling in this environment
#   2  coverage regressed below the baseline by more than the margin
#
# `scripts/check.sh` treats 1 as a soft skip (offline containers often
# lack cargo-llvm-cov, and a system llvm-profdata older than rustc's
# LLVM cannot read its .profraw format) and 2 as a hard failure.
#
# Usage: scripts/coverage.sh [--bless]
#   --bless  re-record results/COVERAGE_baseline.txt from this run
set -uo pipefail
cd "$(dirname "$0")/.."

BASELINE=results/COVERAGE_baseline.txt
# Pure-logic crates with fast debug test suites; the simulator crates'
# release-only e2e suites are too slow to instrument on every gate run.
CRATES=(-p mlp-obs -p mlp-model -p mlp-mem -p mlp-faults -p mlp-par)
MARGIN=2.0 # allowed drop in total line coverage, percentage points

bless=false
[ "${1:-}" = "--bless" ] && bless=true

measure_with_cargo_llvm_cov() {
    cargo llvm-cov --version >/dev/null 2>&1 || return 1
    cargo llvm-cov -q "${CRATES[@]}" --summary-only 2>/dev/null \
        | awk '/^TOTAL/ { for (i = NF; i > 0; i--) if ($i ~ /%$/) { sub(/%/, "", $i); print $i; exit } }'
}

measure_with_tarpaulin() {
    cargo tarpaulin --version >/dev/null 2>&1 || return 1
    cargo tarpaulin --skip-clean --engine llvm "${CRATES[@]}" 2>/dev/null \
        | awk '/^[0-9.]+% coverage/ { sub(/%.*/, ""); print; exit }'
}

# Raw `-C instrument-coverage` needs an llvm-profdata that understands
# the .profraw format rustc's LLVM emits; probe with a one-liner before
# committing to an instrumented rebuild of the whole test suite.
profraw_tooling_works() {
    command -v llvm-profdata >/dev/null 2>&1 || return 1
    command -v llvm-cov >/dev/null 2>&1 || return 1
    local tmp ok=1
    tmp=$(mktemp -d) || return 1
    if echo 'fn main() {}' > "$tmp/probe.rs" \
        && rustc -C instrument-coverage "$tmp/probe.rs" -o "$tmp/probe" 2>/dev/null \
        && (cd "$tmp" && LLVM_PROFILE_FILE=probe.profraw ./probe) \
        && llvm-profdata merge -sparse "$tmp/probe.profraw" -o "$tmp/probe.profdata" 2>/dev/null; then
        ok=0
    fi
    rm -rf "$tmp"
    return "$ok"
}

measure_with_raw_llvm() {
    profraw_tooling_works || return 1
    local covdir=target/coverage
    rm -rf "$covdir" && mkdir -p "$covdir"
    RUSTFLAGS="-C instrument-coverage" \
        LLVM_PROFILE_FILE="$PWD/$covdir/mlp-%p-%m.profraw" \
        CARGO_TARGET_DIR=target/cov-build \
        cargo test -q "${CRATES[@]}" >/dev/null 2>&1 || return 1
    llvm-profdata merge -sparse "$covdir"/*.profraw -o "$covdir/mlp.profdata" 2>/dev/null || return 1
    local bins
    bins=$(find target/cov-build/debug/deps -maxdepth 1 -type f -executable -name 'mlp_*' \
        | sed 's/^/-object /' | tr '\n' ' ')
    # shellcheck disable=SC2086
    llvm-cov report $bins -instr-profile="$covdir/mlp.profdata" 2>/dev/null \
        | awk '/^TOTAL/ { for (i = NF; i > 0; i--) if ($i ~ /%$/) { sub(/%/, "", $i); print $i; exit } }'
}

tool=""
total=""
for candidate in cargo_llvm_cov tarpaulin raw_llvm; do
    total=$("measure_with_${candidate}") && [ -n "$total" ] && { tool=$candidate; break; }
done

if [ -z "$tool" ]; then
    echo "coverage: skipped — no usable tooling" \
        "(need cargo-llvm-cov, cargo-tarpaulin, or llvm-profdata/llvm-cov" \
        "matching rustc's LLVM; see $BASELINE for the last recorded state)"
    exit 1
fi

echo "coverage: total line coverage ${total}% (tool: ${tool})"

if $bless || [ ! -f "$BASELINE" ]; then
    {
        echo "# Total line coverage over: ${CRATES[*]}"
        echo "# Recorded by scripts/coverage.sh --bless; compared with a ${MARGIN}-point margin."
        echo "tool: $tool"
        echo "total: $total"
    } > "$BASELINE"
    echo "coverage: baseline recorded in $BASELINE"
    exit 0
fi

old=$(awk -F': ' '/^total:/ { print $2 }' "$BASELINE")
case "$old" in
    skipped | "")
        echo "coverage: baseline has no recorded figure; re-run with --bless to record ${total}%"
        exit 0
        ;;
esac

if awk -v new="$total" -v old="$old" -v margin="$MARGIN" \
    'BEGIN { exit !(new + margin < old) }'; then
    echo "coverage: REGRESSION — ${total}% vs baseline ${old}% (margin ${MARGIN})"
    exit 2
fi
echo "coverage: within baseline (${old}%)"
exit 0
