//! Quickstart: measure the MLP of a workload under the paper's default
//! processor and see how runahead execution changes it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mlp_workloads::{Workload, WorkloadKind};
use mlpsim::{MlpsimConfig, Simulator, WindowModel};

fn main() {
    let warmup = 500_000;
    let measure = 2_000_000;

    // 1. A synthetic commercial workload, calibrated to the paper's
    //    database trace statistics.
    let kind = WorkloadKind::Database;

    // 2. The paper's default processor: issue configuration C, 64-entry
    //    issue window and ROB, 2MB L2, gshare front end.
    let mut sim = Simulator::new(MlpsimConfig::default());
    let mut trace = Workload::new(kind, 42);
    let base = sim.run(&mut trace, warmup, measure);

    println!("== {kind} on the default out-of-order core ==");
    println!("{base}");
    println!();

    // 3. The same workload on a runahead processor (§3.5): the epoch
    //    model shows how many more off-chip accesses overlap.
    let rae_cfg = MlpsimConfig::builder()
        .issue(mlpsim::IssueConfig::D)
        .window(WindowModel::Runahead { max_dist: 2048 })
        .build();
    let mut trace = Workload::new(kind, 42);
    let rae = Simulator::new(rae_cfg).run(&mut trace, warmup, measure);

    println!("== {kind} with runahead execution ==");
    println!("{rae}");
    println!();
    println!(
        "Runahead improves MLP by {:.1}% ({:.3} -> {:.3})",
        100.0 * (rae.mlp() / base.mlp() - 1.0),
        base.mlp(),
        rae.mlp()
    );

    // 4. What ended each epoch? (The paper's Figure 5 in miniature.)
    println!();
    println!("Epoch-terminating conditions (default core):");
    for (name, count) in base.inhibitors.as_rows() {
        if count > 0 {
            println!(
                "  {name:<14} {count:>8}  ({:.1}%)",
                100.0 * count as f64 / base.epochs as f64
            );
        }
    }
}
