//! A design-space sweep a microarchitect might actually run: for a fixed
//! transistor budget question — "should I grow the issue window, the
//! ROB, or add runahead?" — compare the MLP and estimated performance of
//! the candidates, using both simulators like the paper does.
//!
//! ```text
//! cargo run --release --example design_space_sweep
//! ```

use mlp_cyclesim::{CycleSim, CycleSimConfig};
use mlp_model::CpiModel;
use mlp_workloads::{Workload, WorkloadKind};
use mlpsim::{IssueConfig, MlpsimConfig, Simulator, WindowModel};

const LATENCY: u64 = 1000;

fn main() {
    let kind = WorkloadKind::Database;
    println!("Candidate evaluation for {kind} at {LATENCY}-cycle off-chip latency\n");

    // Calibrate the CPI model once with the cycle-accurate simulator
    // (the paper's Table 1 methodology).
    let mut wl = Workload::new(kind, 42);
    let real = CycleSim::new(CycleSimConfig::default().with_mem_latency(LATENCY))
        .run(&mut wl, 300_000, 800_000);
    let mut wl = Workload::new(kind, 42);
    let perf = CycleSim::new(CycleSimConfig::default().perfect_l2()).run(&mut wl, 300_000, 800_000);
    let base_model = CpiModel::from_measured(
        real.cpi(),
        perf.cpi(),
        real.offchip.total() as f64 / real.insts as f64,
        LATENCY as f64,
        real.mlp(),
    );
    println!(
        "cycle-accurate calibration: CPI {:.2}, CPI_perf {:.2}, Overlap_CM {:.2}\n",
        real.cpi(),
        perf.cpi(),
        base_model.overlap_cm
    );

    // Candidate machines, all evaluated with the fast epoch model.
    let ooo = |issue, iw, rob| {
        MlpsimConfig::builder()
            .issue(issue)
            .window(WindowModel::OutOfOrder {
                iw,
                rob,
                fetch_buffer: 32,
            })
            .build()
    };
    let candidates: Vec<(&str, MlpsimConfig)> = vec![
        ("baseline 64D", ooo(IssueConfig::D, 64, 64)),
        (
            "double the issue window: 128D",
            ooo(IssueConfig::D, 128, 128),
        ),
        (
            "grow only the ROB: 64D/ROB256",
            ooo(IssueConfig::D, 64, 256),
        ),
        (
            "grow only the ROB: 64D/ROB1024",
            ooo(IssueConfig::D, 64, 1024),
        ),
        (
            "non-serializing atomics: 64E/ROB256",
            ooo(IssueConfig::E, 64, 256),
        ),
        (
            "runahead, 2048 max distance",
            MlpsimConfig::builder()
                .issue(IssueConfig::D)
                .window(WindowModel::Runahead { max_dist: 2048 })
                .build(),
        ),
    ];

    println!(
        "{:<38} {:>7} {:>8} {:>12}",
        "candidate", "MLP", "CPI est", "speedup"
    );
    let mut base_cpi = None;
    for (label, cfg) in candidates {
        let mut wl = Workload::new(kind, 42);
        let r = Simulator::new(cfg).run(&mut wl, 500_000, 2_000_000);
        let model = CpiModel {
            miss_rate: r.offchip.total() as f64 / r.insts as f64,
            ..base_model
        };
        let cpi = model.cpi(r.mlp());
        let base = *base_cpi.get_or_insert(cpi);
        println!(
            "{label:<38} {:>7.3} {:>8.2} {:>11.1}%",
            r.mlp(),
            cpi,
            100.0 * (base / cpi - 1.0)
        );
    }
    println!(
        "\nThe epoch model makes each candidate a sub-second evaluation; only\n\
         the calibration runs needed the cycle-accurate simulator."
    );
}
