//! Exploring runahead execution: how far does the runahead distance
//! matter, what do value prediction and the limit-study knobs add, and
//! what does it all mean for overall performance?
//!
//! ```text
//! cargo run --release --example runahead_exploration
//! ```

use mlp_workloads::{Workload, WorkloadKind};
use mlpsim::{BranchMode, IssueConfig, MlpsimConfig, Simulator, ValueMode, WindowModel};

fn run(kind: WorkloadKind, cfg: MlpsimConfig) -> mlpsim::Report {
    let mut wl = Workload::new(kind, 42);
    Simulator::new(cfg).run(&mut wl, 500_000, 2_000_000)
}

fn main() {
    println!("== Runahead distance sweep (MLP per workload) ==");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "max dist", "Database", "SPECjbb", "SPECweb"
    );
    for dist in [128usize, 256, 512, 1024, 2048, 4096] {
        print!("{dist:>10}");
        for kind in WorkloadKind::ALL {
            let cfg = MlpsimConfig::builder()
                .issue(IssueConfig::D)
                .window(WindowModel::Runahead { max_dist: dist })
                .build();
            print!(" {:>12.3}", run(kind, cfg).mlp());
        }
        println!();
    }
    println!();

    println!("== Stacking features on runahead (Database) ==");
    let rae = MlpsimConfig::builder()
        .issue(IssueConfig::D)
        .window(WindowModel::Runahead { max_dist: 2048 })
        .build();
    let arms: [(&str, MlpsimConfig); 5] = [
        ("RAE", rae.clone()),
        (
            "RAE + last-value prediction",
            MlpsimConfig {
                value: ValueMode::LastValue(16 * 1024),
                ..rae.clone()
            },
        ),
        (
            "RAE + perfect I-prefetch",
            MlpsimConfig {
                perfect_ifetch: true,
                ..rae.clone()
            },
        ),
        (
            "RAE + perfect branch prediction",
            MlpsimConfig {
                branch: BranchMode::Perfect,
                ..rae.clone()
            },
        ),
        (
            "RAE + perfect VP + perfect BP",
            MlpsimConfig {
                value: ValueMode::Perfect,
                branch: BranchMode::Perfect,
                ..rae
            },
        ),
    ];
    let base = run(WorkloadKind::Database, arms[0].1.clone()).mlp();
    for (label, cfg) in arms {
        let r = run(WorkloadKind::Database, cfg);
        println!(
            "  {label:<34} MLP {:>6.3}  ({:+.1}% vs RAE)",
            r.mlp(),
            100.0 * (r.mlp() / base - 1.0)
        );
    }
    println!();
    println!(
        "The paper's conclusion holds: runahead gets most of the way to an\n\
         infinite window, and the remaining headroom sits behind\n\
         instruction prefetching, branch prediction and value prediction."
    );
}
