//! Co-running workloads on a 2-way SMT core: does multithreading raise
//! chip-level MLP, and what does cache sharing cost each thread?
//! (The paper's stated future work, §7.)
//!
//! ```text
//! cargo run --release --example smt_corun
//! ```

use mlp_cyclesim::{smt::SmtSim, CycleSimConfig};
use mlp_workloads::{Workload, WorkloadKind};

fn main() {
    let warm = 200_000;
    let measure = 600_000;
    let cfg = CycleSimConfig::default().with_mem_latency(1000);

    println!("== Solo baselines (1 thread on the SMT core) ==");
    let mut solo = Vec::new();
    for kind in WorkloadKind::ALL {
        let mut wl = Workload::new(kind, 42);
        let r = SmtSim::new(cfg.clone()).run(vec![&mut wl], warm, measure);
        println!(
            "  {:<12} chip MLP {:>6.3}   IPC {:>6.3}",
            kind.name(),
            r.mlp(),
            r.ipc()
        );
        solo.push((kind, r.mlp(), r.ipc()));
    }

    println!();
    println!("== Two-thread co-runs ==");
    let pairs = [
        (WorkloadKind::Database, WorkloadKind::Database),
        (WorkloadKind::Database, WorkloadKind::SpecJbb2000),
        (WorkloadKind::Database, WorkloadKind::SpecWeb99),
        (WorkloadKind::SpecJbb2000, WorkloadKind::SpecWeb99),
    ];
    for (a, b) in pairs {
        let mut wa = Workload::new(a, 42);
        let mut wb = Workload::new(b, 43);
        let r = SmtSim::new(cfg.clone()).run(vec![&mut wa, &mut wb], warm, measure);
        // Time-sharing baseline: run A's instructions, then B's, each at
        // its solo speed — the harmonic-mean throughput.
        let ipc_of = |k| {
            solo.iter()
                .find(|(s, ..)| *s == k)
                .map(|&(_, _, i)| i)
                .unwrap()
        };
        let serial = 2.0 / (1.0 / ipc_of(a) + 1.0 / ipc_of(b));
        println!(
            "  {:<26} chip MLP {:>6.3}   IPC {:>6.3}  ({:+.0}% vs time-sharing)",
            format!("{} + {}", a.name(), b.name()),
            r.mlp(),
            r.ipc(),
            100.0 * (r.ipc() / serial - 1.0)
        );
    }
    println!();
    println!(
        "Memory-bound threads overlap each other's misses (Database+Database\n\
         nearly doubles chip MLP); pairing with a cache-hungry neighbour\n\
         shows the interference cost instead."
    );
}
