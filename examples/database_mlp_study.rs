//! A focused study of the database workload: where do its off-chip
//! accesses come from, how clustered are they, and how do issue policy
//! and window size change its MLP?
//!
//! ```text
//! cargo run --release --example database_mlp_study
//! ```

use mlp_isa::TraceSource;
use mlp_mem::{Hierarchy, HierarchyConfig};
use mlp_workloads::{Workload, WorkloadKind};
use mlpsim::{IssueConfig, MlpsimConfig, Simulator};

fn main() {
    let kind = WorkloadKind::Database;
    let warmup = 500_000u64;
    let measure = 2_000_000u64;

    // --- Miss census -----------------------------------------------------
    let mut wl = Workload::new(kind, 42);
    let mut mem = Hierarchy::new(HierarchyConfig::default());
    let mut distances = Vec::new();
    let mut last_miss: Option<u64> = None;
    for n in 0..warmup + measure {
        let Some(inst) = wl.next_inst() else { break };
        let mut missed = mem.ifetch(inst.pc).is_off_chip();
        if let Some(m) = inst.mem {
            missed |= match inst.kind {
                mlp_isa::OpKind::Store => {
                    mem.store(m.addr);
                    false
                }
                mlp_isa::OpKind::Prefetch => mem.prefetch(m.addr).is_off_chip(),
                _ => mem.load(m.addr).is_off_chip(),
            };
        }
        if n >= warmup {
            mem.count_instruction();
            if missed {
                if let Some(p) = last_miss {
                    distances.push(n - p);
                }
                last_miss = Some(n);
            }
        }
    }
    let stats = mem.stats();
    println!("== Database off-chip access census ==");
    println!(
        "miss rate: {:.3} per 100 instructions (paper: 0.84)",
        stats.miss_rate_per_100()
    );
    println!(
        "breakdown: {} data / {} instruction / {} prefetch",
        stats.dmisses, stats.imisses, stats.pmisses
    );
    let mean = distances.iter().sum::<u64>() as f64 / distances.len().max(1) as f64;
    let within = |n: u64| {
        100.0 * distances.iter().filter(|&&d| d <= n).count() as f64 / distances.len() as f64
    };
    println!("mean inter-miss distance: {mean:.0} instructions");
    println!(
        "P[next miss within 10/50/200 insts] = {:.0}% / {:.0}% / {:.0}% (clustered!)",
        within(10),
        within(50),
        within(200)
    );
    println!();

    // --- Issue policy & window sweep (Figure 4 in miniature) -------------
    println!("== MLP vs window size and issue configuration ==");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "size", "A", "B", "C", "D", "E"
    );
    for size in [16usize, 32, 64, 128, 256] {
        print!("{size:>8}");
        for issue in IssueConfig::ALL {
            let cfg = MlpsimConfig::builder()
                .issue(issue)
                .coupled_window(size)
                .build();
            let mut wl = Workload::new(kind, 42);
            let r = Simulator::new(cfg).run(&mut wl, warmup, measure);
            print!(" {:>8.3}", r.mlp());
        }
        println!();
    }
    println!();
    println!(
        "Read it like the paper's Figure 4: relaxing issue constraints\n\
         matters more and more as the window grows."
    );
}
