//! End-to-end tests of the `mlp-stats` binary: fixture reports and
//! traces on disk, real process invocations, exit-code contracts.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_mlp-stats")
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mlp-stats-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("run binary")
}

const V4_REPORT: &str = r#"{
  "schema": "mlp-experiments.report/v4",
  "experiment": "epochs",
  "title": "Epoch behavior",
  "section": "§3",
  "scale": "quick",
  "status": "ok",
  "seed": 42,
  "axes": {},
  "rows": [],
  "metrics": {
    "mlpsim.epochs": 128,
    "mlpsim.offchip.useful": 512,
    "experiment.run.total_ms": 1.5
  },
  "histograms": {
    "mlpsim.epoch.len_insts": {"count": 4, "sum": 106, "max": 100, "p50": 3, "p90": 100, "p99": 100, "buckets": [[1, 1], [2, 2], [64, 1]]}
  }
}
"#;

#[test]
fn summary_renders_distribution_table() {
    let report = temp_file("summary.json", V4_REPORT);
    let out = run(&["summary", report.to_str().unwrap()]);
    std::fs::remove_file(&report).unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("epochs (quick)"));
    assert!(text.contains("mlpsim.epoch.len_insts"));
    assert!(text.contains("26.50")); // mean 106/4
}

#[test]
fn diff_against_self_exits_zero_with_zero_deltas() {
    let report = temp_file("self.json", V4_REPORT);
    let path = report.to_str().unwrap();
    let out = run(&["diff", path, path]);
    std::fs::remove_file(&report).unwrap();
    assert!(out.status.success(), "self-diff must exit 0");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 flagged"));
    assert!(!text.contains('!'));
}

#[test]
fn diff_flags_doctored_copy_with_nonzero_exit() {
    let baseline = temp_file("base.json", V4_REPORT);
    // Doctor one metric by far more than the default 5% threshold.
    let doctored = temp_file(
        "doctored.json",
        &V4_REPORT.replace("\"mlpsim.epochs\": 128", "\"mlpsim.epochs\": 256"),
    );
    let out = run(&[
        "diff",
        baseline.to_str().unwrap(),
        doctored.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("+100.00%"));

    // A generous threshold lets the same pair pass.
    let out = run(&[
        "diff",
        baseline.to_str().unwrap(),
        doctored.to_str().unwrap(),
        "--threshold",
        "1.5",
    ]);
    std::fs::remove_file(&baseline).unwrap();
    std::fs::remove_file(&doctored).unwrap();
    assert!(out.status.success());
}

#[test]
fn timeline_folds_sample_events() {
    let trace = temp_file(
        "trace.jsonl",
        concat!(
            "{\"seq\":0,\"event\":\"mlpsim.sample\",\"insts\":100,\"epochs\":10,\"offchip\":20}\n",
            "{\"seq\":1,\"event\":\"mlpsim.sample\",\"insts\":200,\"epochs\":30,\"offchip\":80}\n",
        ),
    );
    let out = run(&["timeline", trace.to_str().unwrap()]);
    std::fs::remove_file(&trace).unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mlpsim.sample — 2 windows"));
    assert!(text.contains("3.000")); // window 1: Δoffchip 60 / Δepochs 20
}

#[test]
fn usage_and_input_errors_exit_two() {
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["diff", "/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("Usage:"));
}
