//! A small first-party JSON parser for the analyzer side of the
//! workspace.
//!
//! The experiments harness *writes* JSON with a hand-rolled serializer
//! (`mlp_experiments::report`); this module is its reading counterpart.
//! It parses the full JSON grammar, keeps object keys in document order
//! (reports are deterministic, and diffs should be too), and preserves
//! the integer/float distinction the report writer makes: a numeric
//! literal without `.`/`e` parses as [`Json::Int`], everything else as
//! [`Json::Num`].
//!
//! Errors carry the byte offset of the offending character — enough to
//! locate a torn line in a trace without dragging in a full span
//! machinery.

use std::fmt;

/// A parsed JSON value. Object members keep document order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (linear; report objects are small).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members, in document order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: what was wrong and the byte offset where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // UTF-8 continuation bytes pass through untouched:
                    // slice at the next char boundary.
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (surrogate pairs for
    /// supplementary-plane characters).
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a low surrogate right after.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err(self.err("unpaired surrogate"));
                }
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
            } else {
                return Err(self.err("unpaired surrogate"));
            }
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            // Integer literal; fall back to f64 only on i64 overflow.
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse(r#"{"a": 1, "b": [true, null, -2.5], "c": {"d": "x\ny"}}"#).unwrap();
        assert_eq!(doc.get("a"), Some(&Json::Int(1)));
        assert_eq!(
            doc.get("b").unwrap().as_arr().unwrap(),
            &[Json::Bool(true), Json::Null, Json::Num(-2.5)]
        );
        assert_eq!(
            doc.get("c").unwrap().get("d").unwrap().as_str(),
            Some("x\ny")
        );
    }

    #[test]
    fn preserves_member_order_and_int_float_distinction() {
        let doc = parse(r#"{"z": 1, "a": 2, "m": 3.0}"#).unwrap();
        let keys: Vec<&str> = doc
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(doc.get("z"), Some(&Json::Int(1)));
        assert_eq!(doc.get("m"), Some(&Json::Num(3.0)));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let doc = parse(r#""é😀""#).unwrap();
        assert_eq!(doc.as_str(), Some("é😀"));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(parse("[1, 2").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn big_u64_falls_back_to_float() {
        // u64::MAX overflows i64; the parser keeps the magnitude as f64.
        let doc = parse("18446744073709551615").unwrap();
        assert!(matches!(doc, Json::Num(_)));
    }
}
