//! Per-experiment distribution summaries.
//!
//! Renders each report's `histograms` block as one aligned text table —
//! count, mean, and the log2-bucket quantile estimates the report
//! already carries. Reports without distributions (schema v2/v3, or an
//! armed run that recorded none) get a one-line note instead so a
//! directory sweep still accounts for every file.

use crate::report::Report;
use mlp_experiments::table::{f2, TextTable};
use std::fmt::Write as _;

/// Renders the distribution summary for a batch of reports.
pub fn render(reports: &[Report]) -> String {
    let mut out = String::new();
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let title = format!(
            "{} ({}) — {}",
            report.experiment, report.scale, report.schema
        );
        if report.histograms.is_empty() {
            let _ = writeln!(out, "{title}\n  no distributions recorded");
            continue;
        }
        let mut table = TextTable::new(vec![
            "histogram",
            "count",
            "mean",
            "p50",
            "p90",
            "p99",
            "max",
        ])
        .with_title(title);
        for h in &report.histograms {
            table.row(vec![
                h.name.clone(),
                h.count.to_string(),
                f2(h.mean()),
                h.p50.to_string(),
                h.p90.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]);
        }
        out.push_str(&table.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::HistSummary;

    fn demo_report(with_hist: bool) -> Report {
        Report {
            schema: if with_hist {
                "mlp-experiments.report/v4".into()
            } else {
                "mlp-experiments.report/v2".into()
            },
            experiment: "epochs".into(),
            scale: "quick".into(),
            status: "ok".into(),
            metrics: Vec::new(),
            histograms: if with_hist {
                vec![HistSummary {
                    name: "mlpsim.epoch.len_insts".into(),
                    count: 4,
                    sum: 106,
                    max: 100,
                    p50: 3,
                    p90: 100,
                    p99: 100,
                    buckets: vec![(1, 1), (2, 2), (64, 1)],
                }]
            } else {
                Vec::new()
            },
        }
    }

    #[test]
    fn renders_quantile_table() {
        let out = render(&[demo_report(true)]);
        assert!(out.starts_with("epochs (quick) — mlp-experiments.report/v4"));
        assert!(out.contains("mlpsim.epoch.len_insts"));
        assert!(out.contains("26.50")); // mean = 106 / 4
        assert!(out.contains("p99"));
    }

    #[test]
    fn empty_reports_get_a_note() {
        let out = render(&[demo_report(false)]);
        assert!(out.contains("no distributions recorded"));
    }
}
