//! `mlp-stats`: offline analyzer for the experiment harness's outputs.
//!
//! The simulators in this workspace publish two artifact kinds:
//! deterministic JSON reports (`mlp-experiments.report/v2..v4`, written
//! by `mlp-experiments --json`) and JSONL event traces (written under
//! `--events` when `MLP_OBS` arms event mode). This crate reads both
//! and answers three questions:
//!
//! - **`summary`** — what did the distributions look like? Renders each
//!   v4 report's `histograms` block (count / mean / p50 / p90 / p99 /
//!   max per metric) as aligned tables.
//! - **`diff`** — did anything move between two runs? Compares every
//!   scalar metric and histogram summary statistic by relative delta
//!   and exits nonzero when any exceeds a threshold — the CI hook for
//!   run-to-run regression checking against blessed `results/BENCH_*`
//!   baselines.
//! - **`timeline`** — how did the run evolve? Folds the engines'
//!   interval samples (`*.sample` events, one per `MLP_OBS_INTERVAL`
//!   retired instructions) into per-window delta series with a derived
//!   per-window MLP.
//!
//! Everything is first-party: JSON parsing lives in [`json`], and the
//! table rendering is shared with the experiments crate.

pub mod diff;
pub mod json;
pub mod report;
pub mod summary;
pub mod timeline;
