//! Run-to-run regression diffing of report metrics.
//!
//! Flattens each report into a scalar metric list — the v3 `metrics`
//! block plus, for every v4 histogram, derived `<name>.count` /
//! `.mean` / `.p50` / `.p90` / `.p99` / `.max` entries — and compares
//! baseline against candidate by relative delta. Any metric whose
//! |delta| exceeds the threshold, appears only on one side, or divides
//! by a zero baseline is flagged; the CLI turns a non-empty flag list
//! into a nonzero exit code for CI.
//!
//! Wall-clock metrics (`*.total_ms` / `*.max_ms`, and `elapsed_ms`
//! row fields never reach the metrics block) are skipped by default —
//! two healthy runs of the same build differ there on every execution —
//! and can be re-included with `--include-time`.

use crate::report::Report;
use mlp_experiments::table::TextTable;
use std::fmt::Write as _;

/// Diff configuration from the CLI.
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Maximum tolerated |relative delta| per metric.
    pub threshold: f64,
    /// Compare `*_ms` wall-clock metrics too.
    pub include_time: bool,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            threshold: 0.05,
            include_time: false,
        }
    }
}

/// The rendered diff plus the list of flagged metric names.
#[derive(Clone, Debug)]
pub struct DiffOutcome {
    pub table: String,
    pub flagged: Vec<String>,
}

impl DiffOutcome {
    /// Whether the candidate is within tolerance of the baseline.
    pub fn clean(&self) -> bool {
        self.flagged.is_empty()
    }
}

/// Flattens a report to comparable scalars (metrics + histogram
/// summary statistics), preserving document order.
fn flatten(report: &Report, include_time: bool) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = report
        .metrics
        .iter()
        .filter(|(name, _)| include_time || !is_time_metric(name))
        .cloned()
        .collect();
    for h in &report.histograms {
        out.push((format!("{}.count", h.name), h.count as f64));
        out.push((format!("{}.mean", h.name), h.mean()));
        out.push((format!("{}.p50", h.name), h.p50 as f64));
        out.push((format!("{}.p90", h.name), h.p90 as f64));
        out.push((format!("{}.p99", h.name), h.p99 as f64));
        out.push((format!("{}.max", h.name), h.max as f64));
    }
    out
}

fn is_time_metric(name: &str) -> bool {
    name.ends_with(".total_ms") || name.ends_with(".max_ms")
}

/// Formats a metric value: integral values print without a fraction.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Compares candidate against baseline.
pub fn diff(baseline: &Report, candidate: &Report, opts: DiffOptions) -> DiffOutcome {
    let base = flatten(baseline, opts.include_time);
    let cand = flatten(candidate, opts.include_time);
    let cand_lookup = |name: &str| cand.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let base_names: Vec<&str> = base.iter().map(|(n, _)| n.as_str()).collect();

    let mut table = TextTable::new(vec!["metric", "baseline", "candidate", "delta", ""])
        .with_title(format!(
            "{} ({}): baseline vs candidate, threshold {:.1}%",
            candidate.experiment,
            candidate.scale,
            opts.threshold * 100.0
        ));
    let mut flagged = Vec::new();

    for (name, b) in &base {
        let (cand_cell, delta_cell, flag) = match cand_lookup(name) {
            Some(c) => {
                let delta = if *b != 0.0 {
                    (c - b) / b.abs()
                } else if c == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                };
                let cell = if delta.is_infinite() {
                    "inf".to_string()
                } else {
                    format!("{:+.2}%", delta * 100.0)
                };
                (fmt_value(c), cell, delta.abs() > opts.threshold)
            }
            None => ("-".to_string(), "gone".to_string(), true),
        };
        if flag {
            flagged.push(name.clone());
        }
        table.row(vec![
            name.clone(),
            fmt_value(*b),
            cand_cell,
            delta_cell,
            if flag { "!" } else { "" }.to_string(),
        ]);
    }
    for (name, c) in &cand {
        if !base_names.contains(&name.as_str()) {
            flagged.push(name.clone());
            table.row(vec![
                name.clone(),
                "-".to_string(),
                fmt_value(*c),
                "new".to_string(),
                "!".to_string(),
            ]);
        }
    }

    let mut out = table.render();
    let _ = writeln!(
        out,
        "{} metrics compared, {} flagged",
        base.len().max(cand.len()),
        flagged.len()
    );
    DiffOutcome {
        table: out,
        flagged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::HistSummary;

    fn report(epochs: f64, p99: u64) -> Report {
        Report {
            schema: "mlp-experiments.report/v4".into(),
            experiment: "epochs".into(),
            scale: "quick".into(),
            status: "ok".into(),
            metrics: vec![
                ("mlpsim.epochs".into(), epochs),
                ("experiment.run.total_ms".into(), 1.5),
            ],
            histograms: vec![HistSummary {
                name: "mlpsim.epoch.len_insts".into(),
                count: 4,
                sum: 106,
                max: 100,
                p50: 3,
                p90: 100,
                p99,
                buckets: vec![(1, 1), (2, 2), (64, 1)],
            }],
        }
    }

    #[test]
    fn identical_reports_diff_clean() {
        let r = report(128.0, 100);
        let out = diff(&r, &r, DiffOptions::default());
        assert!(out.clean(), "flagged: {:?}", out.flagged);
        assert!(out.table.contains("+0.00%"));
        assert!(out.table.contains("7 metrics compared, 0 flagged"));
    }

    #[test]
    fn over_threshold_delta_is_flagged() {
        let base = report(128.0, 100);
        let cand = report(160.0, 100); // +25% epochs
        let out = diff(&base, &cand, DiffOptions::default());
        assert_eq!(out.flagged, vec!["mlpsim.epochs".to_string()]);
        assert!(out.table.contains("+25.00%"));
        // Within-threshold deltas pass.
        let near = report(129.0, 100); // +0.8%
        assert!(diff(&base, &near, DiffOptions::default()).clean());
    }

    #[test]
    fn missing_and_new_metrics_are_flagged() {
        let base = report(128.0, 100);
        let mut cand = report(128.0, 100);
        cand.metrics.remove(0);
        cand.metrics.push(("mlpsim.extra".into(), 1.0));
        let out = diff(&base, &cand, DiffOptions::default());
        assert!(out.flagged.contains(&"mlpsim.epochs".to_string()));
        assert!(out.flagged.contains(&"mlpsim.extra".to_string()));
        assert!(out.table.contains("gone"));
        assert!(out.table.contains("new"));
    }

    #[test]
    fn time_metrics_skipped_unless_included() {
        let base = report(128.0, 100);
        let mut cand = report(128.0, 100);
        cand.metrics[1].1 = 900.0; // wall time blew up
        assert!(diff(&base, &cand, DiffOptions::default()).clean());
        let opts = DiffOptions {
            include_time: true,
            ..DiffOptions::default()
        };
        assert!(!diff(&base, &cand, opts).clean());
    }

    #[test]
    fn zero_baseline_nonzero_candidate_is_infinite() {
        let mut base = report(0.0, 100);
        base.metrics.truncate(1);
        base.histograms.clear();
        let mut cand = report(5.0, 100);
        cand.metrics.truncate(1);
        cand.histograms.clear();
        let out = diff(&base, &cand, DiffOptions::default());
        assert!(!out.clean());
        assert!(out.table.contains("inf"));
    }
}
