//! Loading `mlp-experiments.report/v2..v4` JSON documents into the
//! analyzer's model.
//!
//! The loader is tolerant across schema versions: v2 reports simply
//! have empty `metrics`/`histograms`, v3 adds scalar metrics, v4 adds
//! distributions. Unknown top-level members are ignored so future
//! schema revisions stay readable.

use crate::json::{self, Json};
use std::path::{Path, PathBuf};

/// One experiment report, flattened to what the analyzer needs.
#[derive(Clone, Debug)]
pub struct Report {
    pub schema: String,
    pub experiment: String,
    pub scale: String,
    pub status: String,
    /// Scalar metrics in document order (empty below schema v3).
    pub metrics: Vec<(String, f64)>,
    /// Distribution summaries in document order (empty below schema v4).
    pub histograms: Vec<HistSummary>,
}

/// One histogram block from a v4 report.
#[derive(Clone, Debug)]
pub struct HistSummary {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    /// `(bucket_lo, count)` pairs for the nonzero log2 buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSummary {
    /// Arithmetic mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Report {
    /// Reads and parses one report file.
    pub fn load(path: &Path) -> Result<Report, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read '{}': {e}", path.display()))?;
        let doc =
            json::parse(&text).map_err(|e| format!("cannot parse '{}': {e}", path.display()))?;
        Report::from_json(&doc).map_err(|e| format!("'{}': {e}", path.display()))
    }

    /// Builds a report from a parsed document.
    pub fn from_json(doc: &Json) -> Result<Report, String> {
        let field = |name: &str| -> Result<String, String> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{name}'"))
        };
        let schema = field("schema")?;
        if !schema.starts_with("mlp-experiments.report/") {
            return Err(format!("unrecognized schema '{schema}'"));
        }
        let mut metrics = Vec::new();
        if let Some(block) = doc.get("metrics").and_then(Json::as_obj) {
            for (name, value) in block {
                let v = value
                    .as_f64()
                    .ok_or_else(|| format!("metric '{name}' is not numeric"))?;
                metrics.push((name.clone(), v));
            }
        }
        let mut histograms = Vec::new();
        if let Some(block) = doc.get("histograms").and_then(Json::as_obj) {
            for (name, value) in block {
                histograms.push(parse_histogram(name, value)?);
            }
        }
        Ok(Report {
            schema,
            experiment: field("experiment")?,
            scale: field("scale")?,
            status: field("status")?,
            metrics,
            histograms,
        })
    }
}

fn parse_histogram(name: &str, value: &Json) -> Result<HistSummary, String> {
    let num = |field: &str| -> Result<u64, String> {
        let v = value
            .get(field)
            .ok_or_else(|| format!("histogram '{name}' missing '{field}'"))?;
        // `max` can exceed i64 (it is a u64 on the writer side); accept
        // the float fallback the parser produces for such literals.
        v.as_u64()
            .or_else(|| v.as_f64().map(|f| f as u64))
            .ok_or_else(|| format!("histogram '{name}' field '{field}' is not numeric"))
    };
    let mut buckets = Vec::new();
    for pair in value
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("histogram '{name}' missing 'buckets'"))?
    {
        match pair.as_arr() {
            Some([lo, n]) => buckets.push((
                lo.as_u64()
                    .or_else(|| lo.as_f64().map(|f| f as u64))
                    .ok_or_else(|| format!("histogram '{name}' has a non-numeric bucket edge"))?,
                n.as_u64()
                    .ok_or_else(|| format!("histogram '{name}' has a non-numeric bucket count"))?,
            )),
            _ => {
                return Err(format!(
                    "histogram '{name}' bucket is not a [lo, count] pair"
                ))
            }
        }
    }
    Ok(HistSummary {
        name: name.to_string(),
        count: num("count")?,
        sum: num("sum")?,
        max: num("max")?,
        p50: num("p50")?,
        p90: num("p90")?,
        p99: num("p99")?,
        buckets,
    })
}

/// Expands a path argument into report files: a `.json` file stands
/// alone, a directory contributes every `*.json` inside it (sorted, not
/// recursive).
pub fn expand_report_paths(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("cannot list '{}': {e}", path.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("no *.json reports in '{}'", path.display()));
        }
        Ok(files)
    } else {
        Ok(vec![path.to_path_buf()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) const V4_DOC: &str = r#"{
  "schema": "mlp-experiments.report/v4",
  "experiment": "epochs",
  "title": "Epoch behavior",
  "section": "§3",
  "scale": "quick",
  "status": "ok",
  "seed": 42,
  "axes": {},
  "rows": [],
  "metrics": {
    "mlpsim.epochs": 128,
    "experiment.run.total_ms": 1.5
  },
  "histograms": {
    "mlpsim.epoch.len_insts": {"count": 4, "sum": 106, "max": 100, "p50": 3, "p90": 100, "p99": 100, "buckets": [[1, 1], [2, 2], [64, 1]]}
  }
}
"#;

    #[test]
    fn loads_v4_documents() {
        let doc = json::parse(V4_DOC).unwrap();
        let r = Report::from_json(&doc).unwrap();
        assert_eq!(r.schema, "mlp-experiments.report/v4");
        assert_eq!(r.experiment, "epochs");
        assert_eq!(r.metrics.len(), 2);
        assert_eq!(r.metrics[0], ("mlpsim.epochs".to_string(), 128.0));
        let h = &r.histograms[0];
        assert_eq!(h.name, "mlpsim.epoch.len_insts");
        assert_eq!((h.count, h.sum, h.max), (4, 106, 100));
        assert_eq!((h.p50, h.p90, h.p99), (3, 100, 100));
        assert_eq!(h.buckets, vec![(1, 1), (2, 2), (64, 1)]);
        assert!((h.mean() - 26.5).abs() < 1e-12);
    }

    #[test]
    fn v2_documents_load_with_empty_blocks() {
        let doc = json::parse(
            r#"{"schema": "mlp-experiments.report/v2", "experiment": "x",
                "scale": "quick", "status": "ok", "rows": []}"#,
        )
        .unwrap();
        let r = Report::from_json(&doc).unwrap();
        assert!(r.metrics.is_empty());
        assert!(r.histograms.is_empty());
    }

    #[test]
    fn foreign_schemas_are_rejected() {
        let doc = json::parse(r#"{"schema": "something-else/v1"}"#).unwrap();
        assert!(Report::from_json(&doc).is_err());
    }
}
