//! Folding interval samples from an `--events` JSONL trace into
//! per-window series.
//!
//! The engines' [`mlp_obs::IntervalSampler`]s emit one `*.sample` event
//! per `MLP_OBS_INTERVAL` retired instructions, each carrying the
//! sampler position (`insts`) and *cumulative* run counters. This module
//! groups samples by event name and differences consecutive samples, so
//! each row is what happened *inside* one window: instructions retired,
//! off-chip accesses, cycles, and a derived per-window MLP —
//! `Δmlp_weighted / Δactive_cycles` when the cycle simulator's fields
//! are present, else `Δoffchip / Δepochs` (useful off-chip per epoch)
//! for the epoch model.
//!
//! The one instantaneous field, `mshr` (occupancy at the sample
//! instant), is reported raw rather than differenced.

use crate::json::{self, Json};
use mlp_experiments::table::{f3, TextTable};
use std::fmt::Write as _;
use std::path::Path;

/// One parsed sample: position plus numeric fields in document order.
#[derive(Clone, Debug)]
struct Sample {
    insts: u64,
    fields: Vec<(String, f64)>,
}

/// Samples grouped under one event name, in arrival order.
#[derive(Clone, Debug)]
struct Series {
    event: String,
    samples: Vec<Sample>,
}

/// Fields reported as-is (instantaneous) instead of per-window deltas.
const INSTANTANEOUS: &[&str] = &["mshr"];

/// Reads a JSONL trace and renders per-window tables for every sample
/// series (events named `*.sample`, or exactly `event_filter` when
/// given). Unparseable lines are counted and reported, not fatal — a
/// trace cut short by a crash should still fold.
pub fn render(path: &Path, event_filter: Option<&str>) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read '{}': {e}", path.display()))?;
    let mut series: Vec<Series> = Vec::new();
    let mut skipped = 0usize;
    let mut total_lines = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        total_lines += 1;
        let Ok(doc) = json::parse(line) else {
            skipped += 1;
            continue;
        };
        let Some(event) = doc.get("event").and_then(Json::as_str) else {
            skipped += 1;
            continue;
        };
        let wanted = match event_filter {
            Some(name) => event == name,
            None => event.ends_with(".sample"),
        };
        if !wanted {
            continue;
        }
        let Some(sample) = parse_sample(&doc) else {
            skipped += 1;
            continue;
        };
        match series.iter_mut().find(|s| s.event == event) {
            Some(s) => s.samples.push(sample),
            None => series.push(Series {
                event: event.to_string(),
                samples: vec![sample],
            }),
        }
    }
    if total_lines == 0 {
        return Err(format!("'{}' contains no events", path.display()));
    }
    if series.is_empty() {
        return Err(match event_filter {
            Some(name) => format!("no '{name}' samples in '{}'", path.display()),
            None => format!(
                "no *.sample events in '{}' (was the run started with MLP_OBS=events|all and --events?)",
                path.display()
            ),
        });
    }

    let mut out = String::new();
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_series(s));
    }
    if skipped > 0 {
        let _ = writeln!(out, "({skipped} unparseable or incomplete lines skipped)");
    }
    Ok(out)
}

fn parse_sample(doc: &Json) -> Option<Sample> {
    let mut insts = None;
    let mut fields = Vec::new();
    for (key, value) in doc.as_obj()? {
        if key == "seq" || key == "event" {
            continue;
        }
        let v = value.as_f64()?;
        if key == "insts" {
            insts = Some(v as u64);
        } else {
            fields.push((key.clone(), v));
        }
    }
    Some(Sample {
        insts: insts?,
        fields,
    })
}

/// Per-window MLP from the fields present: weighted-occupancy over
/// active cycles (cycle simulators) or off-chip per epoch (epoch model).
fn window_mlp(deltas: &[(String, f64)]) -> Option<f64> {
    let get = |name: &str| deltas.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    if let (Some(w), Some(a)) = (get("mlp_weighted"), get("active_cycles")) {
        return Some(if a > 0.0 { w / a } else { 0.0 });
    }
    if let (Some(off), Some(ep)) = (get("offchip"), get("epochs")) {
        return Some(if ep > 0.0 { off / ep } else { 0.0 });
    }
    None
}

fn render_series(series: &Series) -> String {
    let field_names: Vec<&str> = series.samples[0]
        .fields
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    let has_mlp = window_mlp(
        &field_names
            .iter()
            .map(|n| (n.to_string(), 1.0))
            .collect::<Vec<_>>(),
    )
    .is_some();

    // `d_` marks per-window deltas (TextTable aligns on byte widths, so
    // headers stay ASCII).
    let mut headers: Vec<String> = vec!["#".into(), "insts".into(), "d_insts".into()];
    for name in &field_names {
        if INSTANTANEOUS.contains(name) {
            headers.push((*name).to_string());
        } else {
            headers.push(format!("d_{name}"));
        }
    }
    if has_mlp {
        headers.push("mlp".into());
    }
    let mut table = TextTable::new(headers).with_title(format!(
        "{} — {} windows",
        series.event,
        series.samples.len()
    ));

    let mut prev_insts = 0u64;
    let mut prev: Vec<f64> = vec![0.0; field_names.len()];
    for (w, sample) in series.samples.iter().enumerate() {
        if sample.insts < prev_insts {
            // The sampler position went backwards: a new engine run
            // started into the same trace. Fold from zero again.
            prev_insts = 0;
            prev.iter_mut().for_each(|v| *v = 0.0);
        }
        let mut row = vec![
            w.to_string(),
            sample.insts.to_string(),
            (sample.insts.saturating_sub(prev_insts)).to_string(),
        ];
        let mut deltas: Vec<(String, f64)> = Vec::with_capacity(field_names.len());
        for (i, name) in field_names.iter().enumerate() {
            // A series is expected to keep one field layout; fall back
            // to 0 if a sample is missing a field rather than panicking.
            let value = sample
                .fields
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            if INSTANTANEOUS.contains(name) {
                row.push(fmt_num(value));
                deltas.push((name.to_string(), value));
            } else {
                let d = value - prev[i];
                row.push(fmt_num(d));
                deltas.push((name.to_string(), d));
                prev[i] = value;
            }
        }
        if has_mlp {
            row.push(window_mlp(&deltas).map(f3).unwrap_or_else(|| "-".into()));
        }
        table.row(row);
        prev_insts = sample.insts;
    }
    table.render()
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_trace(lines: &[&str]) -> std::path::PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "mlp-stats-timeline-{}-{n}.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        path
    }

    #[test]
    fn folds_cumulative_fields_into_window_deltas() {
        let path = write_trace(&[
            r#"{"seq":0,"event":"mlpsim.sample","insts":100,"epochs":10,"offchip":20}"#,
            r#"{"seq":1,"event":"mlpsim.sample","insts":200,"epochs":30,"offchip":80}"#,
            r#"{"seq":2,"event":"mlpsim.run","insts":200}"#,
        ]);
        let out = render(&path, None).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(out.contains("mlpsim.sample — 2 windows"));
        // Window 1: Δepochs 20, Δoffchip 60 → MLP 3.0.
        assert!(out.contains("3.000"));
        // Window 0 folds from zero: 10 epochs, 20 offchip → 2.0.
        assert!(out.contains("2.000"));
        // The non-sample run event is ignored.
        assert!(!out.contains("mlpsim.run"));
    }

    #[test]
    fn instantaneous_fields_stay_raw_and_torn_lines_skip() {
        let path = write_trace(&[
            r#"{"seq":0,"event":"cyclesim.sample","insts":100,"cycles":400,"offchip":8,"mshr":5,"mlp_weighted":300,"active_cycles":150}"#,
            r#"{"seq":1,"event":"cyclesim.sample","insts":200,"cycles":900,"offchip":20,"mshr":2,"mlp_weighted":900,"active_cycles":350}"#,
            r#"{"seq":2,"event":"cyclesim.sample","insts":300,"cyc"#, // torn mid-write
        ]);
        let out = render(&path, Some("cyclesim.sample")).unwrap();
        std::fs::remove_file(&path).unwrap();
        // mshr column shows the raw occupancy, not a delta.
        assert!(out.contains("mshr"));
        assert!(!out.contains("d_mshr"));
        // Window 1 MLP = Δmlp_weighted / Δactive_cycles = 600 / 200.
        assert!(out.contains("3.000"));
        assert!(out.contains("1 unparseable or incomplete lines skipped"));
    }

    #[test]
    fn position_reset_starts_a_new_fold() {
        // Two engine runs share one trace; the second run's first
        // sample must fold from zero, not difference across runs.
        let path = write_trace(&[
            r#"{"seq":0,"event":"mlpsim.sample","insts":100,"epochs":10,"offchip":20}"#,
            r#"{"seq":1,"event":"mlpsim.sample","insts":90,"epochs":8,"offchip":40}"#,
        ]);
        let out = render(&path, None).unwrap();
        std::fs::remove_file(&path).unwrap();
        // Second run folds from zero: 8 epochs, 40 offchip → MLP 5.0
        // (differencing across runs would give -2 epochs and +20).
        assert!(!out.contains("-2"));
        assert!(out.contains("5.000"));
    }

    #[test]
    fn missing_samples_are_an_error() {
        let path = write_trace(&[r#"{"seq":0,"event":"mlpsim.run","insts":1}"#]);
        let err = render(&path, None).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(err.contains("no *.sample events"));
    }
}
