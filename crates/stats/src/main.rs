//! The `mlp-stats` command-line interface.
//!
//! ```text
//! mlp-stats summary <report.json | dir>...
//! mlp-stats diff <baseline.json> <candidate.json> [--threshold F] [--include-time]
//! mlp-stats timeline <events.jsonl> [--event NAME]
//! ```
//!
//! Exit codes: 0 success (for `diff`: all deltas within threshold),
//! 1 `diff` found flagged metrics, 2 usage or input error.

use mlp_stats::diff::{self, DiffOptions};
use mlp_stats::report::{expand_report_paths, Report};
use mlp_stats::{summary, timeline};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
mlp-stats: analyze mlp-experiments reports and event traces

Usage:
  mlp-stats summary <report.json | dir>...
      Distribution summaries (count/mean/p50/p90/p99/max) from the
      histograms block of v4 reports.

  mlp-stats diff <baseline.json> <candidate.json> [options]
      Per-metric relative deltas between two reports of the same
      experiment. Exits 1 if any |delta| exceeds the threshold or a
      metric appears on only one side.
        --threshold <frac>   tolerated |relative delta| (default 0.05)
        --include-time       also compare *.total_ms / *.max_ms metrics

  mlp-stats timeline <events.jsonl> [--event NAME]
      Fold interval samples (*.sample events) into per-window series
      with a derived per-window MLP.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("mlp-stats: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err(format!("missing subcommand\n\n{USAGE}"));
    };
    match command.as_str() {
        "summary" => cmd_summary(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "timeline" => cmd_timeline(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

fn cmd_summary(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err("summary needs at least one report file or directory".to_string());
    }
    let mut reports = Vec::new();
    for arg in args {
        for path in expand_report_paths(Path::new(arg))? {
            reports.push(Report::load(&path)?);
        }
    }
    print!("{}", summary::render(&reports));
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut opts = DiffOptions::default();
    let mut paths: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| "--threshold needs a value".to_string())?;
                opts.threshold = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("invalid threshold '{raw}'"))?;
            }
            "--include-time" => opts.include_time = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path => paths.push(path),
        }
        i += 1;
    }
    let [baseline, candidate] = paths[..] else {
        return Err("diff needs exactly a <baseline> and a <candidate> report".to_string());
    };
    let base = Report::load(Path::new(baseline))?;
    let cand = Report::load(Path::new(candidate))?;
    let outcome = diff::diff(&base, &cand, opts);
    print!("{}", outcome.table);
    Ok(if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_timeline(args: &[String]) -> Result<ExitCode, String> {
    let mut event: Option<&str> = None;
    let mut paths: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--event" => {
                i += 1;
                event = Some(
                    args.get(i)
                        .map(String::as_str)
                        .ok_or_else(|| "--event needs a name".to_string())?,
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path => paths.push(path),
        }
        i += 1;
    }
    let [trace] = paths[..] else {
        return Err("timeline needs exactly one <events.jsonl> trace".to_string());
    };
    print!("{}", timeline::render(Path::new(trace), event)?);
    Ok(ExitCode::SUCCESS)
}
