//! FxHash-style hashing for the simulator hot paths.
//!
//! The epoch and cycle engines key almost every hot map by `u64` (cache-line
//! addresses, PCs, cycle stamps). `std`'s default SipHash is DoS-resistant
//! but costs tens of cycles per lookup; none of these maps are exposed to
//! untrusted input, so we use the Firefox/rustc "Fx" multiply-rotate hash
//! instead: one rotate, one xor, one multiply per word.
//!
//! Vendored rather than depending on `rustc-hash` because the build
//! environment has no network access to a crate registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx hash (a truncation of the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher. One `u64` of state; not DoS-resistant.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An empty [`FxHashMap`] with room for `cap` entries.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// An empty [`FxHashSet`] with room for `cap` entries.
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_u64_keys() {
        let mut m: FxHashMap<u64, u64> = map_with_capacity(1024);
        for k in 0..10_000u64 {
            m.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15), k);
        }
        for k in 0..10_000u64 {
            assert_eq!(m.get(&k.wrapping_mul(0x9e37_79b9_7f4a_7c15)), Some(&k));
        }
    }

    #[test]
    fn hash_depends_on_every_word() {
        use std::hash::Hasher;
        let h = |words: &[u64]| {
            let mut f = FxHasher::default();
            for &w in words {
                f.write_u64(w);
            }
            f.finish()
        };
        assert_ne!(h(&[1, 2]), h(&[2, 1]));
        assert_ne!(h(&[1]), h(&[1, 1]));
    }

    #[test]
    fn byte_writes_cover_remainders() {
        use std::hash::Hasher;
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Different lengths with identical padding may collide or not; the
        // requirement is only that writes terminate and are deterministic.
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_eq!(a.finish(), c.finish());
        let _ = b.finish();
    }
}
