//! First-party observability for the MLP simulators: named counters,
//! phase timers, log2-bucketed [`Histogram`]s, interval sampling
//! ([`IntervalSampler`]), and an optional structured (JSONL) event
//! stream.
//!
//! The whole layer is **off by default** and costs one relaxed atomic
//! load per probe when disarmed — the simulator hot paths from PR 1 stay
//! untouched unless the user opts in:
//!
//! ```text
//! MLP_OBS=counters   # accumulate counters + timers only
//! MLP_OBS=events     # emit JSONL events only (needs a sink, see below)
//! MLP_OBS=all        # both
//! ```
//!
//! Counters and timers are `static` values registered lazily on first
//! touch; [`snapshot_and_reset`] drains every armed counter into a
//! deterministic, name-sorted [`Snapshot`] (only nonzero entries), which
//! the experiments CLI renders as the report `metrics` block.
//!
//! Events go to a process-global JSONL sink installed with
//! [`set_event_sink`]; each line carries a monotonic `seq`, the event
//! name, and a flat map of fields. The experiments CLI points the sink
//! at `<dir>/<experiment>.<scale>.jsonl` when invoked with
//! `--events <dir>` (which also force-arms event mode via
//! [`enable_events`]).
//!
//! Like `mlp-faults`, the env var is parsed once, on first probe; tests
//! override the mode with [`set_for_test`] and must serialize on their
//! own lock because the state is process-global.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

mod hist;
mod sample;

pub use hist::{
    bucket_hi, bucket_lo, bucket_of, Histogram, HistogramValue, LocalHist, HIST_BUCKETS,
};
pub use sample::{IntervalSampler, DEFAULT_INTERVAL, INTERVAL_ENV_VAR};

/// The environment variable holding the observability mode.
pub const ENV_VAR: &str = "MLP_OBS";

/// What the layer records. `Off` unless `MLP_OBS` (or a test override)
/// says otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Every probe is a no-op (the default).
    Off,
    /// Counters and phase timers accumulate; no events.
    Counters,
    /// Events stream to the installed sink; no counters.
    Events,
    /// Counters and events both.
    All,
}

/// Sentinel for "env var not parsed yet".
const MODE_UNINIT: u8 = u8::MAX;

/// The resolved mode, encoded; `MODE_UNINIT` until first probe.
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

/// Serializes env parsing (and test overrides) of `MODE`.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn encode(m: Mode) -> u8 {
    match m {
        Mode::Off => 0,
        Mode::Counters => 1,
        Mode::Events => 2,
        Mode::All => 3,
    }
}

fn decode(v: u8) -> Mode {
    match v {
        1 => Mode::Counters,
        2 => Mode::Events,
        3 => Mode::All,
        _ => Mode::Off,
    }
}

fn mode_from_env() -> Mode {
    match std::env::var(ENV_VAR) {
        Ok(spec) => match spec.trim() {
            "" | "off" | "0" => Mode::Off,
            "counters" => Mode::Counters,
            "events" => Mode::Events,
            "all" | "1" => Mode::All,
            other => {
                // Warn once (we only parse once) and stay off: a typo in
                // an observability knob must never change results.
                eprintln!(
                    "[mlp-obs] ignoring unknown {ENV_VAR}='{other}' \
                     (expected counters|events|all|off)"
                );
                Mode::Off
            }
        },
        Err(_) => Mode::Off,
    }
}

/// The current mode, parsing `MLP_OBS` on first call.
pub fn mode() -> Mode {
    let m = MODE.load(Ordering::Relaxed);
    if m != MODE_UNINIT {
        return decode(m);
    }
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let m = MODE.load(Ordering::Relaxed);
    if m != MODE_UNINIT {
        return decode(m);
    }
    let parsed = mode_from_env();
    MODE.store(encode(parsed), Ordering::Relaxed);
    parsed
}

/// Whether counters and timers accumulate. This is the single gate every
/// probe checks: one relaxed atomic load when disarmed.
#[inline]
pub fn counters_on() -> bool {
    matches!(mode(), Mode::Counters | Mode::All)
}

/// Whether events are emitted (an installed sink is still required).
#[inline]
pub fn events_on() -> bool {
    matches!(mode(), Mode::Events | Mode::All)
}

/// Overrides the mode for tests. `None` forgets the override so the next
/// probe re-reads the environment. Process-global: callers must
/// serialize on their own lock.
pub fn set_for_test(mode: Option<Mode>) {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    MODE.store(mode.map_or(MODE_UNINIT, encode), Ordering::Relaxed);
}

/// Arms event emission on top of whatever the env said — the CLI's
/// `--events <dir>` flag must work without also exporting `MLP_OBS`.
pub fn enable_events() {
    let upgraded = match mode() {
        Mode::Off => Mode::Events,
        Mode::Counters => Mode::All,
        m => m,
    };
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    MODE.store(encode(upgraded), Ordering::Relaxed);
}

/// Arms counter accumulation on top of whatever the env said — the
/// `mlp-serve` daemon's `/statusz` metrics must work without requiring
/// every deployment to export `MLP_OBS`. Never downgrades.
pub fn enable_counters() {
    let upgraded = match mode() {
        Mode::Off => Mode::Counters,
        Mode::Events => Mode::All,
        m => m,
    };
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    MODE.store(encode(upgraded), Ordering::Relaxed);
}

/// How a counter combines recorded values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterKind {
    /// Values add up (`add`/`inc`).
    Sum,
    /// Keeps the maximum recorded value (`record_max`) — high-water marks.
    Max,
}

/// Registry of every counter touched while armed, for `snapshot_and_reset`.
static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

/// Registry of every phase timer touched while armed.
static TIMERS: Mutex<Vec<&'static PhaseTimer>> = Mutex::new(Vec::new());

/// A named, process-global counter. Declare as a `static`; recording is
/// a no-op unless [`counters_on`]. First touch while armed registers the
/// counter so [`snapshot_and_reset`] can find it.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    kind: CounterKind,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A summing counter.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            kind: CounterKind::Sum,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// A high-water-mark counter (`record_max` keeps the largest value).
    pub const fn new_max(name: &'static str) -> Counter {
        Counter {
            name,
            kind: CounterKind::Max,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's name as it appears in snapshots.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            let mut reg = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
            reg.push(self);
        }
    }

    /// Adds `n` (no-op when disarmed or `n == 0`).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if n == 0 || !counters_on() {
            return;
        }
        self.register();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 (no-op when disarmed).
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Records a high-water mark (no-op when disarmed or `v == 0`).
    #[inline]
    pub fn record_max(&'static self, v: u64) {
        if v == 0 || !counters_on() {
            return;
        }
        self.register();
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value (without resetting).
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named wall-clock phase timer: count / total / max nanoseconds
/// across all recorded phases. Use [`PhaseTimer::start`] for a scoped
/// guard or [`PhaseTimer::record_ns`] directly.
#[derive(Debug)]
pub struct PhaseTimer {
    name: &'static str,
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    registered: AtomicBool,
}

impl PhaseTimer {
    /// A new timer; declare as a `static`.
    pub const fn new(name: &'static str) -> PhaseTimer {
        PhaseTimer {
            name,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The timer's name as it appears in snapshots.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            let mut reg = TIMERS.lock().unwrap_or_else(|e| e.into_inner());
            reg.push(self);
        }
    }

    /// Starts a scoped measurement; the phase is recorded when the guard
    /// drops. Free (no clock read) when disarmed.
    pub fn start(&'static self) -> PhaseGuard {
        PhaseGuard {
            timer: self,
            start: counters_on().then(Instant::now),
        }
    }

    /// Records one phase of `ns` nanoseconds (no-op when disarmed).
    pub fn record_ns(&'static self, ns: u64) {
        if !counters_on() {
            return;
        }
        self.register();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// Scoped guard from [`PhaseTimer::start`]; records on drop.
#[must_use = "the phase is timed until this guard drops"]
pub struct PhaseGuard {
    timer: &'static PhaseTimer,
    start: Option<Instant>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.timer.record_ns(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// One counter's drained value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterValue {
    /// Counter name.
    pub name: &'static str,
    /// Sum or high-water mark.
    pub kind: CounterKind,
    /// The drained value (always nonzero in a snapshot).
    pub value: u64,
}

/// One phase timer's drained totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimerValue {
    /// Timer name.
    pub name: &'static str,
    /// Number of recorded phases.
    pub count: u64,
    /// Total nanoseconds across phases.
    pub total_ns: u64,
    /// Longest single phase in nanoseconds.
    pub max_ns: u64,
}

/// Everything drained by [`snapshot_and_reset`], name-sorted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Nonzero counters, sorted by name.
    pub counters: Vec<CounterValue>,
    /// Timers with at least one recorded phase, sorted by name.
    pub timers: Vec<TimerValue>,
    /// Histograms with at least one observation, sorted by name.
    pub histograms: Vec<HistogramValue>,
}

impl Snapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.timers.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a drained counter by name (0 if absent). Snapshots are
    /// name-sorted by construction, so this is a binary search — callers
    /// like the differential suite probe dozens of names per snapshot.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|c| c.name.cmp(name))
            .map_or(0, |i| self.counters[i].value)
    }

    /// Looks up a drained histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramValue> {
        self.histograms
            .binary_search_by(|h| h.name.cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }
}

/// Drains every registered counter and timer to zero and returns the
/// nonzero ones, sorted by name. Sums and maxima commute, so the result
/// is deterministic no matter how many sweep threads recorded.
pub fn snapshot_and_reset() -> Snapshot {
    let mut counters: Vec<CounterValue> = {
        let reg = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
        reg.iter()
            .filter_map(|c| {
                let value = c.value.swap(0, Ordering::Relaxed);
                (value != 0).then_some(CounterValue {
                    name: c.name,
                    kind: c.kind,
                    value,
                })
            })
            .collect()
    };
    counters.sort_by_key(|c| c.name);
    let mut timers: Vec<TimerValue> = {
        let reg = TIMERS.lock().unwrap_or_else(|e| e.into_inner());
        reg.iter()
            .filter_map(|t| {
                let count = t.count.swap(0, Ordering::Relaxed);
                let total_ns = t.total_ns.swap(0, Ordering::Relaxed);
                let max_ns = t.max_ns.swap(0, Ordering::Relaxed);
                (count != 0).then_some(TimerValue {
                    name: t.name,
                    count,
                    total_ns,
                    max_ns,
                })
            })
            .collect()
    };
    timers.sort_by_key(|t| t.name);
    let mut histograms: Vec<HistogramValue> = {
        let reg = hist::HISTOGRAMS.lock().unwrap_or_else(|e| e.into_inner());
        reg.iter().filter_map(|h| h.drain()).collect()
    };
    histograms.sort_by_key(|h| h.name);
    Snapshot {
        counters,
        timers,
        histograms,
    }
}

/// Reads every registered counter, timer and histogram **without
/// resetting anything** and returns the nonzero ones, sorted by name.
///
/// The non-draining sibling of [`snapshot_and_reset`], for live status
/// endpoints (`mlp-serve /statusz`) that report cumulative process
/// totals: a status probe must observe the daemon, not disturb it, so
/// two consecutive probes with no intervening activity return identical
/// snapshots.
pub fn snapshot() -> Snapshot {
    let mut counters: Vec<CounterValue> = {
        let reg = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
        reg.iter()
            .filter_map(|c| {
                let value = c.value.load(Ordering::Relaxed);
                (value != 0).then_some(CounterValue {
                    name: c.name,
                    kind: c.kind,
                    value,
                })
            })
            .collect()
    };
    counters.sort_by_key(|c| c.name);
    let mut timers: Vec<TimerValue> = {
        let reg = TIMERS.lock().unwrap_or_else(|e| e.into_inner());
        reg.iter()
            .filter_map(|t| {
                let count = t.count.load(Ordering::Relaxed);
                let total_ns = t.total_ns.load(Ordering::Relaxed);
                let max_ns = t.max_ns.load(Ordering::Relaxed);
                (count != 0).then_some(TimerValue {
                    name: t.name,
                    count,
                    total_ns,
                    max_ns,
                })
            })
            .collect()
    };
    timers.sort_by_key(|t| t.name);
    let mut histograms: Vec<HistogramValue> = {
        let reg = hist::HISTOGRAMS.lock().unwrap_or_else(|e| e.into_inner());
        reg.iter().filter_map(|h| h.peek()).collect()
    };
    histograms.sort_by_key(|h| h.name);
    Snapshot {
        counters,
        timers,
        histograms,
    }
}

/// A field value in an event line.
#[derive(Clone, Copy, Debug)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered via `{}`; NaN/inf become `null`).
    F64(f64),
    /// String (JSON-escaped).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// The process-global JSONL sink; `None` drops events.
static EVENT_SINK: Mutex<Option<std::io::BufWriter<std::fs::File>>> = Mutex::new(None);

/// Monotonic per-sink sequence number.
static EVENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Installs (or, with `None`, flushes and removes) the JSONL event sink
/// and resets the sequence counter. Events are dropped while no sink is
/// installed even when [`events_on`].
pub fn set_event_sink(path: Option<&Path>) -> std::io::Result<()> {
    let next = match path {
        Some(p) => Some(std::io::BufWriter::new(std::fs::File::create(p)?)),
        None => None,
    };
    let mut sink = EVENT_SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = sink.as_mut() {
        let _ = old.flush();
    }
    *sink = next;
    EVENT_SEQ.store(0, Ordering::Relaxed);
    Ok(())
}

/// Flushes the installed event sink without removing it. Call from panic
/// hooks: `emit` writes each event as one complete buffered line, so a
/// flush at panic time leaves the JSONL file parseable line-by-line with
/// no torn records.
pub fn flush_event_sink() {
    let mut sink = EVENT_SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(writer) = sink.as_mut() {
        let _ = writer.flush();
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Emits one event line `{"seq":N,"event":"...",...fields}` to the
/// installed sink. No-op unless [`events_on`] and a sink is installed.
pub fn emit(event: &str, fields: &[(&str, Value<'_>)]) {
    if !events_on() {
        return;
    }
    let mut sink = EVENT_SINK.lock().unwrap_or_else(|e| e.into_inner());
    let Some(writer) = sink.as_mut() else {
        return;
    };
    let seq = EVENT_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut line = String::with_capacity(64 + 24 * fields.len());
    let _ = write!(line, "{{\"seq\":{seq},\"event\":");
    push_json_str(&mut line, event);
    for (key, value) in fields {
        line.push(',');
        push_json_str(&mut line, key);
        line.push(':');
        match value {
            Value::U64(v) => {
                let _ = write!(line, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(line, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(line, "{v}");
            }
            Value::F64(_) => line.push_str("null"),
            Value::Str(s) => push_json_str(&mut line, s),
            Value::Bool(b) => {
                let _ = write!(line, "{b}");
            }
        }
    }
    line.push_str("}\n");
    let _ = writer.write_all(line.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mode, counters and the event sink are process-global; every test
    /// that arms them must hold this lock.
    static LOCK: Mutex<()> = Mutex::new(());

    static HITS: Counter = Counter::new("test.hits");
    static PEAK: Counter = Counter::new_max("test.peak");
    static PHASE: PhaseTimer = PhaseTimer::new("test.phase");

    #[test]
    fn disarmed_probes_record_nothing() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_for_test(Some(Mode::Off));
        let _ = snapshot_and_reset();
        HITS.add(5);
        PEAK.record_max(9);
        PHASE.record_ns(1000);
        drop(PHASE.start());
        assert!(snapshot_and_reset().is_empty());
        set_for_test(None);
    }

    #[test]
    fn armed_counters_drain_sorted_and_reset() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_for_test(Some(Mode::Counters));
        let _ = snapshot_and_reset();
        HITS.add(2);
        HITS.inc();
        PEAK.record_max(7);
        PEAK.record_max(3); // lower value must not win
        PHASE.record_ns(500);
        PHASE.record_ns(1500);
        let snap = snapshot_and_reset();
        assert_eq!(snap.counter("test.hits"), 3);
        assert_eq!(snap.counter("test.peak"), 7);
        let names: Vec<_> = snap.counters.iter().map(|c| c.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
        let timer = &snap.timers[0];
        assert_eq!((timer.name, timer.count), ("test.phase", 2));
        assert_eq!(timer.total_ns, 2000);
        assert_eq!(timer.max_ns, 1500);
        // Draining resets: a second snapshot is empty.
        assert!(snapshot_and_reset().is_empty());
        set_for_test(None);
    }

    static LOOKUP: [Counter; 5] = [
        Counter::new("lookup.delta"),
        Counter::new("lookup.alpha"),
        Counter::new("lookup.echo"),
        Counter::new("lookup.charlie"),
        Counter::new("lookup.bravo"),
    ];

    #[test]
    fn counter_lookup_finds_every_name_in_sorted_snapshot() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_for_test(Some(Mode::Counters));
        let _ = snapshot_and_reset();
        // Touch in declaration (non-sorted) order with distinct values.
        for (i, c) in LOOKUP.iter().enumerate() {
            c.add(i as u64 + 1);
        }
        let snap = snapshot_and_reset();
        // The binary search must agree with a linear scan for every
        // present name, and report 0 for absent/boundary names.
        for c in &LOOKUP {
            let linear = snap
                .counters
                .iter()
                .find(|v| v.name == c.name())
                .map_or(0, |v| v.value);
            assert_eq!(snap.counter(c.name()), linear, "{}", c.name());
            assert_ne!(snap.counter(c.name()), 0);
        }
        assert_eq!(snap.counter("lookup.aaaa"), 0); // before every entry
        assert_eq!(snap.counter("lookup.cb"), 0); // between entries
        assert_eq!(snap.counter("lookup.zzzz"), 0); // after every entry
        assert_eq!(snap.counter(""), 0);
        set_for_test(None);
    }

    static EPOCH_LEN: Histogram = Histogram::new("test.hist.epoch_len");

    #[test]
    fn histograms_drain_into_snapshots_and_reset() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_for_test(Some(Mode::Counters));
        let _ = snapshot_and_reset();
        for v in [0u64, 1, 5, 5, 200] {
            EPOCH_LEN.record(v);
        }
        let snap = snapshot_and_reset();
        let h = snap.histogram("test.hist.epoch_len").expect("recorded");
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 211);
        assert_eq!(h.max, 200);
        assert_eq!(h.quantile(0.5), bucket_hi(bucket_of(5)));
        assert!(snap.histogram("test.hist.absent").is_none());
        // Draining resets the buckets, sum and max.
        assert!(snapshot_and_reset().is_empty());
        // Disarmed records leave nothing behind.
        set_for_test(Some(Mode::Off));
        EPOCH_LEN.record(7);
        set_for_test(Some(Mode::Counters));
        assert!(snapshot_and_reset().is_empty());
        set_for_test(None);
    }

    #[test]
    fn local_hist_flush_matches_direct_records() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_for_test(Some(Mode::Counters));
        let _ = snapshot_and_reset();
        static DIRECT: Histogram = Histogram::new("test.hist.direct");
        static FLUSHED: Histogram = Histogram::new("test.hist.flushed");
        let mut local = LocalHist::new();
        for v in [3u64, 9, 9, 1024] {
            DIRECT.record(v);
            local.record(v);
        }
        local.flush_to(&FLUSHED);
        let snap = snapshot_and_reset();
        let direct = snap.histogram("test.hist.direct").expect("direct");
        let flushed = snap.histogram("test.hist.flushed").expect("flushed");
        assert_eq!(direct.buckets, flushed.buckets);
        assert_eq!(direct.count, flushed.count);
        assert_eq!(direct.sum, flushed.sum);
        assert_eq!(direct.max, flushed.max);
        set_for_test(None);
    }

    #[test]
    fn events_stream_as_jsonl_with_sequence_numbers() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_for_test(Some(Mode::Events));
        let path = std::env::temp_dir().join(format!("mlp-obs-test-{}.jsonl", std::process::id()));
        set_event_sink(Some(&path)).expect("create sink");
        emit(
            "run",
            &[
                ("insts", Value::U64(100)),
                ("mlp", Value::F64(1.5)),
                ("kind", Value::Str("db\"x")),
                ("ok", Value::Bool(true)),
                ("bad", Value::F64(f64::NAN)),
            ],
        );
        emit("done", &[]);
        set_event_sink(None).expect("flush sink");
        let text = std::fs::read_to_string(&path).expect("read events");
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"event\":\"run\",\"insts\":100,\"mlp\":1.5,\
             \"kind\":\"db\\\"x\",\"ok\":true,\"bad\":null}"
        );
        assert_eq!(lines[1], "{\"seq\":1,\"event\":\"done\"}");
        let _ = std::fs::remove_file(&path);
        set_for_test(None);
    }

    #[test]
    fn events_without_sink_or_mode_are_dropped() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_for_test(Some(Mode::Events));
        emit("orphan", &[]); // no sink installed: silently dropped
        set_for_test(Some(Mode::Counters));
        let path = std::env::temp_dir().join(format!("mlp-obs-drop-{}.jsonl", std::process::id()));
        set_event_sink(Some(&path)).expect("create sink");
        emit("muted", &[]); // sink installed but events not armed
        set_event_sink(None).expect("flush sink");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "");
        let _ = std::fs::remove_file(&path);
        set_for_test(None);
    }

    #[test]
    fn enable_counters_upgrades_but_never_downgrades() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_for_test(Some(Mode::Off));
        enable_counters();
        assert_eq!(mode(), Mode::Counters);
        set_for_test(Some(Mode::Events));
        enable_counters();
        assert_eq!(mode(), Mode::All);
        set_for_test(Some(Mode::All));
        enable_counters();
        assert_eq!(mode(), Mode::All);
        set_for_test(None);
    }

    static PEEK_HITS: Counter = Counter::new("test.peek.hits");
    static PEEK_PHASE: PhaseTimer = PhaseTimer::new("test.peek.phase");
    static PEEK_HIST: Histogram = Histogram::new("test.peek.hist");

    #[test]
    fn snapshot_reads_without_resetting() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_for_test(Some(Mode::Counters));
        let _ = snapshot_and_reset();
        PEEK_HITS.add(4);
        PEEK_PHASE.record_ns(800);
        PEEK_HIST.record(17);
        let first = snapshot();
        let second = snapshot();
        assert_eq!(first, second, "consecutive peeks must be identical");
        assert_eq!(first.counter("test.peek.hits"), 4);
        let timer = first
            .timers
            .iter()
            .find(|t| t.name == "test.peek.phase")
            .expect("timer peeked");
        assert_eq!((timer.count, timer.total_ns), (1, 800));
        let h = first.histogram("test.peek.hist").expect("hist peeked");
        assert_eq!((h.count, h.sum, h.max), (1, 17, 17));
        // Values keep accumulating after a peek…
        PEEK_HITS.add(1);
        assert_eq!(snapshot().counter("test.peek.hits"), 5);
        // …and are still there for the draining snapshot.
        let drained = snapshot_and_reset();
        assert_eq!(drained.counter("test.peek.hits"), 5);
        assert!(snapshot().counter("test.peek.hits") == 0);
        set_for_test(None);
    }

    #[test]
    fn enable_events_upgrades_but_never_downgrades() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_for_test(Some(Mode::Off));
        enable_events();
        assert_eq!(mode(), Mode::Events);
        set_for_test(Some(Mode::Counters));
        enable_events();
        assert_eq!(mode(), Mode::All);
        set_for_test(Some(Mode::All));
        enable_events();
        assert_eq!(mode(), Mode::All);
        set_for_test(None);
    }
}
