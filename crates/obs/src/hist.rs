//! Log2-bucketed distribution histograms.
//!
//! A [`Histogram`] is the distribution-shaped sibling of
//! [`Counter`](crate::Counter): a `static`, lock-free array of power-of-two
//! buckets plus exact count/sum/max, registered lazily on first armed
//! touch and drained (name-sorted, swap-to-zero) by
//! [`snapshot_and_reset`](crate::snapshot_and_reset). Recording costs one
//! relaxed atomic load when `MLP_OBS` is off, like every other probe in
//! this crate.
//!
//! Bucket `b` holds values whose bit width is `b`: bucket 0 is exactly
//! `{0}`, bucket 1 is `{1}`, bucket 2 is `2..=3`, and so on up to bucket
//! 64 (`2^63..=u64::MAX`). Log2 buckets keep the footprint fixed (65
//! words) while bounding every quantile estimate by a factor of two —
//! enough to tell a 3-access epoch from a 40-access one, which is what
//! the paper's distribution arguments need.
//!
//! Engines that must keep their hot loops probe-free accumulate into a
//! plain [`LocalHist`] and flush it once at end of run with
//! [`LocalHist::flush_to`] (the same end-of-run discipline as the
//! counter flushes from PR 4).

use crate::counters_on;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log2 buckets: one per possible `u64` bit width (0..=64).
pub const HIST_BUCKETS: usize = 65;

/// The bucket index holding `v`: its bit width (0 for 0, 1 for 1, 2 for
/// 2..=3, …, 64 for `2^63..`). Monotone in `v`.
#[inline]
pub const fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Smallest value in bucket `b` (0 for bucket 0).
///
/// # Panics
///
/// Panics if `b >= HIST_BUCKETS`.
pub const fn bucket_lo(b: usize) -> u64 {
    assert!(b < HIST_BUCKETS);
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Largest value in bucket `b` (`u64::MAX` for the last bucket).
///
/// # Panics
///
/// Panics if `b >= HIST_BUCKETS`.
pub const fn bucket_hi(b: usize) -> u64 {
    assert!(b < HIST_BUCKETS);
    if b == 0 {
        0
    } else if b == HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Registry of every histogram touched while armed.
pub(crate) static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// A named, process-global log2-bucketed histogram. Declare as a
/// `static`; recording is a no-op unless counters are armed. First touch
/// while armed registers the histogram so
/// [`snapshot_and_reset`](crate::snapshot_and_reset) can find it.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// A new histogram; declare as a `static`.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's name as it appears in snapshots.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            let mut reg = HISTOGRAMS.lock().unwrap_or_else(|e| e.into_inner());
            reg.push(self);
        }
    }

    /// Records one observation of `v` (no-op when disarmed; `v == 0` is a
    /// real observation, unlike `Counter::add(0)`).
    #[inline]
    pub fn record(&'static self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of `v` at once — how local tallies and
    /// per-bucket flushes fold in (no-op when disarmed or `n == 0`).
    #[inline]
    pub fn record_n(&'static self, v: u64, n: u64) {
        if n == 0 || !counters_on() {
            return;
        }
        self.register();
        self.buckets[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Drains the histogram to zero, returning its value if any
    /// observation was recorded.
    pub(crate) fn drain(&'static self) -> Option<HistogramValue> {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            let n = slot.swap(0, Ordering::Relaxed);
            if n != 0 {
                buckets.push((b as u32, n));
                count += n;
            }
        }
        let sum = self.sum.swap(0, Ordering::Relaxed);
        let max = self.max.swap(0, Ordering::Relaxed);
        (count != 0).then_some(HistogramValue {
            name: self.name,
            buckets,
            count,
            sum,
            max,
        })
    }

    /// Reads the histogram without resetting it, returning its value if
    /// any observation was recorded. The non-draining sibling of
    /// [`Histogram::drain`] for live status endpoints that must not
    /// perturb accumulating state.
    pub(crate) fn peek(&'static self) -> Option<HistogramValue> {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            let n = slot.load(Ordering::Relaxed);
            if n != 0 {
                buckets.push((b as u32, n));
                count += n;
            }
        }
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        (count != 0).then_some(HistogramValue {
            name: self.name,
            buckets,
            count,
            sum,
            max,
        })
    }
}

/// One histogram's drained distribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramValue {
    /// Histogram name.
    pub name: &'static str,
    /// `(bucket index, observation count)` pairs, ascending by bucket,
    /// nonzero counts only.
    pub buckets: Vec<(u32, u64)>,
    /// Total observations (the sum of every bucket count).
    pub count: u64,
    /// Exact sum of every recorded value (wrapping on overflow).
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

impl HistogramValue {
    /// The mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the upper
    /// edge of the bucket holding the ⌈q·count⌉-th smallest observation,
    /// tightened by the exact maximum. By construction the estimate lies
    /// within the edges of that bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(b, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return bucket_hi(b as usize).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other`'s observations into `self` (bucket-wise sum; counts,
    /// sums and maxima combine exactly). Merging is how multi-run
    /// aggregation works: the result is identical to having recorded both
    /// runs into one histogram.
    pub fn merge(&mut self, other: &HistogramValue) {
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            let a = self.buckets.get(i);
            let b = other.buckets.get(j);
            match (a, b) {
                (Some(&(ba, na)), Some(&(bb, nb))) if ba == bb => {
                    merged.push((ba, na + nb));
                    i += 1;
                    j += 1;
                }
                (Some(&(ba, na)), Some(&(bb, _))) if ba < bb => {
                    merged.push((ba, na));
                    i += 1;
                }
                (Some(_), Some(&(bb, nb))) => {
                    merged.push((bb, nb));
                    j += 1;
                }
                (Some(&(ba, na)), None) => {
                    merged.push((ba, na));
                    i += 1;
                }
                (None, Some(&(bb, nb))) => {
                    merged.push((bb, nb));
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// A plain, unsynchronized histogram tally for simulator-local
/// accumulation: engines record into a `LocalHist` field with no
/// atomics, no registration and no mode check, then flush once at end of
/// run. Flushing is the only probe, so unarmed runs never even construct
/// the flush path's statics.
#[derive(Clone, Debug)]
pub struct LocalHist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalHist {
    fn default() -> LocalHist {
        LocalHist::new()
    }
}

impl LocalHist {
    /// An empty tally.
    pub const fn new() -> LocalHist {
        LocalHist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of every recorded value (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds the tally into the global histogram `target`, exactly:
    /// bucket-wise adds plus the true sum and max (no-op when counters
    /// are disarmed or nothing was recorded). Does not reset `self`;
    /// local tallies die with their run.
    pub fn flush_to(&self, target: &'static Histogram) {
        if self.count == 0 || !counters_on() {
            return;
        }
        target.register();
        for (b, &n) in self.buckets.iter().enumerate() {
            if n != 0 {
                target.buckets[b].fetch_add(n, Ordering::Relaxed);
            }
        }
        target.sum.fetch_add(self.sum, Ordering::Relaxed);
        target.max.fetch_max(self.max, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_cover_the_line() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            assert!(bucket_lo(b) <= bucket_hi(b));
            assert_eq!(bucket_of(bucket_lo(b)), b);
            assert_eq!(bucket_of(bucket_hi(b)), b);
        }
    }

    #[test]
    fn local_hist_records_and_summarizes() {
        let mut h = LocalHist::new();
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum, 106);
        assert_eq!(h.max, 100);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 2); // 2 and 3
        assert_eq!(h.buckets[7], 1); // 100 is 7 bits wide
    }

    #[test]
    fn quantiles_and_merge() {
        let mk = |values: &[u64]| {
            let mut buckets = [0u64; HIST_BUCKETS];
            for &v in values {
                buckets[bucket_of(v)] += 1;
            }
            HistogramValue {
                name: "t",
                buckets: buckets
                    .iter()
                    .enumerate()
                    .filter(|&(_, &n)| n != 0)
                    .map(|(b, &n)| (b as u32, n))
                    .collect(),
                count: values.len() as u64,
                sum: values.iter().sum(),
                max: values.iter().copied().max().unwrap_or(0),
            }
        };
        let h = mk(&[1, 1, 1, 1, 1, 1, 1, 1, 1, 40]);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.99), 40); // tightened by the exact max
        assert!((h.mean() - 4.9).abs() < 1e-12);
        let mut a = mk(&[1, 2, 3]);
        let b = mk(&[3, 64]);
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 73);
        assert_eq!(a.max, 64);
        let total: u64 = a.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 5);
    }
}
