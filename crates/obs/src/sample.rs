//! Interval sampling: periodic counter snapshots in the event stream.
//!
//! An [`IntervalSampler`] turns the end-of-run scalars from PR 4 into a
//! time series: every `interval` simulated instructions it emits one
//! event line carrying whatever cumulative fields the engine hands it
//! (epochs retired, off-chip accesses, MSHR occupancy, …). `mlp-stats
//! timeline` later differences consecutive samples into per-window rates
//! — window MLP, occupancy — which is how the paper's phase-behavior
//! arguments become observable.
//!
//! The sampler follows the crate's pay-nothing-when-off discipline by
//! construction: [`IntervalSampler::armed`] returns `None` unless events
//! are armed, so disarmed engines carry an `Option` that is never
//! `Some` and the hot path costs one `is_some` check. Engines should
//! gate field computation on [`IntervalSampler::due`] so cumulative
//! stats are only gathered when a sample is actually emitted.
//!
//! Sampling guarantees exactly `ceil(insts / interval)` samples for a
//! run that retires `insts` instructions: one per crossed interval
//! boundary (coalesced if the engine's position jumps across several),
//! plus one trailing partial window flushed by
//! [`IntervalSampler::finish`].

use crate::{events_on, Value};
use std::sync::OnceLock;

/// Environment variable overriding the sampling interval (simulated
/// instructions per sample).
pub const INTERVAL_ENV_VAR: &str = "MLP_OBS_INTERVAL";

/// Sampling interval when `MLP_OBS_INTERVAL` is unset.
pub const DEFAULT_INTERVAL: u64 = 100_000;

/// The interval from the environment, parsed once per process.
fn env_interval() -> u64 {
    static INTERVAL: OnceLock<u64> = OnceLock::new();
    *INTERVAL.get_or_init(|| match std::env::var(INTERVAL_ENV_VAR) {
        Ok(spec) => match spec.trim().parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!(
                    "[mlp-obs] ignoring invalid {INTERVAL_ENV_VAR}='{spec}' \
                     (expected a positive integer); using {DEFAULT_INTERVAL}"
                );
                DEFAULT_INTERVAL
            }
        },
        Err(_) => DEFAULT_INTERVAL,
    })
}

/// Emits one event per `interval` simulated instructions, plus a
/// trailing partial window at [`finish`](IntervalSampler::finish).
#[derive(Debug)]
pub struct IntervalSampler {
    event: &'static str,
    interval: u64,
    /// Full windows covered by emitted samples (`pos / interval` at the
    /// last boundary sample).
    windows: u64,
    samples: u64,
}

impl IntervalSampler {
    /// A sampler for `event`, or `None` unless events are armed. The
    /// interval comes from `MLP_OBS_INTERVAL` (default
    /// [`DEFAULT_INTERVAL`]).
    pub fn armed(event: &'static str) -> Option<IntervalSampler> {
        events_on().then(|| IntervalSampler::with_interval(event, env_interval()))
    }

    /// A sampler with an explicit interval (tests; `interval > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn with_interval(event: &'static str, interval: u64) -> IntervalSampler {
        assert!(interval > 0, "sampling interval must be positive");
        IntervalSampler {
            event,
            interval,
            windows: 0,
            samples: 0,
        }
    }

    /// The sampling interval in simulated instructions.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Samples emitted so far (boundary + trailing).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Whether advancing to position `pos` crosses an unemitted interval
    /// boundary. Cheap; engines call this before gathering fields.
    #[inline]
    pub fn due(&self, pos: u64) -> bool {
        pos / self.interval > self.windows
    }

    /// Emits one boundary sample at position `pos` if one is due; a jump
    /// across several boundaries coalesces into a single sample. The
    /// sampler prepends `("insts", pos)` to `fields`.
    pub fn record(&mut self, pos: u64, fields: &[(&str, Value<'_>)]) {
        if !self.due(pos) {
            return;
        }
        self.windows = pos / self.interval;
        self.emit_sample(pos, fields);
    }

    /// Flushes the trailing partial window at final position `pos` (no-op
    /// when `pos` sits exactly on an already-emitted boundary). After
    /// `finish`, a run of `pos` instructions fed through `record` has
    /// produced exactly `ceil(pos / interval)` samples.
    pub fn finish(&mut self, pos: u64, fields: &[(&str, Value<'_>)]) {
        if pos > self.windows * self.interval {
            self.windows = pos.div_ceil(self.interval);
            self.emit_sample(pos, fields);
        }
    }

    fn emit_sample(&mut self, pos: u64, fields: &[(&str, Value<'_>)]) {
        self.samples += 1;
        let mut all: Vec<(&str, Value<'_>)> = Vec::with_capacity(fields.len() + 1);
        all.push(("insts", Value::U64(pos)));
        all.extend_from_slice(fields);
        crate::emit(self.event, &all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_and_trailing_samples_make_the_ceiling() {
        // No sink installed: emit drops the lines but the sampler still
        // counts, which is all this test needs.
        let mut s = IntervalSampler::with_interval("t.sample", 10);
        for pos in 1..=25u64 {
            if s.due(pos) {
                s.record(pos, &[]);
            }
        }
        assert_eq!(s.samples(), 2); // boundaries at 10 and 20
        s.finish(25, &[]);
        assert_eq!(s.samples(), 3); // trailing partial 21..=25
                                    // Re-finishing at the same position adds nothing.
        s.finish(25, &[]);
        assert_eq!(s.samples(), 3);
    }

    #[test]
    fn exact_multiple_has_no_trailing_sample() {
        let mut s = IntervalSampler::with_interval("t.sample", 10);
        for pos in 1..=30u64 {
            s.record(pos, &[]);
        }
        s.finish(30, &[]);
        assert_eq!(s.samples(), 3);
    }

    #[test]
    fn position_jumps_coalesce_into_one_sample() {
        let mut s = IntervalSampler::with_interval("t.sample", 10);
        s.record(35, &[]); // crosses boundaries 10, 20 and 30 at once
        assert_eq!(s.samples(), 1);
        s.finish(35, &[]);
        assert_eq!(s.samples(), 2);
    }

    #[test]
    fn empty_run_emits_nothing() {
        let mut s = IntervalSampler::with_interval("t.sample", 10);
        s.finish(0, &[]);
        assert_eq!(s.samples(), 0);
    }
}
