//! Event-sink hardening: a run that panics mid-stream must leave the
//! JSONL trace parseable line-by-line. `emit` builds each event as one
//! complete line and hands it to the buffered sink in a single
//! `write_all`, so the only remaining hazard is buffered-but-unflushed
//! data — which `flush_event_sink` (called from the CLI's panic hook)
//! resolves without tearing: every flushed prefix ends on a line
//! boundary.

use mlp_obs::{emit, flush_event_sink, set_event_sink, set_for_test, Mode, Value};
use std::sync::Mutex;

/// Mode and sink are process-global; serialize against other tests in
/// this binary (the unit tests live in a separate binary).
static LOCK: Mutex<()> = Mutex::new(());

/// Crude but sufficient structural check: each line is one complete
/// JSON object with balanced braces and quotes.
fn assert_parseable_line(line: &str) {
    assert!(line.starts_with('{'), "torn line start: {line:?}");
    assert!(line.ends_with('}'), "torn line end: {line:?}");
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    for c in line.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '{' if !in_str => depth += 1,
            '}' if !in_str => depth -= 1,
            _ => {}
        }
    }
    assert!(!in_str && depth == 0, "unbalanced line: {line:?}");
}

#[test]
fn midrun_panic_leaves_events_file_parseable() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_for_test(Some(Mode::Events));
    let path = std::env::temp_dir().join(format!("mlp-obs-torn-{}.jsonl", std::process::id()));
    set_event_sink(Some(&path)).expect("create sink");

    let panicked = std::panic::catch_unwind(|| {
        for i in 0..200u64 {
            emit(
                "torn.test",
                &[
                    ("i", Value::U64(i)),
                    ("payload", Value::Str("a \"quoted\" string\nwith a newline")),
                    ("frac", Value::F64(i as f64 / 7.0)),
                ],
            );
            if i == 137 {
                panic!("simulated mid-run failure");
            }
        }
    });
    assert!(panicked.is_err(), "the probe loop must have panicked");

    // What the CLI's panic hook does: flush, don't tear.
    flush_event_sink();

    let text = std::fs::read_to_string(&path).expect("read events");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 138, "every emitted event survives, whole");
    for line in &lines {
        assert_parseable_line(line);
    }
    assert!(
        text.ends_with('\n'),
        "flushed stream must end on a line boundary"
    );
    // seq numbers are contiguous from 0, proving no line was lost.
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\":{i},")),
            "unexpected seq on line {i}: {line:?}"
        );
    }

    set_event_sink(None).expect("drop sink");
    let _ = std::fs::remove_file(&path);
    set_for_test(None);
}

#[test]
fn flush_without_sink_is_a_no_op() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    flush_event_sink(); // must not panic or install anything
}
