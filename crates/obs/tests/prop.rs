//! Property tests of the distribution primitives: log2 bucket edges,
//! quantile bounds, merge conservation, and the interval sampler's
//! sample-count guarantee.
//!
//! All of these run on plain values ([`LocalHist`], [`HistogramValue`],
//! [`IntervalSampler`]) rather than the process-global statics, so they
//! need no mode override and no cross-test lock: bucket arithmetic and
//! window accounting are pure functions of their inputs.

use mlp_obs::{bucket_hi, bucket_lo, bucket_of, HistogramValue, IntervalSampler, LocalHist};
use proptest::prelude::*;

/// Builds a drained-value view from raw observations, the same shape
/// `snapshot_and_reset` would produce for a histogram fed these values.
fn value_of(name: &'static str, values: &[u64]) -> HistogramValue {
    let mut local = LocalHist::new();
    for &v in values {
        local.record(v);
    }
    let mut buckets: Vec<(u32, u64)> = Vec::new();
    for &v in values {
        let b = bucket_of(v) as u32;
        match buckets.binary_search_by_key(&b, |&(bb, _)| bb) {
            Ok(i) => buckets[i].1 += 1,
            Err(i) => buckets.insert(i, (b, 1)),
        }
    }
    HistogramValue {
        name,
        buckets,
        count: values.len() as u64,
        sum: values.iter().fold(0u64, |a, &v| a.wrapping_add(v)),
        max: values.iter().copied().max().unwrap_or(0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Bucketing is monotone: a larger value never lands in a smaller
    /// bucket (the ISSUE's `bucket(v) <= bucket(v+1)` literally).
    #[test]
    fn bucket_index_is_monotone(v in any::<u64>()) {
        let next = v.saturating_add(1);
        prop_assert!(bucket_of(v) <= bucket_of(next));
    }

    /// Every value lies within the edges of its own bucket, and the
    /// edges tile the u64 line without gaps.
    #[test]
    fn value_lies_within_its_bucket_edges(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(bucket_lo(b) <= v && v <= bucket_hi(b));
        if b > 0 {
            prop_assert_eq!(bucket_hi(b - 1).wrapping_add(1), bucket_lo(b));
        }
    }

    /// Merging two drained histograms conserves total count and sum and
    /// takes the larger max — merge must be indistinguishable from
    /// having recorded both runs into one histogram.
    #[test]
    fn merge_conserves_count_sum_and_max(
        a in proptest::collection::vec(0u64..1 << 48, 0..64),
        b in proptest::collection::vec(0u64..1 << 48, 0..64),
    ) {
        let mut merged = value_of("a", &a);
        let other = value_of("b", &b);
        merged.merge(&other);
        let mut both = a.clone();
        both.extend_from_slice(&b);
        let want = value_of("a", &both);
        prop_assert_eq!(merged.count, want.count);
        prop_assert_eq!(merged.sum, want.sum);
        prop_assert_eq!(merged.max, want.max);
        prop_assert_eq!(merged.buckets, want.buckets);
        let bucket_total: u64 = merged.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, merged.count);
    }

    /// A quantile estimate is bounded by the edges of the bucket holding
    /// the observation at that rank, and never exceeds the exact max.
    #[test]
    fn quantile_is_bounded_by_its_bucket_edges(
        values in proptest::collection::vec(0u64..1 << 32, 1..128),
        q in 0.0f64..=1.0,
    ) {
        let h = value_of("q", &values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let est = h.quantile(q);
        // The estimate sits in the same bucket as the exact order
        // statistic (upper edge, tightened by the max), so it is bounded
        // below by the exact value and above by that bucket's edge.
        prop_assert!(est >= exact);
        prop_assert!(est <= bucket_hi(bucket_of(exact)));
        prop_assert!(est <= h.max);
    }

    /// Feeding a run of `insts` positions one at a time and finishing
    /// yields exactly `ceil(insts / interval)` samples.
    #[test]
    fn sampler_emits_exactly_ceil_insts_over_interval(
        insts in 0u64..5_000,
        interval in 1u64..700,
    ) {
        let mut s = IntervalSampler::with_interval("prop.sample", interval);
        for pos in 1..=insts {
            if s.due(pos) {
                s.record(pos, &[]);
            }
        }
        s.finish(insts, &[]);
        prop_assert_eq!(s.samples(), insts.div_ceil(interval));
    }

    /// The guarantee survives position jumps: advancing in arbitrary
    /// strides coalesces crossed boundaries but the trailing finish
    /// still tops the count up to at least one sample per touched
    /// window, never more than `ceil(final / interval)`.
    #[test]
    fn sampler_with_jumps_never_overcounts(
        strides in proptest::collection::vec(1u64..400, 1..64),
        interval in 1u64..700,
    ) {
        let mut s = IntervalSampler::with_interval("prop.sample", interval);
        let mut pos = 0u64;
        for stride in strides {
            pos += stride;
            s.record(pos, &[]);
        }
        s.finish(pos, &[]);
        prop_assert!(s.samples() <= pos.div_ceil(interval));
        prop_assert!(s.samples() >= 1);
    }
}
