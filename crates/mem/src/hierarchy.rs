use crate::{Cache, CacheConfig, CacheStats, Tlb, TlbConfig};

/// Where an access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// Hit in the first-level cache.
    L1Hit,
    /// Missed L1 but hit the on-chip L2.
    L2Hit,
    /// Missed the on-chip caches but hit an *off-chip* L3 (the §2.1
    /// future configuration; absent under the paper's default hierarchy).
    L3Hit,
    /// Missed the furthest cache: a long-latency **off-chip access**, the
    /// event the MLP study counts.
    OffChip,
}

impl Access {
    /// Whether the access left the chip (an off-chip L3 hit does, at a
    /// lower latency than memory).
    #[inline]
    pub fn is_off_chip(self) -> bool {
        matches!(self, Access::L3Hit | Access::OffChip)
    }
}

/// Configuration of the full on-chip hierarchy.
///
/// The default matches the paper's default processor configuration
/// (§5.1): 32 KB 4-way L1I and L1D, 2 MB 4-way shared L2, 64-byte lines
/// everywhere, 2K-entry shared TLB, no L3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Shared L2 geometry (the furthest on-chip cache).
    pub l2: CacheConfig,
    /// Optional *off-chip* L3 (the paper's §2.1 future configuration;
    /// `None` matches the default "no L3 cache" processor).
    pub l3: Option<CacheConfig>,
    /// Shared TLB geometry.
    pub tlb: TlbConfig,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::new(32 * 1024, 4),
            l1d: CacheConfig::new(32 * 1024, 4),
            l2: CacheConfig::new(2 * 1024 * 1024, 4),
            l3: None,
            tlb: TlbConfig::default(),
        }
    }
}

impl HierarchyConfig {
    /// Returns the default hierarchy with a different L2 capacity (used by
    /// the Figure 7 cache-size sweep).
    #[must_use]
    pub fn with_l2_bytes(mut self, bytes: u64) -> HierarchyConfig {
        self.l2 = CacheConfig::new(bytes, self.l2.assoc);
        self
    }

    /// Returns the hierarchy with an off-chip L3 of the given capacity
    /// (8-way, like large commercial off-chip caches).
    #[must_use]
    pub fn with_l3_bytes(mut self, bytes: u64) -> HierarchyConfig {
        self.l3 = Some(CacheConfig::new(bytes, 8));
        self
    }
}

/// Aggregate statistics of a [`Hierarchy`].
#[derive(Clone, Copy, Debug, Default)]
pub struct HierarchyStats {
    /// L1I demand statistics.
    pub l1i: CacheStats,
    /// L1D demand statistics.
    pub l1d: CacheStats,
    /// L2 demand statistics (instruction + data + prefetch fills count as
    /// demand when they probe the L2).
    pub l2: CacheStats,
    /// Off-chip accesses triggered by instruction fetches.
    pub imisses: u64,
    /// Off-chip accesses triggered by data reads (loads/atomics).
    pub dmisses: u64,
    /// Off-chip accesses triggered by software prefetches.
    pub pmisses: u64,
    /// Off-chip accesses triggered by stores (write allocations).
    pub smisses: u64,
    /// Instructions whose classification has been requested (for MPKI).
    pub insts: u64,
}

impl HierarchyStats {
    /// Total off-chip accesses.
    pub fn off_chip_total(&self) -> u64 {
        self.imisses + self.dmisses + self.pmisses + self.smisses
    }

    /// Off-chip accesses per 100 instructions — the "L2 miss rate" unit of
    /// the paper's Table 1 (0.84 for the database workload, etc.).
    pub fn miss_rate_per_100(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            100.0 * self.off_chip_total() as f64 / self.insts as f64
        }
    }
}

/// The on-chip memory hierarchy: L1I + L1D over a shared L2 and TLB.
///
/// Access methods classify each reference and perform fills as a side
/// effect (allocate-on-miss at every level, write-allocate stores, and
/// prefetches that install into both L2 and L1D — the mechanism runahead
/// execution exploits).
///
/// # Examples
///
/// ```
/// use mlp_mem::{Access, Hierarchy, HierarchyConfig};
///
/// let mut mem = Hierarchy::new(HierarchyConfig::default());
/// assert_eq!(mem.ifetch(0x40_0000), Access::OffChip);
/// assert_eq!(mem.ifetch(0x40_0000), Access::L1Hit);
/// // a prefetch makes the later demand load hit on chip
/// mem.prefetch(0x9_0000);
/// assert_eq!(mem.load(0x9_0000), Access::L1Hit);
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Option<Cache>,
    tlb: Tlb,
    stats: HierarchyStats,
    count_insts: bool,
    /// Whether `mlp-obs` counters were armed when this hierarchy was
    /// built. The TLB influences nothing but the armed-only
    /// `mem.tlb.*` counters (its outcome is not part of [`Access`]
    /// classification), so unarmed runs skip it entirely.
    obs_armed: bool,
    /// Line of the most recent instruction fetch. L1I contents change
    /// only through [`Hierarchy::ifetch`], so a repeat fetch of this
    /// line is guaranteed resident and most-recently-used: it can be
    /// answered without the set lookup. Skipping the LRU restamp is
    /// behavior-preserving because the line is already the newest in
    /// its set — the relative stamp order, and therefore every future
    /// hit/victim/eviction decision, is unchanged.
    last_ifetch_line: u64,
}

impl Hierarchy {
    /// Creates an empty (cold) hierarchy.
    pub fn new(config: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: config.l3.map(Cache::new),
            tlb: Tlb::new(config.tlb),
            stats: HierarchyStats::default(),
            count_insts: true,
            obs_armed: mlp_obs::counters_on(),
            last_ifetch_line: u64::MAX,
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Resets statistics (cache contents are kept) — call at the end of
    /// the warm-up prefix.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }

    /// Notes that one instruction has been processed (for per-instruction
    /// miss rates). Simulators call this once per retired instruction.
    pub fn count_instruction(&mut self) {
        if self.count_insts {
            self.stats.insts += 1;
        }
    }

    fn classify(l1: &mut Cache, l2: &mut Cache, l3: Option<&mut Cache>, addr: u64) -> Access {
        if l1.access(addr) {
            return Access::L1Hit;
        }
        if l2.access(addr) {
            l1.touch(addr); // fill L1 from L2
            return Access::L2Hit;
        }
        // Off-chip: consult the L3 if present, then fill inward.
        let outcome = match l3 {
            Some(l3) => {
                if l3.access(addr) {
                    Access::L3Hit
                } else {
                    l3.touch(addr);
                    Access::OffChip
                }
            }
            None => Access::OffChip,
        };
        l2.touch(addr);
        l1.touch(addr);
        outcome
    }

    /// Classifies (and performs) the instruction fetch of the line
    /// containing `pc`.
    #[inline]
    pub fn ifetch(&mut self, pc: u64) -> Access {
        let line = mlp_isa::line_of(pc);
        if line == self.last_ifetch_line {
            // Sequential fetch within the line just fetched: resident and
            // MRU by construction (see the field invariant), so answer
            // without the set scan. The hit is still counted; armed runs
            // still walk the TLB so `mem.tlb.*` counters stay exact.
            if self.obs_armed {
                self.tlb.access(pc);
            }
            self.l1i.count_hit();
            return Access::L1Hit;
        }
        self.last_ifetch_line = line;
        if self.obs_armed {
            self.tlb.access(pc);
        }
        let a = Self::classify(&mut self.l1i, &mut self.l2, self.l3.as_mut(), pc);
        if a.is_off_chip() {
            self.stats.imisses += 1;
        }
        a
    }

    /// Classifies (and performs) a demand load of `addr`.
    #[inline]
    pub fn load(&mut self, addr: u64) -> Access {
        if self.obs_armed {
            self.tlb.access(addr);
        }
        let a = Self::classify(&mut self.l1d, &mut self.l2, self.l3.as_mut(), addr);
        if a.is_off_chip() {
            self.stats.dmisses += 1;
        }
        a
    }

    /// Classifies (and performs) a store to `addr` (write-allocate).
    #[inline]
    pub fn store(&mut self, addr: u64) -> Access {
        if self.obs_armed {
            self.tlb.access(addr);
        }
        let a = Self::classify(&mut self.l1d, &mut self.l2, self.l3.as_mut(), addr);
        if a.is_off_chip() {
            self.stats.smisses += 1;
        }
        a
    }

    /// Classifies (and performs) a software or runahead prefetch of
    /// `addr`. The line is installed so that later demand accesses hit.
    pub fn prefetch(&mut self, addr: u64) -> Access {
        if self.obs_armed {
            self.tlb.access(addr);
        }
        let a = if self.l1d.touch(addr) {
            Access::L1Hit
        } else if self.l2.touch(addr) {
            Access::L2Hit
        } else {
            let outcome = match self.l3.as_mut() {
                Some(l3) => {
                    if l3.touch(addr) {
                        Access::L3Hit
                    } else {
                        Access::OffChip
                    }
                }
                None => Access::OffChip,
            };
            self.l2.touch(addr);
            outcome
        };
        if a.is_off_chip() {
            self.stats.pmisses += 1;
        }
        a
    }

    /// Whether the line containing `addr` is resident in the L2 (i.e. a
    /// read of it would stay on chip), without disturbing any state.
    #[inline]
    pub fn probe_l2(&self, addr: u64) -> bool {
        self.l2.probe(addr)
    }

    /// Flushes per-level hit/miss/eviction and TLB statistics into the
    /// global `mlp-obs` counters (`mem.<level>.*`). A no-op unless
    /// counters are armed; simulators call this once at end of run so
    /// the per-access hot paths carry no probes at all.
    pub fn flush_obs(&self) {
        if !mlp_obs::counters_on() {
            return;
        }
        static LEVELS: [[mlp_obs::Counter; 3]; 4] = [
            [
                mlp_obs::Counter::new("mem.l1i.hits"),
                mlp_obs::Counter::new("mem.l1i.misses"),
                mlp_obs::Counter::new("mem.l1i.evictions"),
            ],
            [
                mlp_obs::Counter::new("mem.l1d.hits"),
                mlp_obs::Counter::new("mem.l1d.misses"),
                mlp_obs::Counter::new("mem.l1d.evictions"),
            ],
            [
                mlp_obs::Counter::new("mem.l2.hits"),
                mlp_obs::Counter::new("mem.l2.misses"),
                mlp_obs::Counter::new("mem.l2.evictions"),
            ],
            [
                mlp_obs::Counter::new("mem.l3.hits"),
                mlp_obs::Counter::new("mem.l3.misses"),
                mlp_obs::Counter::new("mem.l3.evictions"),
            ],
        ];
        static TLB_HITS: mlp_obs::Counter = mlp_obs::Counter::new("mem.tlb.hits");
        static TLB_MISSES: mlp_obs::Counter = mlp_obs::Counter::new("mem.tlb.misses");
        let levels = [
            Some(self.l1i.stats()),
            Some(self.l1d.stats()),
            Some(self.l2.stats()),
            self.l3.as_ref().map(Cache::stats),
        ];
        for (counters, stats) in LEVELS.iter().zip(levels) {
            let Some(stats) = stats else { continue };
            counters[0].add(stats.hits);
            counters[1].add(stats.misses);
            counters[2].add(stats.evictions);
        }
        TLB_HITS.add(self.tlb.hits());
        TLB_MISSES.add(self.tlb.misses());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l1i: CacheConfig::new(1024, 2),
            l1d: CacheConfig::new(1024, 2),
            l2: CacheConfig::new(8192, 4),
            l3: None,
            tlb: TlbConfig::default(),
        })
    }

    #[test]
    fn inclusion_on_fill_path() {
        let mut m = small();
        assert_eq!(m.load(0x4000), Access::OffChip);
        assert_eq!(m.load(0x4000), Access::L1Hit);
        assert!(m.probe_l2(0x4000));
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = small();
        m.load(0x0);
        // Evict 0x0 from tiny L1D by loading conflicting lines, while the
        // larger L2 keeps it.
        let l1_sets = 1024 / 64 / 2;
        let stride = l1_sets as u64 * 64;
        m.load(stride);
        m.load(2 * stride);
        let a = m.load(0x0);
        assert!(a == Access::L2Hit || a == Access::L1Hit);
        assert_ne!(a, Access::OffChip);
    }

    #[test]
    fn prefetch_hides_demand_miss() {
        let mut m = small();
        assert_eq!(m.prefetch(0x7000), Access::OffChip);
        assert_eq!(m.load(0x7000), Access::L1Hit);
        let s = m.stats();
        assert_eq!(s.pmisses, 1);
        assert_eq!(s.dmisses, 0);
    }

    #[test]
    fn i_and_d_streams_are_separate_l1s() {
        let mut m = small();
        m.ifetch(0x100);
        // Data load of the same line misses L1D but hits the shared L2.
        assert_eq!(m.load(0x100), Access::L2Hit);
    }

    #[test]
    fn miss_kinds_attributed() {
        let mut m = small();
        m.ifetch(0x10_0000);
        m.load(0x20_0000);
        m.store(0x30_0000);
        m.prefetch(0x40_0000);
        let s = m.stats();
        assert_eq!(s.imisses, 1);
        assert_eq!(s.dmisses, 1);
        assert_eq!(s.smisses, 1);
        assert_eq!(s.pmisses, 1);
        assert_eq!(s.off_chip_total(), 4);
    }

    #[test]
    fn miss_rate_per_100() {
        let mut m = small();
        m.load(0x20_0000);
        for _ in 0..100 {
            m.count_instruction();
        }
        assert!((m.stats().miss_rate_per_100() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut m = small();
        m.load(0x5000);
        m.reset_stats();
        assert_eq!(m.stats().off_chip_total(), 0);
        assert_eq!(m.load(0x5000), Access::L1Hit);
    }

    #[test]
    fn default_config_matches_paper() {
        let c = HierarchyConfig::default();
        assert_eq!(c.l1i.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l2.assoc, 4);
        assert_eq!(c.tlb.entries, 2048);
    }

    #[test]
    fn with_l2_bytes_scales() {
        let c = HierarchyConfig::default().with_l2_bytes(8 * 1024 * 1024);
        assert_eq!(c.l2.size_bytes, 8 * 1024 * 1024);
        assert_eq!(c.l2.assoc, 4);
    }

    #[test]
    fn default_has_no_l3() {
        assert!(HierarchyConfig::default().l3.is_none());
    }

    #[test]
    fn l3_catches_l2_capacity_misses() {
        let mut m = Hierarchy::new(
            HierarchyConfig {
                l1i: CacheConfig::new(1024, 2),
                l1d: CacheConfig::new(1024, 2),
                l2: CacheConfig::new(8192, 4),
                l3: None,
                tlb: TlbConfig::default(),
            }
            .with_l3_bytes(1024 * 1024),
        );
        assert_eq!(m.load(0x4000), Access::OffChip); // cold everywhere
                                                     // Evict from the tiny L2 with conflicting lines; the L3 keeps it.
        let l2_sets = 8192 / 64 / 4;
        let stride = l2_sets as u64 * 64;
        for k in 1..=8u64 {
            m.load(0x4000 + k * stride);
        }
        assert_eq!(m.load(0x4000), Access::L3Hit);
    }

    #[test]
    fn l3_hits_still_count_as_off_chip() {
        assert!(Access::L3Hit.is_off_chip());
        assert!(Access::OffChip.is_off_chip());
        assert!(!Access::L2Hit.is_off_chip());
    }

    #[test]
    fn prefetch_classifies_l3() {
        let mut m = Hierarchy::new(HierarchyConfig::default().with_l3_bytes(4 * 1024 * 1024));
        assert_eq!(m.prefetch(0x9_0000), Access::OffChip);
        assert_eq!(m.load(0x9_0000), Access::L1Hit);
    }
}
