use mlp_hash::FxHashMap;

/// Outcome of registering a miss with the [`Mshr`] file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new MSHR was allocated; the line transfer starts now.
    Primary {
        /// Cycle at which the line will be available.
        ready_at: u64,
    },
    /// The line is already in flight; the access merges into the existing
    /// entry (a *secondary* miss) and completes when the primary does.
    Merged {
        /// Cycle at which the line will be available.
        ready_at: u64,
    },
    /// All MSHRs are busy; the access must retry later.
    Full,
}

/// A miss-status holding register file: tracks outstanding off-chip line
/// transfers for the cycle-accurate simulator and merges secondary misses.
///
/// The number of MSHRs bounds how many off-chip accesses can be in flight
/// at once — a hard upper bound on achievable MLP in the timing model.
///
/// # Examples
///
/// ```
/// use mlp_mem::{Mshr, MshrOutcome};
///
/// let mut mshr = Mshr::new(2, 100); // 2 entries, 100-cycle latency
/// assert_eq!(mshr.request(0x40, 10), MshrOutcome::Primary { ready_at: 110 });
/// assert_eq!(mshr.request(0x40, 15), MshrOutcome::Merged { ready_at: 110 });
/// mshr.expire(110);
/// assert_eq!(mshr.outstanding(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct Mshr {
    capacity: usize,
    latency: u64,
    in_flight: FxHashMap<u64, u64>, // line -> ready cycle
    /// Earliest ready cycle of any in-flight transfer (`u64::MAX` when
    /// none): lets the per-cycle [`Mshr::expire`] call return without
    /// walking the map when nothing can have completed yet.
    min_ready: u64,
    high_water: usize,
    /// Whether distribution tallies accumulate, latched at construction
    /// so the per-request path pays nothing when `MLP_OBS` is off.
    obs: bool,
    /// Entries in flight after each accepted request — the paper's MSHR
    /// occupancy distribution.
    occupancy: mlp_obs::LocalHist,
    /// Cycles from request to line availability (primaries pay the full
    /// latency; secondaries only the remainder of the in-flight fetch).
    miss_latency: mlp_obs::LocalHist,
}

impl Mshr {
    /// Creates an MSHR file with `capacity` entries and a fixed off-chip
    /// `latency` in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, latency: u64) -> Mshr {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        Mshr {
            capacity,
            latency,
            in_flight: mlp_hash::map_with_capacity(capacity),
            min_ready: u64::MAX,
            high_water: 0,
            obs: mlp_obs::counters_on(),
            occupancy: mlp_obs::LocalHist::new(),
            miss_latency: mlp_obs::LocalHist::new(),
        }
    }

    /// The configured off-chip latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Registers a miss on `line` at cycle `now`.
    pub fn request(&mut self, line: u64, now: u64) -> MshrOutcome {
        if let Some(&ready) = self.in_flight.get(&line) {
            if self.obs {
                self.miss_latency.record(ready.saturating_sub(now));
            }
            return MshrOutcome::Merged { ready_at: ready };
        }
        if self.in_flight.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        let ready = now + self.latency;
        self.in_flight.insert(line, ready);
        self.min_ready = self.min_ready.min(ready);
        self.high_water = self.high_water.max(self.in_flight.len());
        if self.obs {
            self.occupancy.record(self.in_flight.len() as u64);
            self.miss_latency.record(self.latency);
        }
        MshrOutcome::Primary { ready_at: ready }
    }

    /// Releases every entry whose transfer has completed by cycle `now`,
    /// returning the completed lines.
    pub fn expire(&mut self, now: u64) -> Vec<u64> {
        if now < self.min_ready {
            return Vec::new(); // nothing can have completed; no walk
        }
        let done: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, &ready)| ready <= now)
            .map(|(&line, _)| line)
            .collect();
        for l in &done {
            self.in_flight.remove(l);
        }
        self.min_ready = self.in_flight.values().copied().min().unwrap_or(u64::MAX);
        done
    }

    /// Whether `line` currently has an in-flight transfer.
    pub fn is_pending(&self, line: u64) -> bool {
        self.in_flight.contains_key(&line)
    }

    /// Cycle at which `line`'s transfer completes, if in flight.
    pub fn ready_at(&self, line: u64) -> Option<u64> {
        self.in_flight.get(&line).copied()
    }

    /// Number of transfers currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    /// The most transfers ever outstanding at once — how much of the MLP
    /// headroom the run actually used.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Flushes the per-run occupancy and latency distributions into the
    /// global `mem.mshr.*` histograms. Engines call this once at end of
    /// run, next to `Hierarchy::flush_obs`; it is a no-op when `MLP_OBS`
    /// is off or nothing was recorded.
    pub fn flush_obs(&self) {
        static OCCUPANCY: mlp_obs::Histogram = mlp_obs::Histogram::new("mem.mshr.occupancy");
        static MISS_LATENCY: mlp_obs::Histogram = mlp_obs::Histogram::new("mem.mshr.latency");
        self.occupancy.flush_to(&OCCUPANCY);
        self.miss_latency.flush_to(&MISS_LATENCY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `mlp_obs::set_for_test` is process-global; the two tests that
    /// depend on the mode serialize here.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn full_file_rejects() {
        let mut m = Mshr::new(1, 10);
        assert!(matches!(m.request(0x40, 0), MshrOutcome::Primary { .. }));
        assert_eq!(m.request(0x80, 0), MshrOutcome::Full);
        // merging into the pending line still works when full
        assert!(matches!(m.request(0x40, 5), MshrOutcome::Merged { .. }));
    }

    #[test]
    fn expire_releases_only_completed() {
        let mut m = Mshr::new(4, 10);
        m.request(0x40, 0); // ready 10
        m.request(0x80, 5); // ready 15
        let done = m.expire(12);
        assert_eq!(done, vec![0x40]);
        assert!(m.is_pending(0x80));
        assert_eq!(m.ready_at(0x80), Some(15));
    }

    #[test]
    fn merged_keeps_original_ready_time() {
        let mut m = Mshr::new(4, 100);
        assert_eq!(m.request(0x40, 0), MshrOutcome::Primary { ready_at: 100 });
        assert_eq!(m.request(0x40, 90), MshrOutcome::Merged { ready_at: 100 });
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        let _ = Mshr::new(0, 10);
    }

    #[test]
    fn armed_requests_tally_occupancy_and_latency() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        mlp_obs::set_for_test(Some(mlp_obs::Mode::Counters));
        let _ = mlp_obs::snapshot_and_reset();
        let mut m = Mshr::new(4, 100);
        m.request(0x40, 0); // primary: occupancy 1, latency 100
        m.request(0x80, 0); // primary: occupancy 2, latency 100
        m.request(0x40, 60); // secondary: latency 40 (remainder)
        m.flush_obs();
        let snap = mlp_obs::snapshot_and_reset();
        let occ = snap.histogram("mem.mshr.occupancy").expect("occupancy");
        assert_eq!(occ.count, 2);
        assert_eq!(occ.max, 2);
        let lat = snap.histogram("mem.mshr.latency").expect("latency");
        assert_eq!(lat.count, 3);
        assert_eq!(lat.sum, 240);
        assert_eq!(lat.max, 100);
        mlp_obs::set_for_test(None);
    }

    #[test]
    fn disarmed_mshr_records_no_distributions() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        mlp_obs::set_for_test(Some(mlp_obs::Mode::Off));
        let mut m = Mshr::new(2, 10);
        m.request(0x40, 0);
        m.flush_obs(); // must not register or accumulate anything
        assert_eq!(m.occupancy.count(), 0);
        assert_eq!(m.miss_latency.count(), 0);
        mlp_obs::set_for_test(None);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut m = Mshr::new(4, 10);
        assert_eq!(m.high_water(), 0);
        m.request(0x40, 0);
        m.request(0x80, 0);
        assert_eq!(m.high_water(), 2);
        m.expire(20); // draining does not lower the mark
        assert_eq!(m.outstanding(), 0);
        assert_eq!(m.high_water(), 2);
        m.request(0xc0, 30); // nor does refilling below the peak
        assert_eq!(m.high_water(), 2);
    }
}
