use mlp_isa::LINE_BYTES;
use std::fmt;

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use mlp_mem::CacheConfig;
///
/// let l2 = CacheConfig::new(2 * 1024 * 1024, 4); // the paper's 2MB 4-way L2
/// assert_eq!(l2.sets(), 8192);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
}

impl CacheConfig {
    /// Creates a configuration of `size_bytes` capacity and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate: zero size or associativity, a
    /// capacity not a multiple of `assoc * 64` bytes, or a non-power-of-two
    /// set count (required for masked indexing).
    pub fn new(size_bytes: u64, assoc: u32) -> CacheConfig {
        assert!(size_bytes > 0, "cache size must be non-zero");
        assert!(assoc > 0, "associativity must be non-zero");
        let lines = size_bytes / LINE_BYTES;
        assert!(
            lines.is_multiple_of(assoc as u64),
            "capacity must be a whole number of sets"
        );
        let sets = lines / assoc as u64;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig { size_bytes, assoc }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / LINE_BYTES / self.assoc as u64
    }

    /// Number of cache lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / LINE_BYTES
    }
}

/// Hit/miss counters for a cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed (and filled).
    pub misses: u64,
    /// Valid lines displaced by fills (demand or touch-driven); cold
    /// fills into never-used ways do not count.
    pub evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; `0` when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.3}%)",
            self.accesses(),
            self.misses,
            100.0 * self.miss_ratio()
        )
    }
}

/// A set-associative cache with true-LRU replacement over 64-byte lines.
///
/// The cache tracks line residency only (no data), which is all both
/// simulators need: they ask "would this access leave the chip?".
///
/// Tags and last-use stamps live in separate set-major arrays: the hit
/// path (the overwhelmingly common case) scans only the tag column and
/// restamps one slot, so it moves half the bytes the old
/// array-of-`(tag, lru)` layout did; the stamp column is scanned only
/// when a miss needs a victim.
///
/// # Examples
///
/// ```
/// use mlp_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(4096, 2));
/// assert!(!c.access(0x1000)); // cold miss, fills
/// assert!(c.access(0x1000)); // hit
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    tags: Vec<u64>, // sets * assoc, set-major; 0 = invalid
    lrus: Vec<u64>, // last-use stamps; 0 = invalid/never used
    set_mask: u64,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        let lines = (sets * config.assoc as u64) as usize;
        Cache {
            config,
            tags: vec![0; lines],
            lrus: vec![0; lines],
            set_mask: sets - 1,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated demand-access statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics counters (contents are kept — used at the end
    /// of cache warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_range(&self, addr: u64) -> (usize, usize) {
        let line = addr / LINE_BYTES;
        let set = (line & self.set_mask) as usize;
        let a = self.config.assoc as usize;
        (set * a, set * a + a)
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        // Tag includes the set bits; simpler and unambiguous.
        (addr / LINE_BYTES) | (1 << 63) // bit 63 marks a valid tag
    }

    /// Demand access to the line containing `addr`: returns `true` on hit.
    /// On a miss the line is filled (allocate-on-miss), evicting the LRU
    /// way of its set.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let hit = self.touch(addr);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Counts a demand hit without performing the lookup. For callers
    /// that have proven residency out-of-band (the hierarchy's
    /// sequential-ifetch memo): the line is known resident *and*
    /// most-recently-used, so neither the scan nor the LRU restamp can
    /// change any future replacement decision — only the hit counter
    /// needs to move.
    #[inline]
    pub fn count_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Like [`Cache::access`] but does not count towards statistics —
    /// used for fills driven by an outer level or by prefetches.
    ///
    /// One pass over the set tracks the hit way and the LRU victim
    /// together (first-minimum ties, matching `min_by_key`), so a miss
    /// costs no second scan.
    #[inline]
    pub fn touch(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let tag = self.tag_of(addr);
        let (lo, hi) = self.set_range(addr);
        for i in lo..hi {
            if self.tags[i] == tag {
                self.lrus[i] = clock;
                return true;
            }
        }
        // Miss: scan the stamps for the LRU victim (first-minimum ties,
        // matching the old single-pass `min_by_key` behaviour).
        let mut victim = lo;
        let mut min_lru = u64::MAX;
        for i in lo..hi {
            if self.lrus[i] < min_lru {
                min_lru = self.lrus[i];
                victim = i;
            }
        }
        if min_lru != 0 {
            self.stats.evictions += 1;
        }
        self.tags[victim] = tag;
        self.lrus[victim] = clock;
        false
    }

    /// Whether the line containing `addr` is resident, without touching
    /// LRU state or statistics.
    #[inline]
    pub fn probe(&self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        let (lo, hi) = self.set_range(addr);
        self.tags[lo..hi].contains(&tag)
    }

    /// Removes the line containing `addr` if resident; returns whether it
    /// was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        let (lo, hi) = self.set_range(addr);
        for i in lo..hi {
            if self.tags[i] == tag {
                self.tags[i] = 0;
                self.lrus[i] = 0;
                return true;
            }
        }
        false
    }

    /// Number of currently valid lines.
    pub fn resident_lines(&self) -> u64 {
        self.tags.iter().filter(|&&t| t != 0).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::new(4096, 2));
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x44)); // same line
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 ways, map three lines to the same set.
        let cfg = CacheConfig::new(2 * LINE_BYTES * 4, 2); // 4 sets of 2 ways
        let mut c = Cache::new(cfg);
        let sets = cfg.sets();
        let stride = sets * LINE_BYTES; // same set, different tag
        let (a, b, d) = (0x0, stride, 2 * stride);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let cfg = CacheConfig::new(LINE_BYTES * 4, 1);
        let mut c = Cache::new(cfg);
        let stride = cfg.sets() * LINE_BYTES;
        assert!(!c.access(0));
        assert!(!c.access(stride)); // conflict evicts
        assert!(!c.access(0));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let cfg = CacheConfig::new(2 * LINE_BYTES, 2); // 1 set, 2 ways
        let mut c = Cache::new(cfg);
        c.access(0);
        c.access(64);
        // probing 0 must not refresh it
        assert!(c.probe(0));
        c.access(128); // evicts 0 (LRU), not 64
        assert!(!c.probe(0));
        assert!(c.probe(64));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(CacheConfig::new(4096, 4));
        c.access(0x1000);
        assert!(c.invalidate(0x1000));
        assert!(!c.probe(0x1000));
        assert!(!c.invalidate(0x1000));
    }

    #[test]
    fn touch_does_not_count_stats() {
        let mut c = Cache::new(CacheConfig::new(4096, 4));
        c.touch(0x40);
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = Cache::new(CacheConfig::new(4096, 4));
        c.access(0x40);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.probe(0x40));
    }

    #[test]
    fn evictions_count_only_displaced_lines() {
        let cfg = CacheConfig::new(2 * LINE_BYTES, 2); // 1 set, 2 ways
        let mut c = Cache::new(cfg);
        c.access(0); // cold fill, no eviction
        c.access(64); // cold fill, no eviction
        assert_eq!(c.stats().evictions, 0);
        c.access(128); // displaces LRU line 0
        assert_eq!(c.stats().evictions, 1);
        c.touch(192); // touch-driven fills evict too
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn capacity_is_respected() {
        let cfg = CacheConfig::new(64 * LINE_BYTES, 4);
        let mut c = Cache::new(cfg);
        for i in 0..1000u64 {
            c.access(i * LINE_BYTES);
        }
        assert!(c.resident_lines() <= cfg.lines());
    }

    #[test]
    fn address_zero_is_cacheable() {
        let mut c = Cache::new(CacheConfig::new(4096, 2));
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.probe(0));
        assert!(c.invalidate(0));
        assert!(!c.probe(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = CacheConfig::new(3 * LINE_BYTES, 1);
    }

    #[test]
    fn miss_ratio_sane() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
