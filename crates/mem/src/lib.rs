//! Set-associative caches, TLB and the on-chip memory hierarchy used by the
//! MLP simulators.
//!
//! The paper's default hierarchy is modelled exactly: 32 KB 4-way L1
//! instruction and data caches, a shared 2 MB 4-way L2, all with 64-byte
//! lines, and a 2K-entry shared TLB. A miss in the *furthest on-chip cache*
//! (the L2 here — the paper assumes no L3) is an **off-chip access**, the
//! unit the whole MLP study is built around.
//!
//! The central type is [`Hierarchy`]; simulators ask it to classify each
//! instruction fetch, load, store or prefetch as an [`Access`] outcome and
//! it performs the fills as a side effect.
//!
//! # Examples
//!
//! ```
//! use mlp_mem::{Access, Hierarchy, HierarchyConfig};
//!
//! let mut mem = Hierarchy::new(HierarchyConfig::default());
//! assert_eq!(mem.load(0x1_0000), Access::OffChip); // cold miss
//! assert_eq!(mem.load(0x1_0000), Access::L1Hit);   // now resident
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod mshr;
mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{Access, Hierarchy, HierarchyConfig, HierarchyStats};
pub use mshr::{Mshr, MshrOutcome};
pub use tlb::{Tlb, TlbConfig};
