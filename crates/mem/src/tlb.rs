use mlp_hash::FxHashMap;

/// Geometry of the translation lookaside buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (the paper's default: 2048, shared I/D).
    pub entries: usize,
    /// Page size in bytes (SPARC's base page: 8 KB).
    pub page_bytes: u64,
}

impl Default for TlbConfig {
    fn default() -> TlbConfig {
        TlbConfig {
            entries: 2048,
            page_bytes: 8192,
        }
    }
}

/// A fully-associative, true-LRU TLB.
///
/// The paper's 2K-entry shared TLB is large enough that its misses are
/// negligible for the studied workloads; it is modelled for completeness
/// and to let workload generators check their page footprints.
///
/// # Examples
///
/// ```
/// use mlp_mem::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert!(!tlb.access(0x10_0000)); // cold
/// assert!(tlb.access(0x10_1fff)); // same 8KB page
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    entries: FxHashMap<u64, u64>, // page -> last-use stamp
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(config.entries > 0, "TLB must have at least one entry");
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            config,
            entries: mlp_hash::map_with_capacity(config.entries),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The TLB geometry.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Translates `addr`: returns `true` on a TLB hit. On a miss the page
    /// is installed, evicting the LRU entry if full.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let page = addr / self.config.page_bytes;
        if let Some(stamp) = self.entries.get_mut(&page) {
            *stamp = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() >= self.config.entries {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(&p, _)| p)
                .expect("TLB is non-empty when full");
            self.entries.remove(&lru);
        }
        self.entries.insert(page, self.clock);
        false
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of resident translations.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
        })
    }

    #[test]
    fn same_page_hits() {
        let mut t = tiny();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.access(0x1000); // page 1
        t.access(0x2000); // page 2
        t.access(0x1000); // page 1 MRU
        t.access(0x3000); // evicts page 2
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn capacity_bounded() {
        let mut t = tiny();
        for p in 0..100u64 {
            t.access(p * 4096);
        }
        assert_eq!(t.resident(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_rejected() {
        let _ = Tlb::new(TlbConfig {
            entries: 4,
            page_bytes: 3000,
        });
    }
}
