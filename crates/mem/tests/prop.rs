//! Property-based tests of cache, TLB and MSHR invariants.

use mlp_mem::{Cache, CacheConfig, Hierarchy, HierarchyConfig, Mshr, MshrOutcome, Tlb, TlbConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn accessed_line_is_resident(addrs in proptest::collection::vec(any::<u64>(), 1..500)) {
        let mut c = Cache::new(CacheConfig::new(16 * 1024, 4));
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.probe(a), "line just accessed must be resident");
        }
    }

    #[test]
    fn residency_never_exceeds_capacity(addrs in proptest::collection::vec(any::<u64>(), 0..2000)) {
        let cfg = CacheConfig::new(4 * 1024, 2);
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
        }
        prop_assert!(c.resident_lines() <= cfg.lines());
    }

    #[test]
    fn working_set_within_associativity_always_hits(
        base in any::<u64>(),
        rounds in 1usize..20,
    ) {
        // N lines mapping to the same set, N <= assoc: after the first
        // round every access hits (true LRU guarantees this).
        let cfg = CacheConfig::new(8 * 1024, 4);
        let mut c = Cache::new(cfg);
        let stride = cfg.sets() * mlp_isa::LINE_BYTES;
        let lines: Vec<u64> = (0..4).map(|k| base.wrapping_add(k * stride)).collect();
        for &l in &lines {
            c.access(l);
        }
        for _ in 0..rounds {
            for &l in &lines {
                prop_assert!(c.access(l), "resident working set must hit");
            }
        }
    }

    #[test]
    fn invalidate_then_probe_false(addr in any::<u64>()) {
        let mut c = Cache::new(CacheConfig::new(4096, 4));
        c.access(addr);
        prop_assert!(c.invalidate(addr));
        prop_assert!(!c.probe(addr));
    }

    #[test]
    fn tlb_capacity_respected(pages in proptest::collection::vec(any::<u32>(), 0..500)) {
        let mut t = Tlb::new(TlbConfig { entries: 16, page_bytes: 8192 });
        for &p in &pages {
            t.access(p as u64 * 8192);
        }
        prop_assert!(t.resident() <= 16);
        prop_assert_eq!(t.hits() + t.misses(), pages.len() as u64);
    }

    #[test]
    fn mshr_outstanding_bounded(lines in proptest::collection::vec(0u64..64, 0..200)) {
        let mut m = Mshr::new(4, 100);
        let mut now = 0;
        for &l in &lines {
            now += 1;
            let _ = m.request(l * 64, now);
            prop_assert!(m.outstanding() <= 4);
            if now % 7 == 0 {
                m.expire(now + 100);
            }
        }
    }

    #[test]
    fn mshr_merge_preserves_ready_time(line in any::<u64>(), gap in 1u64..99) {
        let mut m = Mshr::new(2, 100);
        let MshrOutcome::Primary { ready_at } = m.request(line, 0) else {
            return Err(TestCaseError::fail("first request must be primary"));
        };
        let MshrOutcome::Merged { ready_at: merged } = m.request(line, gap) else {
            return Err(TestCaseError::fail("second request must merge"));
        };
        prop_assert_eq!(ready_at, merged);
    }

    #[test]
    fn hierarchy_repeat_access_stays_on_chip(addrs in proptest::collection::vec(any::<u64>(), 1..200)) {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        for &a in &addrs {
            h.load(a);
        }
        // The most recent line is certainly still resident.
        let last = *addrs.last().unwrap();
        prop_assert!(!h.load(last).is_off_chip());
    }

    #[test]
    fn hierarchy_miss_attribution_sums(ops in proptest::collection::vec((0u8..4, any::<u64>()), 0..300)) {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        for &(op, addr) in &ops {
            match op {
                0 => { h.ifetch(addr); }
                1 => { h.load(addr); }
                2 => { h.store(addr); }
                _ => { h.prefetch(addr); }
            }
        }
        let s = h.stats();
        prop_assert_eq!(s.off_chip_total(), s.imisses + s.dmisses + s.smisses + s.pmisses);
    }
}
