//! End-of-run flush of MLPsim statistics into the global `mlp-obs`
//! layer: run/instruction/epoch totals, useful off-chip accesses by
//! miss kind, and epoch terminations by termination condition.
//!
//! Both engines accumulate in their own plain fields and call
//! [`flush_run`] exactly once per simulated run, so the per-instruction
//! hot paths carry no probes; the whole module is one relaxed atomic
//! load when `MLP_OBS` is off.

use crate::report::Report;
use mlp_obs::{Counter, Histogram, Value};

static RUNS: Counter = Counter::new("mlpsim.runs");
static INSTS: Counter = Counter::new("mlpsim.insts");
static EPOCHS: Counter = Counter::new("mlpsim.epochs");
static OFFCHIP_DMISS: Counter = Counter::new("mlpsim.offchip.dmiss");
static OFFCHIP_IMISS: Counter = Counter::new("mlpsim.offchip.imiss");
static OFFCHIP_PMISS: Counter = Counter::new("mlpsim.offchip.pmiss");
static OFFCHIP_USEFUL: Counter = Counter::new("mlpsim.offchip.useful");

/// Measured instructions per counted epoch, flushed by
/// `EpochTracker::into_report` — the paper's epoch-length distribution.
pub(crate) static EPOCH_LEN: Histogram = Histogram::new("mlpsim.epoch.len_insts");

/// Useful off-chip accesses per counted epoch, refolded from the
/// report's linear misses-per-epoch histogram (index 64 saturates).
static EPOCH_USEFUL: Histogram = Histogram::new("mlpsim.epoch.useful_offchip");

/// One counter per epoch termination condition, in
/// [`crate::report::InhibitorCounts::as_rows`] order.
static TERMINATIONS: [Counter; 9] = [
    Counter::new("mlpsim.term.imiss_start"),
    Counter::new("mlpsim.term.maxwin"),
    Counter::new("mlpsim.term.mispred_br"),
    Counter::new("mlpsim.term.imiss_end"),
    Counter::new("mlpsim.term.missing_load"),
    Counter::new("mlpsim.term.dep_store"),
    Counter::new("mlpsim.term.serialize"),
    Counter::new("mlpsim.term.store_buffer"),
    Counter::new("mlpsim.term.none"),
];

/// Flushes one finished run's [`Report`] into the global counters and,
/// when events are armed, emits one `mlpsim.run` event line.
pub(crate) fn flush_run(report: &Report) {
    if mlp_obs::counters_on() {
        RUNS.inc();
        INSTS.add(report.insts);
        EPOCHS.add(report.epochs);
        OFFCHIP_DMISS.add(report.offchip.dmiss);
        OFFCHIP_IMISS.add(report.offchip.imiss);
        OFFCHIP_PMISS.add(report.offchip.pmiss);
        OFFCHIP_USEFUL.add(report.offchip.total());
        for (counter, (_, n)) in TERMINATIONS.iter().zip(report.inhibitors.as_rows()) {
            counter.add(n);
        }
        for (misses, &n) in report.epoch_size_histogram.iter().enumerate() {
            EPOCH_USEFUL.record_n(misses as u64, n);
        }
    }
    if mlp_obs::events_on() {
        mlp_obs::emit(
            "mlpsim.run",
            &[
                ("insts", Value::U64(report.insts)),
                ("epochs", Value::U64(report.epochs)),
                ("offchip", Value::U64(report.offchip.total())),
                ("mlp", Value::F64(report.mlp())),
            ],
        );
    }
}
