use mlp_predict::{BranchStats, ValueStats};
use std::fmt;

/// Useful off-chip access counts by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OffchipCounts {
    /// Missing loads (*Dmiss* in the paper).
    pub dmiss: u64,
    /// Missing instruction fetches (*Imiss*).
    pub imiss: u64,
    /// Missing useful prefetches (*Pmiss*), including software prefetches
    /// and runahead prefetches.
    pub pmiss: u64,
}

impl OffchipCounts {
    /// Total useful off-chip accesses.
    pub fn total(&self) -> u64 {
        self.dmiss + self.imiss + self.pmiss
    }
}

/// The condition that prevented more MLP from being uncovered in an epoch
/// — the segments of the paper's Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inhibitor {
    /// The epoch trigger was a missing instruction fetch; fetch is
    /// blocking, so nothing else could overlap.
    ImissStart,
    /// The issue window or reorder buffer filled.
    Maxwin,
    /// A mispredicted branch dependent on a missing load (unresolvable)
    /// ended the window.
    MispredBr,
    /// A missing instruction fetch ended a window that a data miss began.
    ImissEnd,
    /// A missing load blocked later loads (only under in-order load issue,
    /// configuration A).
    MissingLoad,
    /// A store with an unresolved address blocked later loads
    /// (configurations A and B).
    DepStore,
    /// A serializing instruction ended the window.
    Serialize,
    /// The store buffer filled with outstanding store fills (extension:
    /// the paper's future-work "store MLP" study; never occurs with the
    /// paper's infinite-store-buffer assumption).
    StoreBuffer,
    /// The trace ended or the epoch closed without hitting any limit.
    None,
}

impl Inhibitor {
    /// Display label matching the paper's Figure 5 legend.
    pub fn label(self) -> &'static str {
        match self {
            Inhibitor::ImissStart => "Imiss start",
            Inhibitor::Maxwin => "Maxwin",
            Inhibitor::MispredBr => "Mispred br",
            Inhibitor::ImissEnd => "Imiss end",
            Inhibitor::MissingLoad => "Missing load",
            Inhibitor::DepStore => "Dep store",
            Inhibitor::Serialize => "Serialize",
            Inhibitor::StoreBuffer => "Store buffer",
            Inhibitor::None => "(none)",
        }
    }
}

impl fmt::Display for Inhibitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-epoch inhibitor frequencies (Figure 5's bars).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InhibitorCounts {
    /// Epochs triggered by an instruction-fetch miss.
    pub imiss_start: u64,
    /// Epochs terminated by window capacity.
    pub maxwin: u64,
    /// Epochs terminated by an unresolvable mispredicted branch.
    pub mispred_br: u64,
    /// Epochs terminated by an instruction-fetch miss mid-window.
    pub imiss_end: u64,
    /// Epochs limited by in-order load issue (config A only).
    pub missing_load: u64,
    /// Epochs limited by unresolved store addresses (configs A/B).
    pub dep_store: u64,
    /// Epochs terminated by a serializing instruction.
    pub serialize: u64,
    /// Epochs terminated by a full store buffer (extension).
    pub store_buffer: u64,
    /// Epochs with no binding limit (end of trace, natural close).
    pub none: u64,
}

impl InhibitorCounts {
    /// Records one epoch's binding inhibitor.
    pub fn record(&mut self, inhibitor: Inhibitor) {
        match inhibitor {
            Inhibitor::ImissStart => self.imiss_start += 1,
            Inhibitor::Maxwin => self.maxwin += 1,
            Inhibitor::MispredBr => self.mispred_br += 1,
            Inhibitor::ImissEnd => self.imiss_end += 1,
            Inhibitor::MissingLoad => self.missing_load += 1,
            Inhibitor::DepStore => self.dep_store += 1,
            Inhibitor::Serialize => self.serialize += 1,
            Inhibitor::StoreBuffer => self.store_buffer += 1,
            Inhibitor::None => self.none += 1,
        }
    }

    /// Total epochs recorded.
    pub fn total(&self) -> u64 {
        self.imiss_start
            + self.maxwin
            + self.mispred_br
            + self.imiss_end
            + self.missing_load
            + self.dep_store
            + self.serialize
            + self.store_buffer
            + self.none
    }

    /// `(label, count)` pairs in the paper's legend order, with the
    /// store-buffer extension appended before the no-limit bucket.
    pub fn as_rows(&self) -> [(&'static str, u64); 9] {
        [
            ("Imiss start", self.imiss_start),
            ("Maxwin", self.maxwin),
            ("Mispred br", self.mispred_br),
            ("Imiss end", self.imiss_end),
            ("Missing load", self.missing_load),
            ("Dep store", self.dep_store),
            ("Serialize", self.serialize),
            ("Store buffer", self.store_buffer),
            ("(none)", self.none),
        ]
    }
}

/// Results of an MLPsim run over the measurement window.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Instructions processed in the measurement window.
    pub insts: u64,
    /// Epochs containing at least one useful off-chip access.
    pub epochs: u64,
    /// Useful off-chip accesses by kind.
    pub offchip: OffchipCounts,
    /// Binding-inhibitor frequencies (Figure 5).
    pub inhibitors: InhibitorCounts,
    /// Branch-predictor behaviour over the window.
    pub branch_stats: BranchStats,
    /// Value-predictor behaviour over the window (all zeros when value
    /// prediction is off).
    pub value_stats: ValueStats,
    /// Histogram of useful off-chip accesses per epoch; index `i` counts
    /// epochs with `i` accesses (index 0 unused), saturating at the last
    /// bucket.
    pub epoch_size_histogram: Vec<u64>,
    /// Off-chip store fills (write allocations). Not useful accesses in
    /// the paper's sense — the store buffer hides them — but the unit of
    /// the store-MLP extension study.
    pub store_fills: u64,
    /// Epochs containing at least one store fill.
    pub store_fill_epochs: u64,
}

impl Report {
    /// Average MLP: useful off-chip accesses per epoch. Returns 1.0 for a
    /// window with no off-chip accesses (MLP is defined only over cycles
    /// with at least one access outstanding).
    pub fn mlp(&self) -> f64 {
        if self.epochs == 0 {
            1.0
        } else {
            self.offchip.total() as f64 / self.epochs as f64
        }
    }

    /// Average store MLP: off-chip store fills per epoch that has one —
    /// the metric of the paper's future-work store-MLP study. 1.0 when no
    /// store ever filled.
    pub fn store_mlp(&self) -> f64 {
        if self.store_fill_epochs == 0 {
            1.0
        } else {
            self.store_fills as f64 / self.store_fill_epochs as f64
        }
    }

    /// Off-chip accesses per 100 instructions (the paper's Table 1 "L2
    /// miss rate" unit).
    pub fn miss_rate_per_100(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            100.0 * self.offchip.total() as f64 / self.insts as f64
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instructions: {}", self.insts)?;
        writeln!(
            f,
            "off-chip: {} (D {} / I {} / P {})",
            self.offchip.total(),
            self.offchip.dmiss,
            self.offchip.imiss,
            self.offchip.pmiss
        )?;
        writeln!(f, "epochs:   {}", self.epochs)?;
        writeln!(f, "MLP:      {:.3}", self.mlp())?;
        write!(
            f,
            "miss rate: {:.3} per 100 insts",
            self.miss_rate_per_100()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_of_empty_report_is_one() {
        assert_eq!(Report::default().mlp(), 1.0);
    }

    #[test]
    fn mlp_ratio() {
        let r = Report {
            epochs: 4,
            offchip: OffchipCounts {
                dmiss: 5,
                imiss: 1,
                pmiss: 0,
            },
            ..Report::default()
        };
        assert!((r.mlp() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn inhibitor_record_and_total() {
        let mut c = InhibitorCounts::default();
        c.record(Inhibitor::Maxwin);
        c.record(Inhibitor::Maxwin);
        c.record(Inhibitor::Serialize);
        assert_eq!(c.maxwin, 2);
        assert_eq!(c.serialize, 1);
        assert_eq!(c.total(), 3);
        let rows = c.as_rows();
        assert_eq!(rows[1], ("Maxwin", 2));
    }

    #[test]
    fn labels_are_paper_legend() {
        assert_eq!(Inhibitor::ImissStart.label(), "Imiss start");
        assert_eq!(Inhibitor::DepStore.label(), "Dep store");
        assert_eq!(format!("{}", Inhibitor::Serialize), "Serialize");
    }

    #[test]
    fn miss_rate_per_100() {
        let r = Report {
            insts: 1000,
            offchip: OffchipCounts {
                dmiss: 8,
                imiss: 1,
                pmiss: 1,
            },
            ..Report::default()
        };
        assert!((r.miss_rate_per_100() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_mlp() {
        let r = Report::default();
        assert!(format!("{r}").contains("MLP"));
    }
}
