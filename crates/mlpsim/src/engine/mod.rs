mod inorder;
mod ooo;
mod scratch;

use crate::config::{BranchMode, MlpsimConfig, ValueMode, WindowModel};
use crate::report::{Inhibitor, InhibitorCounts, OffchipCounts, Report};
use mlp_isa::{
    ChunkedSoaSource, InstSource, SharedSoaSource, SoAChunks, StreamingSoaSource, TraceSoA,
    TraceSource,
};
use mlp_predict::{
    BranchObserver, BranchPredictor, BranchStats, HybridValuePredictor, LastValuePredictor,
    PerfectBranchPredictor, PerfectValuePredictor, StridePredictor, ValueObserver, ValuePrediction,
    ValueStats,
};

/// The kind of a useful off-chip access, for attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MissKind {
    Dmiss,
    Imiss,
    Pmiss,
}

/// Per-epoch bookkeeping: how many useful off-chip accesses landed in each
/// epoch, what triggered it, and which condition bound it. Epochs are
/// finalized (counted into the report) once the engine's epoch counter has
/// advanced past them.
#[derive(Debug, Default)]
pub(crate) struct EpochTracker {
    /// Open-epoch accumulators in a power-of-two ring indexed by
    /// `epoch & (ring.len() - 1)`. Epochs advance monotonically and
    /// accumulators are only touched at `t >= closed`, so each live epoch
    /// owns its slot exclusively; every slot outside `[closed, high)` is
    /// in the default (drained) state. Closing an epoch is a take-and-
    /// finalize of one slot — no map iteration on the per-epoch path.
    ring: Vec<EpochAcc>,
    /// First epoch not yet finalized (ring base).
    closed: u64,
    /// One past the highest epoch ever touched.
    high: u64,
    pub(crate) measuring: bool,
    epochs: u64,
    offchip: OffchipCounts,
    inhibitors: InhibitorCounts,
    histogram: Vec<u64>,
    store_fills: u64,
    store_fill_epochs: u64,
    /// Whether the epoch-length distribution accumulates, latched at
    /// construction so `note_inst` costs one branch when `MLP_OBS` is off.
    obs_armed: bool,
    /// The epoch instructions currently fetch into, and how many measured
    /// instructions it has received; rolled into the epoch's accumulator
    /// when the engine advances past it.
    cur_epoch: u64,
    cur_epoch_insts: u64,
    /// Measured instructions per finalized epoch (epochs with at least
    /// one useful off-chip access, matching the report's epoch count).
    epoch_len: mlp_obs::LocalHist,
}

#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct EpochAcc {
    misses: u32,
    store_fills: u32,
    insts: u64,
    trigger_imiss: bool,
    first_block: Option<Inhibitor>,
    policy: Option<Inhibitor>,
}

impl EpochAcc {
    /// Whether the accumulator is in the default (drained) state.
    fn is_clear(&self) -> bool {
        self.misses == 0
            && self.store_fills == 0
            && self.insts == 0
            && !self.trigger_imiss
            && self.first_block.is_none()
            && self.policy.is_none()
    }
}

/// Histogram buckets for misses-per-epoch (last bucket saturates).
const HIST_BUCKETS: usize = 65;

/// Initial open-epoch ring capacity (slots; grown on demand).
const RING_MIN: usize = 256;

impl EpochTracker {
    #[cfg(test)]
    pub(crate) fn new() -> EpochTracker {
        EpochTracker::with_scratch(Vec::new())
    }

    /// Like `EpochTracker::default` but reusing a pooled (drained) ring,
    /// so sweep points don't re-grow the open-epoch buffer.
    pub(crate) fn with_scratch(mut ring: Vec<EpochAcc>) -> EpochTracker {
        debug_assert!(ring.iter().all(EpochAcc::is_clear));
        if ring.len() < RING_MIN {
            ring.resize(RING_MIN, EpochAcc::default());
        }
        EpochTracker {
            ring,
            histogram: vec![0; HIST_BUCKETS],
            obs_armed: mlp_obs::counters_on(),
            ..EpochTracker::default()
        }
    }

    /// Mutable accumulator slot for epoch `t` (`t >= closed`), growing the
    /// ring when `t` lies beyond the current window.
    #[inline]
    fn slot(&mut self, t: u64) -> &mut EpochAcc {
        debug_assert!(t >= self.closed, "epoch {t} already finalized");
        if t - self.closed >= self.ring.len() as u64 {
            self.grow(t);
        }
        self.high = self.high.max(t + 1);
        let mask = self.ring.len() as u64 - 1;
        &mut self.ring[(t & mask) as usize]
    }

    #[cold]
    fn grow(&mut self, t: u64) {
        let span = (t - self.closed + 1) as usize;
        let new_cap = span.max(self.ring.len() * 2).next_power_of_two();
        let mut ring = vec![EpochAcc::default(); new_cap];
        let old_mask = self.ring.len() as u64 - 1;
        let new_mask = new_cap as u64 - 1;
        for u in self.closed..self.high {
            ring[(u & new_mask) as usize] = self.ring[(u & old_mask) as usize];
        }
        self.ring = ring;
    }

    /// Counts one measured instruction toward the current epoch's length.
    /// Engines call this from their existing `measuring` branch; one
    /// branch when `MLP_OBS` is off.
    #[inline]
    pub(crate) fn note_inst(&mut self) {
        if self.obs_armed {
            self.cur_epoch_insts += 1;
        }
    }

    /// Running totals for interval samples: (epochs finalized so far,
    /// useful off-chip accesses so far).
    pub(crate) fn totals(&self) -> (u64, u64) {
        (self.epochs, self.offchip.total())
    }

    /// Rolls the current epoch's instruction tally into its accumulator
    /// once the engine has advanced to epoch `e`. Instructions fetched in
    /// epochs that never see an off-chip access are dropped with them —
    /// epoch lengths describe the epochs the report counts.
    fn roll_insts(&mut self, e: u64) {
        if !self.obs_armed || e <= self.cur_epoch {
            return;
        }
        if self.cur_epoch_insts > 0 {
            let insts = self.cur_epoch_insts;
            self.slot(self.cur_epoch).insts += insts;
            self.cur_epoch_insts = 0;
        }
        self.cur_epoch = e;
    }

    /// Records a useful off-chip access belonging to epoch `t`.
    pub(crate) fn record_miss(&mut self, t: u64, kind: MissKind) {
        if !self.measuring {
            return;
        }
        let acc = self.slot(t);
        if acc.misses == 0 && kind == MissKind::Imiss {
            acc.trigger_imiss = true;
        }
        acc.misses += 1;
        match kind {
            MissKind::Dmiss => self.offchip.dmiss += 1,
            MissKind::Imiss => self.offchip.imiss += 1,
            MissKind::Pmiss => self.offchip.pmiss += 1,
        }
    }

    /// Records an off-chip store fill in epoch `t` (store-MLP extension).
    pub(crate) fn record_store_fill(&mut self, t: u64) {
        if !self.measuring {
            return;
        }
        self.slot(t).store_fills += 1;
        self.store_fills += 1;
    }

    /// Whether epoch `t` already contains at least one access.
    #[inline]
    pub(crate) fn has_miss(&self, t: u64) -> bool {
        t >= self.closed
            && t - self.closed < self.ring.len() as u64
            && self.ring[(t & (self.ring.len() as u64 - 1)) as usize].misses > 0
    }

    /// Notes the first fetch-blocking condition of epoch `t`.
    pub(crate) fn note_block(&mut self, t: u64, reason: Inhibitor) {
        if !self.measuring {
            return;
        }
        self.slot(t).first_block.get_or_insert(reason);
    }

    /// Notes that a would-miss load was deferred in epoch `t` purely by an
    /// issue-policy edge (configuration A's in-order loads or A/B's
    /// store-address wait).
    pub(crate) fn note_policy(&mut self, t: u64, reason: Inhibitor) {
        if !self.measuring {
            return;
        }
        self.slot(t).policy.get_or_insert(reason);
    }

    /// Finalizes every epoch strictly before `e`.
    pub(crate) fn close_before(&mut self, e: u64) {
        self.roll_insts(e);
        let mask = self.ring.len() as u64 - 1;
        for t in self.closed..e.min(self.high) {
            let acc = std::mem::take(&mut self.ring[(t & mask) as usize]);
            self.finalize(acc);
        }
        if e > self.closed {
            self.closed = e;
            self.high = self.high.max(e);
        }
    }

    /// Finalizes everything (end of run).
    pub(crate) fn close_all(&mut self) {
        self.roll_insts(self.cur_epoch + 1);
        self.close_before(self.high);
    }

    fn finalize(&mut self, acc: EpochAcc) {
        if acc.store_fills > 0 {
            self.store_fill_epochs += 1;
        }
        if acc.misses == 0 {
            return; // an epoch exists only around off-chip accesses
        }
        self.epochs += 1;
        let bucket = (acc.misses as usize).min(HIST_BUCKETS - 1);
        self.histogram[bucket] += 1;
        if self.obs_armed {
            self.epoch_len.record(acc.insts);
        }
        let inh = if acc.trigger_imiss {
            Inhibitor::ImissStart
        } else {
            match (acc.first_block, acc.policy) {
                (
                    Some(b @ (Inhibitor::Serialize | Inhibitor::MispredBr | Inhibitor::ImissEnd)),
                    _,
                ) => b,
                (_, Some(p)) => p,
                (Some(b), None) => b,
                (None, None) => Inhibitor::None,
            }
        };
        self.inhibitors.record(inh);
    }

    pub(crate) fn into_report(
        self,
        insts: u64,
        branch_stats: BranchStats,
        value_stats: ValueStats,
    ) -> Report {
        self.epoch_len.flush_to(&crate::obs::EPOCH_LEN);
        Report {
            insts,
            epochs: self.epochs,
            offchip: self.offchip,
            inhibitors: self.inhibitors,
            branch_stats,
            value_stats,
            epoch_size_histogram: self.histogram,
            store_fills: self.store_fills,
            store_fill_epochs: self.store_fill_epochs,
        }
    }
}

/// Static-dispatch wrapper over the branch-observer variants.
#[derive(Debug)]
pub(crate) enum Branches {
    Real(BranchPredictor),
    Perfect(PerfectBranchPredictor),
}

impl Branches {
    pub(crate) fn new(mode: BranchMode) -> Branches {
        match mode {
            BranchMode::Real(cfg) => Branches::Real(BranchPredictor::new(cfg)),
            BranchMode::Perfect => Branches::Perfect(PerfectBranchPredictor::new()),
        }
    }

    /// Returns whether the front end mispredicts this branch, given its
    /// already-decoded parts (straight off the trace columns).
    pub(crate) fn observe_branch(&mut self, pc: u64, info: mlp_isa::BranchInfo) -> bool {
        match self {
            Branches::Real(p) => p.observe_branch(pc, info),
            Branches::Perfect(p) => p.observe_branch(pc, info),
        }
    }

    pub(crate) fn stats(&self) -> BranchStats {
        match self {
            Branches::Real(p) => p.stats(),
            Branches::Perfect(p) => p.stats(),
        }
    }
}

/// Static-dispatch wrapper over the value-observer variants.
#[derive(Debug)]
pub(crate) enum Values {
    Off,
    Last(LastValuePredictor),
    Stride(StridePredictor),
    Hybrid(HybridValuePredictor),
    Perfect(PerfectValuePredictor),
}

impl Values {
    pub(crate) fn new(mode: ValueMode) -> Values {
        match mode {
            ValueMode::None => Values::Off,
            ValueMode::LastValue(entries) => Values::Last(LastValuePredictor::new(entries)),
            ValueMode::Stride(entries) => Values::Stride(StridePredictor::new(entries)),
            ValueMode::Hybrid(entries) => Values::Hybrid(HybridValuePredictor::new(entries)),
            ValueMode::Perfect => Values::Perfect(PerfectValuePredictor::new()),
        }
    }

    /// Consults the predictor for a missing load; `None` when value
    /// prediction is disabled.
    pub(crate) fn observe(&mut self, pc: u64, actual: u64) -> Option<ValuePrediction> {
        match self {
            Values::Off => None,
            Values::Last(p) => Some(p.observe(pc, actual)),
            Values::Stride(p) => Some(p.observe(pc, actual)),
            Values::Hybrid(p) => Some(p.observe(pc, actual)),
            Values::Perfect(p) => Some(p.observe(pc, actual)),
        }
    }

    pub(crate) fn stats(&self) -> ValueStats {
        match self {
            Values::Off => ValueStats::default(),
            Values::Last(p) => p.stats(),
            Values::Stride(p) => p.stats(),
            Values::Hybrid(p) => p.stats(),
            Values::Perfect(p) => p.stats(),
        }
    }
}

/// The epoch-model simulator.
///
/// Construct one per configuration; each [`Simulator::run`] starts from
/// cold caches and predictors (deterministic, self-contained runs).
///
/// # Examples
///
/// ```
/// use mlpsim::{MlpsimConfig, Simulator};
/// use mlp_workloads::micro;
///
/// let trace = micro::serialized_misses(4);
/// let report = Simulator::new(MlpsimConfig::default())
///     .run(&mut mlp_isa::SliceTrace::new(&trace), 0, u64::MAX);
/// // Config C serializes on MEMBAR: no two misses overlap.
/// assert_eq!(report.mlp(), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    config: MlpsimConfig,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MlpsimConfig::validate`].
    pub fn new(config: MlpsimConfig) -> Simulator {
        config.validate();
        Simulator { config }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &MlpsimConfig {
        &self.config
    }

    /// Runs the epoch model over `trace`: `warmup` instructions train the
    /// caches and predictors without counting, then up to `measure`
    /// instructions are measured (the run also ends at end-of-trace).
    ///
    /// The stream is decoded into a per-run column buffer and then runs
    /// through exactly the same kernel as [`Simulator::run_shared`];
    /// callers that replay one trace many times should materialize it
    /// once (e.g. through `mlp_workloads::TraceStore`) and use the shared
    /// entry point instead.
    pub fn run<T: TraceSource>(&mut self, trace: &mut T, warmup: u64, measure: u64) -> Report {
        let mut src = StreamingSoaSource::new(trace);
        self.run_source(&mut src, warmup, measure)
    }

    /// Runs the epoch model over a pre-materialized column trace (the
    /// first `len` instructions of `soa`), without copying or decoding
    /// anything per run.
    ///
    /// # Panics
    ///
    /// Panics if `len > soa.len()`.
    pub fn run_shared(&mut self, soa: &TraceSoA, len: usize, warmup: u64, measure: u64) -> Report {
        let mut src = SharedSoaSource::new(soa, len);
        self.run_source(&mut src, warmup, measure)
    }

    /// Runs the epoch model over a stream of column chunks (a spilled
    /// trace file, a generator adapter, …), keeping only a sliding
    /// window of the trace resident: peak memory is bounded by the
    /// engine's read-ahead span plus one chunk, independent of trace
    /// length. Dependence and epoch state carries across chunk
    /// boundaries inside the engine, so the result is identical to
    /// materializing the whole trace and calling
    /// [`Simulator::run_shared`].
    pub fn run_chunks<C: SoAChunks>(&mut self, chunks: C, warmup: u64, measure: u64) -> Report {
        let mut src = ChunkedSoaSource::new(chunks);
        self.run_source(&mut src, warmup, measure)
    }

    fn run_source<S: InstSource>(&mut self, src: &mut S, warmup: u64, measure: u64) -> Report {
        match self.config.window {
            WindowModel::InOrder(policy) => {
                inorder::run(&self.config, policy, src, warmup, measure)
            }
            _ => ooo::run(&self.config, src, warmup, measure),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_epochs_with_misses_only() {
        let mut t = EpochTracker::new();
        t.measuring = true;
        t.record_miss(0, MissKind::Dmiss);
        t.record_miss(0, MissKind::Dmiss);
        t.record_miss(2, MissKind::Pmiss);
        t.note_block(1, Inhibitor::Maxwin); // blocked but missless epoch
        t.close_all();
        let r = t.into_report(100, BranchStats::default(), ValueStats::default());
        assert_eq!(r.epochs, 2);
        assert_eq!(r.offchip.total(), 3);
        assert!((r.mlp() - 1.5).abs() < 1e-12);
        assert_eq!(r.epoch_size_histogram[2], 1);
        assert_eq!(r.epoch_size_histogram[1], 1);
    }

    #[test]
    fn tracker_attributes_imiss_trigger() {
        let mut t = EpochTracker::new();
        t.measuring = true;
        t.record_miss(0, MissKind::Imiss);
        t.record_miss(1, MissKind::Dmiss);
        t.record_miss(1, MissKind::Imiss);
        t.note_block(1, Inhibitor::ImissEnd);
        t.close_all();
        let r = t.into_report(0, BranchStats::default(), ValueStats::default());
        assert_eq!(r.inhibitors.imiss_start, 1);
        assert_eq!(r.inhibitors.imiss_end, 1);
    }

    #[test]
    fn tracker_policy_beats_maxwin() {
        let mut t = EpochTracker::new();
        t.measuring = true;
        t.record_miss(0, MissKind::Dmiss);
        t.note_block(0, Inhibitor::Maxwin);
        t.note_policy(0, Inhibitor::MissingLoad);
        t.close_all();
        let r = t.into_report(0, BranchStats::default(), ValueStats::default());
        assert_eq!(r.inhibitors.missing_load, 1);
        assert_eq!(r.inhibitors.maxwin, 0);
    }

    #[test]
    fn tracker_serialize_beats_policy() {
        let mut t = EpochTracker::new();
        t.measuring = true;
        t.record_miss(0, MissKind::Dmiss);
        t.note_block(0, Inhibitor::Serialize);
        t.note_policy(0, Inhibitor::DepStore);
        t.close_all();
        let r = t.into_report(0, BranchStats::default(), ValueStats::default());
        assert_eq!(r.inhibitors.serialize, 1);
    }

    #[test]
    fn warmup_gating() {
        let mut t = EpochTracker::new();
        t.record_miss(0, MissKind::Dmiss); // not measuring
        t.measuring = true;
        t.record_miss(1, MissKind::Dmiss);
        t.close_all();
        let r = t.into_report(0, BranchStats::default(), ValueStats::default());
        assert_eq!(r.offchip.total(), 1);
        assert_eq!(r.epochs, 1);
    }

    #[test]
    fn tracker_measures_epoch_lengths_for_counted_epochs_only() {
        let mut t = EpochTracker::new();
        t.obs_armed = true; // what new() latches under MLP_OBS=counters
        t.measuring = true;
        // Epoch 0: 3 instructions, one miss.
        for _ in 0..3 {
            t.note_inst();
        }
        t.record_miss(0, MissKind::Dmiss);
        t.close_before(1);
        // Epoch 1: 2 instructions, missless — dropped from the histogram.
        for _ in 0..2 {
            t.note_inst();
        }
        t.close_before(2);
        // Epoch 2: 5 instructions, two misses.
        for _ in 0..5 {
            t.note_inst();
        }
        t.record_miss(2, MissKind::Dmiss);
        t.record_miss(2, MissKind::Dmiss);
        t.close_all();
        assert_eq!(t.epochs, 2);
        assert_eq!(t.epoch_len.count(), 2);
        assert_eq!(t.epoch_len.sum(), 8);
        assert_eq!(t.epoch_len.max(), 5);
    }

    #[test]
    fn disarmed_tracker_measures_no_epoch_lengths() {
        let mut t = EpochTracker::new();
        t.obs_armed = false; // what new() latches with MLP_OBS unset
        t.measuring = true;
        t.note_inst();
        t.record_miss(0, MissKind::Dmiss);
        t.close_all();
        assert_eq!(t.epochs, 1);
        assert_eq!(t.epoch_len.count(), 0);
    }

    #[test]
    fn close_before_is_partial() {
        let mut t = EpochTracker::new();
        t.measuring = true;
        t.record_miss(0, MissKind::Dmiss);
        t.record_miss(5, MissKind::Dmiss);
        t.close_before(3);
        assert!(t.has_miss(5));
        assert!(!t.has_miss(0));
        t.close_all();
        let r = t.into_report(0, BranchStats::default(), ValueStats::default());
        assert_eq!(r.epochs, 2);
    }
}
