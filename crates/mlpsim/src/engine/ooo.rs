//! The out-of-order / runahead epoch engine.
//!
//! Time is measured in *epochs*. Every instruction is assigned, at fetch,
//! the epoch in which it will execute (`exec`) — the maximum of its data
//! dependences, its issue-policy edges, and the current epoch — and the
//! epoch in which it completes (`exec + 1` for off-chip accesses, `exec`
//! otherwise). Off-chip accesses are attributed to their `exec` epoch;
//! MLP is total accesses over the number of epochs that contain at least
//! one.
//!
//! Fetch proceeds within the current epoch until a *window termination
//! condition* blocks it: ROB/issue-window capacity, a serializing
//! instruction (configs A–D), an instruction-fetch miss, or an
//! unresolvable mispredicted branch. The epoch counter then advances,
//! head-of-window instructions retire, deferred instructions issue, and
//! fetch resumes.
//!
//! The engine runs over an [`InstSource`]'s columns: per instruction it
//! reads only the narrow fields it needs (class code, pre-filtered
//! dependence registers, effective address), dispatches on the dense
//! class code, and tracks register availability in a flat 66-slot file
//! indexed directly by the sentinel-encoded dependence columns — no
//! `Option` unwrapping or zero-register tests in the hot loop.

use super::{scratch, Branches, EpochTracker, MissKind, Values};
use crate::config::{MlpsimConfig, WindowModel};
use crate::report::{Inhibitor, Report};
use mlp_hash::FxHashMap;
use mlp_isa::{
    line_of, InstSource, AVAIL_SLOTS, CLASS_ALU, CLASS_ATOMIC, CLASS_LOAD, CLASS_MEMBAR, CLASS_NOP,
    CLASS_PREFETCH, CLASS_STORE, REG_NONE,
};
use mlp_mem::Hierarchy;
use mlp_obs::{IntervalSampler, Value};
use mlp_predict::{BranchStats, ValuePrediction, ValueStats};
use std::collections::VecDeque;

/// Prune the in-flight line / store-forwarding maps beyond this size.
const PRUNE_LIMIT: usize = 8192;

struct Engine<'a, S> {
    src: &'a mut S,
    // effective parameters
    iw: usize,
    rob: usize,
    fetch_buffer: usize,
    serializing: bool,
    loads_in_order: bool,
    wait_store_addr: bool,
    branches_in_order: bool,
    perfect_ifetch: bool,
    // components
    hierarchy: Hierarchy,
    branches: Branches,
    values: Values,
    tracker: EpochTracker,
    // machine state
    e: u64,
    window: VecDeque<u64>, // completion epochs, fetch order
    max_complete: u64,
    deferred: usize,
    /// Deferred-issue counts in a power-of-two ring indexed by
    /// `epoch & (len - 1)`. Non-zero slots live only at epochs in
    /// `(e, e + len]`, so each slot maps to a unique pending epoch.
    issue_buckets: Vec<u32>,
    avail: [u64; AVAIL_SLOTS],
    line_avail: FxHashMap<u64, u64>,
    store_fwd: FxHashMap<u64, u64>,
    last_mem_exec: u64,
    last_mem_cause: Inhibitor,
    store_addr_frontier: u64,
    last_branch_exec: u64,
    store_buffer: Option<usize>,
    sb_occupancy: usize,
    sb_releases: FxHashMap<u64, usize>,
    fetch_block: Option<(u64, Inhibitor)>,
    // fetch position
    next: usize,
    iclassified: usize,
    // run control
    consumed: u64,
    limit: u64,
    warmup: u64,
    insts: u64,
    branch_base: BranchStats,
    value_base: ValueStats,
    sampler: Option<IntervalSampler>,
}

pub(crate) fn run<S: InstSource>(
    cfg: &MlpsimConfig,
    src: &mut S,
    warmup: u64,
    measure: u64,
) -> Report {
    let (iw, rob, fetch_buffer, serializing) = match cfg.window {
        WindowModel::OutOfOrder {
            iw,
            rob,
            fetch_buffer,
        } => (iw, rob, fetch_buffer, cfg.issue.serializing()),
        WindowModel::Runahead { max_dist } => (max_dist, max_dist, 32, false),
        WindowModel::InOrder(_) => unreachable!("in-order runs use the in-order engine"),
    };
    let pool = scratch::take();
    let mut engine = Engine {
        src,
        iw,
        rob,
        fetch_buffer,
        serializing,
        loads_in_order: cfg.issue.loads_in_order(),
        wait_store_addr: cfg.issue.loads_wait_store_addresses(),
        branches_in_order: cfg.issue.branches_in_order(),
        perfect_ifetch: cfg.perfect_ifetch,
        hierarchy: Hierarchy::new(cfg.hierarchy),
        branches: Branches::new(cfg.branch),
        values: Values::new(cfg.value),
        tracker: EpochTracker::with_scratch(pool.tracker_ring),
        e: 0,
        window: pool.window,
        max_complete: 0,
        deferred: 0,
        issue_buckets: {
            let mut b = pool.issue_buckets;
            if b.len() < 256 {
                b.resize(256, 0);
            }
            b
        },
        avail: [0; AVAIL_SLOTS],
        line_avail: pool.line_avail,
        store_fwd: pool.store_fwd,
        last_mem_exec: 0,
        last_mem_cause: Inhibitor::MissingLoad,
        store_addr_frontier: 0,
        last_branch_exec: 0,
        store_buffer: cfg.store_buffer,
        sb_occupancy: 0,
        sb_releases: pool.sb_releases,
        fetch_block: None,
        next: 0,
        iclassified: 0,
        consumed: 0,
        limit: warmup.saturating_add(measure),
        warmup,
        insts: 0,
        branch_base: BranchStats::default(),
        value_base: ValueStats::default(),
        sampler: IntervalSampler::armed("mlpsim.sample"),
    };
    if warmup == 0 {
        engine.tracker.measuring = true;
    }
    let report = engine.run_loop();
    scratch::put(scratch::Scratch {
        window: std::mem::take(&mut engine.window),
        issue_buckets: std::mem::take(&mut engine.issue_buckets),
        line_avail: std::mem::take(&mut engine.line_avail),
        store_fwd: std::mem::take(&mut engine.store_fwd),
        sb_releases: std::mem::take(&mut engine.sb_releases),
        tracker_ring: std::mem::take(&mut engine.tracker.ring),
    });
    report
}

impl<S: InstSource> Engine<'_, S> {
    /// Makes the next `k` unfetched instructions available; `false` when
    /// the trace ends first.
    #[inline]
    fn have(&mut self, k: usize) -> bool {
        let want = self.next + k;
        self.src.available() >= want || self.src.ensure(want) >= want
    }

    /// Column slot of absolute trace index `idx`. A streaming source
    /// evicts released prefixes, so its columns are offset by
    /// [`InstSource::base`]; must be recomputed after any
    /// `ensure`/`release` (both may compact the window).
    #[inline]
    fn rel(&self, idx: usize) -> usize {
        idx - self.src.base()
    }

    fn run_loop(&mut self) -> Report {
        loop {
            self.fetch_at_epoch();
            if self.out_of_input() && self.window.is_empty() {
                break;
            }
            self.advance();
        }
        self.tracker.close_all();
        if self.sampler.is_some() {
            let (epochs, offchip) = self.tracker.totals();
            let insts = self.insts;
            if let Some(s) = self.sampler.as_mut() {
                s.finish(
                    insts,
                    &[
                        ("epochs", Value::U64(epochs)),
                        ("offchip", Value::U64(offchip)),
                    ],
                );
            }
        }
        let mut tracker = std::mem::take(&mut self.tracker);
        // The accumulator ring is drained by `close_all`; park it back on
        // `self` so `run` can pool it after the tracker is consumed into
        // the report.
        self.tracker.ring = std::mem::take(&mut tracker.ring);
        let b = self.branches.stats();
        let v = self.values.stats();
        let report = tracker.into_report(
            self.insts,
            BranchStats {
                branches: b.branches - self.branch_base.branches,
                mispredicts: b.mispredicts - self.branch_base.mispredicts,
            },
            ValueStats {
                correct: v.correct - self.value_base.correct,
                wrong: v.wrong - self.value_base.wrong,
                no_predict: v.no_predict - self.value_base.no_predict,
            },
        );
        crate::obs::flush_run(&report);
        self.hierarchy.flush_obs();
        report
    }

    fn out_of_input(&mut self) -> bool {
        self.consumed >= self.limit || !self.have(1)
    }

    fn advance(&mut self) {
        // Everything below the fetch frontier has been admitted and its
        // effects cached in engine state; let a streaming source evict it.
        self.src.release(self.next);
        self.e += 1;
        let mask = self.issue_buckets.len() as u64 - 1;
        let n = std::mem::take(&mut self.issue_buckets[(self.e & mask) as usize]);
        self.deferred -= n as usize;
        if !self.sb_releases.is_empty() {
            if let Some(n) = self.sb_releases.remove(&self.e) {
                self.sb_occupancy -= n;
            }
        }
        self.tracker.close_before(self.e);
        if self.sampler.as_ref().is_some_and(|s| s.due(self.insts)) {
            let (epochs, offchip) = self.tracker.totals();
            let insts = self.insts;
            if let Some(s) = self.sampler.as_mut() {
                s.record(
                    insts,
                    &[
                        ("epochs", Value::U64(epochs)),
                        ("offchip", Value::U64(offchip)),
                    ],
                );
            }
        }
        if self.line_avail.len() > PRUNE_LIMIT {
            let e = self.e;
            self.line_avail.retain(|_, &mut av| av > e);
        }
        if self.store_fwd.len() > PRUNE_LIMIT {
            let e = self.e;
            self.store_fwd.retain(|_, &mut ep| ep > e);
        }
    }

    fn retire(&mut self) {
        while let Some(&c) = self.window.front() {
            if c <= self.e {
                self.window.pop_front();
            } else {
                break;
            }
        }
    }

    fn fetch_at_epoch(&mut self) {
        loop {
            self.retire();
            if let Some((until, _)) = self.fetch_block {
                if until > self.e {
                    return;
                }
                self.fetch_block = None;
            }
            if self.consumed >= self.limit {
                return;
            }
            if !self.have(1) {
                return;
            }
            // Instruction-fetch classification of the next instruction.
            if !self.perfect_ifetch && self.iclassified == 0 {
                let pc = self.src.soa().pc()[self.rel(self.next)];
                let acc = self.hierarchy.ifetch(pc);
                self.iclassified = 1;
                if acc.is_off_chip() {
                    let first = !self.tracker.has_miss(self.e);
                    self.tracker.record_miss(self.e, MissKind::Imiss);
                    let reason = if first {
                        Inhibitor::ImissStart
                    } else {
                        Inhibitor::ImissEnd
                    };
                    self.tracker.note_block(self.e, reason);
                    self.fetch_block = Some((self.e + 1, reason));
                    return;
                }
            }
            // Capacity: ROB holds everything in flight; the issue window
            // holds only unissued (deferred) instructions.
            if self.window.len() >= self.rob || self.deferred >= self.iw {
                self.tracker.note_block(self.e, Inhibitor::Maxwin);
                self.fetch_block = Some((self.e + 1, Inhibitor::Maxwin));
                self.probe_ahead();
                return;
            }
            let idx = self.next;
            self.next += 1;
            self.iclassified = self.iclassified.saturating_sub(1);
            self.consumed += 1;
            if self.consumed == self.warmup + 1 && !self.tracker.measuring {
                self.start_measuring();
            }
            if self.tracker.measuring {
                self.insts += 1;
                self.tracker.note_inst();
            }
            self.admit(idx);
            if self.fetch_block.is_some() {
                return;
            }
        }
    }

    fn start_measuring(&mut self) {
        self.tracker.measuring = true;
        self.hierarchy.reset_stats();
        self.branch_base = self.branches.stats();
        self.value_base = self.values.stats();
    }

    /// While the window is full, instruction fetch may still run ahead up
    /// to the fetch-buffer depth, so instruction-fetch misses can overlap
    /// the current epoch.
    fn probe_ahead(&mut self) {
        if self.perfect_ifetch {
            return;
        }
        while self.iclassified < self.fetch_buffer {
            if !self.have(self.iclassified + 1) {
                return;
            }
            let pc = self.src.soa().pc()[self.rel(self.next + self.iclassified)];
            let acc = self.hierarchy.ifetch(pc);
            self.iclassified += 1;
            if acc.is_off_chip() {
                self.tracker.record_miss(self.e, MissKind::Imiss);
                return; // fetch cannot pass a missing line this epoch
            }
        }
    }

    /// Data-readiness epoch: three unconditional reads of the
    /// availability file (sentinel slot [`mlp_isa::DEP_READ_NONE`] is
    /// pinned at 0, so absent dependences never bind).
    #[inline]
    fn data_epoch(&self, idx: usize) -> u64 {
        let [a, b, c] = self.src.soa().dep_srcs()[self.rel(idx)];
        self.e
            .max(self.avail[a as usize])
            .max(self.avail[b as usize])
            .max(self.avail[c as usize])
    }

    /// Publishes the result epoch: one unconditional write (instructions
    /// without a register result target the
    /// [`mlp_isa::DEP_WRITE_NONE`] trash slot).
    #[inline]
    fn set_avail(&mut self, idx: usize, epoch: u64) {
        self.avail[self.src.soa().dep_dst()[self.rel(idx)] as usize] = epoch;
    }

    fn push_entry(&mut self, exec: u64, complete: u64) {
        self.window.push_back(complete);
        self.max_complete = self.max_complete.max(complete);
        if exec > self.e {
            self.deferred += 1;
            if exec - self.e > self.issue_buckets.len() as u64 {
                self.grow_buckets(exec);
            }
            let mask = self.issue_buckets.len() as u64 - 1;
            self.issue_buckets[(exec & mask) as usize] += 1;
        }
    }

    /// Re-homes pending issue buckets into a ring large enough to index
    /// epoch `exec` (slots cover `(e, e + len]`).
    #[cold]
    fn grow_buckets(&mut self, exec: u64) {
        let old = &self.issue_buckets;
        let need = (exec - self.e) as usize;
        let new_cap = need.max(old.len() * 2).next_power_of_two();
        let mut ring = vec![0u32; new_cap];
        let old_mask = old.len() as u64 - 1;
        let new_mask = new_cap as u64 - 1;
        for t in self.e + 1..=self.e + old.len() as u64 {
            ring[(t & new_mask) as usize] = old[(t & old_mask) as usize];
        }
        self.issue_buckets = ring;
    }

    fn admit(&mut self, idx: usize) {
        let data = self.data_epoch(idx);
        match self.src.soa().class()[self.rel(idx)] {
            CLASS_ALU | CLASS_NOP => {
                self.set_avail(idx, data);
                self.push_entry(data, data);
            }
            CLASS_LOAD => self.admit_load(idx, data, false),
            CLASS_ATOMIC => {
                if self.serializing {
                    // Pipeline drain: every older instruction must commit
                    // before the atomic issues, and nothing younger is
                    // fetched until it does.
                    let exec = data.max(self.max_complete);
                    self.admit_load_policy(idx, exec, exec, None, true);
                    if exec > self.e {
                        self.tracker.note_block(self.e, Inhibitor::Serialize);
                        self.fetch_block = Some((exec, Inhibitor::Serialize));
                    }
                } else {
                    self.admit_load(idx, data, true);
                }
            }
            CLASS_MEMBAR => {
                if self.serializing {
                    let exec = data.max(self.max_complete);
                    self.push_entry(exec, exec);
                    if exec > self.e {
                        self.tracker.note_block(self.e, Inhibitor::Serialize);
                        self.fetch_block = Some((exec, Inhibitor::Serialize));
                    }
                } else {
                    self.push_entry(data, data);
                }
            }
            CLASS_STORE => self.admit_store(idx, data),
            CLASS_PREFETCH => {
                let exec = data;
                if self.src.soa().has_mem(self.rel(idx)) {
                    let addr = self.src.soa().addr()[self.rel(idx)];
                    let line = line_of(addr);
                    let in_flight = self.line_avail.get(&line).copied().unwrap_or(0) > exec;
                    if !in_flight && self.hierarchy.prefetch(addr).is_off_chip() {
                        self.tracker.record_miss(exec, MissKind::Pmiss);
                        self.line_avail.insert(line, exec + 1);
                    }
                }
                self.push_entry(exec, exec);
            }
            _ => self.admit_branch(idx, data), // the four branch classes
        }
    }

    fn admit_load(&mut self, idx: usize, data: u64, also_store: bool) {
        // Issue-policy edges (Table 2).
        let mut exec = data;
        let mut policy_cause = None;
        if self.loads_in_order && self.last_mem_exec > exec {
            exec = self.last_mem_exec;
            policy_cause = Some(self.last_mem_cause);
        }
        if self.wait_store_addr && self.store_addr_frontier > exec {
            exec = self.store_addr_frontier;
            policy_cause = Some(Inhibitor::DepStore);
        }
        self.admit_load_policy(idx, exec, data, policy_cause, also_store);
    }

    fn admit_load_policy(
        &mut self,
        idx: usize,
        exec: u64,
        data: u64,
        policy_cause: Option<Inhibitor>,
        also_store: bool,
    ) {
        debug_assert!(
            self.src.soa().has_mem(self.rel(idx)),
            "loads carry a memory access"
        );
        let addr = self.src.soa().addr()[self.rel(idx)];
        let line = line_of(addr);
        let fwd = self.store_fwd.get(&(addr & !7)).copied();
        let (ready, missed) = if let Some(ef) = fwd {
            (exec.max(ef), false)
        } else if let Some(&av) = self.line_avail.get(&line) {
            if av > exec {
                (av, false) // merge with the in-flight line transfer
            } else {
                let _ = self.hierarchy.load(addr); // resident: on-chip hit
                (exec, false)
            }
        } else if self.hierarchy.load(addr).is_off_chip() {
            self.tracker.record_miss(exec, MissKind::Dmiss);
            self.line_avail.insert(line, exec + 1);
            // A policy-deferred miss whose data inputs were ready is lost
            // MLP chargeable to the issue policy (Figure 5's "Missing
            // load" / "Dep store" segments).
            if let Some(cause) = policy_cause {
                if data <= self.e && exec > self.e {
                    self.tracker.note_policy(self.e, cause);
                }
            }
            let pc = self.src.soa().pc()[self.rel(idx)];
            let value = self.src.soa().value()[self.rel(idx)];
            let predicted = matches!(
                self.values.observe(pc, value),
                Some(ValuePrediction::Correct)
            );
            (if predicted { exec } else { exec + 1 }, true)
        } else {
            (exec, false)
        };
        let complete = if missed { exec + 1 } else { ready.max(exec) };
        self.set_avail(idx, ready);
        if also_store {
            self.store_fwd.insert(addr & !7, complete);
        }
        if self.loads_in_order {
            self.last_mem_exec = self.last_mem_exec.max(exec);
            self.last_mem_cause = if missed {
                Inhibitor::MissingLoad
            } else {
                policy_cause.unwrap_or(Inhibitor::MissingLoad)
            };
        }
        self.push_entry(exec, complete);
    }

    fn admit_store(&mut self, idx: usize, data: u64) {
        let mut exec = data;
        if self.loads_in_order && self.last_mem_exec > exec {
            exec = self.last_mem_exec;
        }
        debug_assert!(
            self.src.soa().has_mem(self.rel(idx)),
            "stores carry a memory access"
        );
        let addr = self.src.soa().addr()[self.rel(idx)];
        // Write-allocate install; store misses are absorbed by the store
        // buffer and are not useful off-chip accesses (paper §2.1). With
        // a finite buffer (the paper's future-work store-MLP study) each
        // off-chip fill occupies an entry until it returns.
        if self.hierarchy.store(addr).is_off_chip() {
            self.tracker.record_store_fill(exec);
            if self.store_buffer.is_some() {
                self.sb_occupancy += 1;
                *self.sb_releases.entry(exec + 1).or_insert(0) += 1;
            }
        }
        if let Some(cap) = self.store_buffer {
            if self.sb_occupancy > cap {
                let release = self
                    .sb_releases
                    .keys()
                    .copied()
                    .min()
                    .unwrap_or(self.e + 1)
                    .max(self.e + 1);
                self.tracker.note_block(self.e, Inhibitor::StoreBuffer);
                self.fetch_block = Some((release, Inhibitor::StoreBuffer));
            }
        }
        self.store_fwd.insert(addr & !7, exec);
        if self.wait_store_addr {
            // The address register is slot 0 of the *raw* source columns
            // (dependence columns are compacted and lose slot positions).
            let r = self.src.soa().srcs_raw()[self.rel(idx)][0];
            let addr_ready = if r == REG_NONE || r == 0 {
                self.e
            } else {
                self.avail[r as usize].max(self.e)
            };
            self.store_addr_frontier = self.store_addr_frontier.max(addr_ready);
        }
        if self.loads_in_order {
            self.last_mem_exec = self.last_mem_exec.max(exec);
            if exec > self.e {
                self.last_mem_cause = Inhibitor::DepStore;
            }
        }
        self.push_entry(exec, exec);
    }

    fn admit_branch(&mut self, idx: usize, data: u64) {
        let mut exec = data;
        if self.branches_in_order {
            exec = exec.max(self.last_branch_exec);
        }
        self.last_branch_exec = exec;
        let info = self
            .src
            .soa()
            .branch_info(self.rel(idx))
            .expect("branch classes carry branch info");
        let mispredicted = self
            .branches
            .observe_branch(self.src.soa().pc()[self.rel(idx)], info);
        if mispredicted && exec > self.e {
            // Unresolvable misprediction: the processor runs down the
            // wrong path until the branch resolves.
            self.tracker.note_block(self.e, Inhibitor::MispredBr);
            self.fetch_block = Some((exec, Inhibitor::MispredBr));
        }
        self.push_entry(exec, exec);
    }
}
