//! The out-of-order / runahead epoch engine.
//!
//! Time is measured in *epochs*. Every instruction is assigned, at fetch,
//! the epoch in which it will execute (`exec`) — the maximum of its data
//! dependences, its issue-policy edges, and the current epoch — and the
//! epoch in which it completes (`exec + 1` for off-chip accesses, `exec`
//! otherwise). Off-chip accesses are attributed to their `exec` epoch;
//! MLP is total accesses over the number of epochs that contain at least
//! one.
//!
//! Fetch proceeds within the current epoch until a *window termination
//! condition* blocks it: ROB/issue-window capacity, a serializing
//! instruction (configs A–D), an instruction-fetch miss, or an
//! unresolvable mispredicted branch. The epoch counter then advances,
//! head-of-window instructions retire, deferred instructions issue, and
//! fetch resumes.

use super::{Branches, EpochTracker, MissKind, Values};
use crate::config::{MlpsimConfig, WindowModel};
use crate::report::{Inhibitor, Report};
use mlp_hash::FxHashMap;
use mlp_isa::{line_of, Inst, OpKind, Reg, TraceSource};
use mlp_mem::Hierarchy;
use mlp_obs::{IntervalSampler, Value};
use mlp_predict::{BranchStats, ValuePrediction, ValueStats};
use std::collections::VecDeque;

/// Prune the in-flight line / store-forwarding maps beyond this size.
const PRUNE_LIMIT: usize = 8192;

/// Cap on speculative pre-sizing of per-run containers, so configurations
/// with huge (or effectively infinite) windows do not reserve absurd
/// amounts up front.
const PRESIZE_LIMIT: usize = 16_384;

struct Engine<'a, T> {
    trace: &'a mut T,
    // effective parameters
    iw: usize,
    rob: usize,
    fetch_buffer: usize,
    serializing: bool,
    loads_in_order: bool,
    wait_store_addr: bool,
    branches_in_order: bool,
    perfect_ifetch: bool,
    // components
    hierarchy: Hierarchy,
    branches: Branches,
    values: Values,
    tracker: EpochTracker,
    // machine state
    e: u64,
    window: VecDeque<u64>, // completion epochs, fetch order
    max_complete: u64,
    deferred: usize,
    issue_buckets: FxHashMap<u64, usize>,
    avail: [u64; Reg::COUNT],
    line_avail: FxHashMap<u64, u64>,
    store_fwd: FxHashMap<u64, u64>,
    last_mem_exec: u64,
    last_mem_cause: Inhibitor,
    store_addr_frontier: u64,
    last_branch_exec: u64,
    store_buffer: Option<usize>,
    sb_occupancy: usize,
    sb_releases: FxHashMap<u64, usize>,
    fetch_block: Option<(u64, Inhibitor)>,
    // fetch lookahead
    lookahead: VecDeque<Inst>,
    iclassified: usize,
    // run control
    consumed: u64,
    limit: u64,
    warmup: u64,
    insts: u64,
    trace_done: bool,
    branch_base: BranchStats,
    value_base: ValueStats,
    sampler: Option<IntervalSampler>,
}

pub(crate) fn run<T: TraceSource>(
    cfg: &MlpsimConfig,
    trace: &mut T,
    warmup: u64,
    measure: u64,
) -> Report {
    let (iw, rob, fetch_buffer, serializing) = match cfg.window {
        WindowModel::OutOfOrder {
            iw,
            rob,
            fetch_buffer,
        } => (iw, rob, fetch_buffer, cfg.issue.serializing()),
        WindowModel::Runahead { max_dist } => (max_dist, max_dist, 32, false),
        WindowModel::InOrder(_) => unreachable!("in-order runs use the in-order engine"),
    };
    let mut engine = Engine {
        trace,
        iw,
        rob,
        fetch_buffer,
        serializing,
        loads_in_order: cfg.issue.loads_in_order(),
        wait_store_addr: cfg.issue.loads_wait_store_addresses(),
        branches_in_order: cfg.issue.branches_in_order(),
        perfect_ifetch: cfg.perfect_ifetch,
        hierarchy: Hierarchy::new(cfg.hierarchy),
        branches: Branches::new(cfg.branch),
        values: Values::new(cfg.value),
        tracker: EpochTracker::new(),
        e: 0,
        window: VecDeque::with_capacity(rob.min(PRESIZE_LIMIT)),
        max_complete: 0,
        deferred: 0,
        issue_buckets: mlp_hash::map_with_capacity(64),
        avail: [0; Reg::COUNT],
        line_avail: mlp_hash::map_with_capacity(1024),
        store_fwd: mlp_hash::map_with_capacity(1024),
        last_mem_exec: 0,
        last_mem_cause: Inhibitor::MissingLoad,
        store_addr_frontier: 0,
        last_branch_exec: 0,
        store_buffer: cfg.store_buffer,
        sb_occupancy: 0,
        sb_releases: mlp_hash::map_with_capacity(64),
        fetch_block: None,
        lookahead: VecDeque::with_capacity(fetch_buffer.min(PRESIZE_LIMIT) + 1),
        iclassified: 0,
        consumed: 0,
        limit: warmup.saturating_add(measure),
        warmup,
        insts: 0,
        trace_done: false,
        branch_base: BranchStats::default(),
        value_base: ValueStats::default(),
        sampler: IntervalSampler::armed("mlpsim.sample"),
    };
    if warmup == 0 {
        engine.tracker.measuring = true;
    }
    engine.run_loop()
}

impl<T: TraceSource> Engine<'_, T> {
    fn run_loop(&mut self) -> Report {
        loop {
            self.fetch_at_epoch();
            if self.out_of_input() && self.window.is_empty() {
                break;
            }
            self.advance();
        }
        self.tracker.close_all();
        if self.sampler.is_some() {
            let (epochs, offchip) = self.tracker.totals();
            let insts = self.insts;
            if let Some(s) = self.sampler.as_mut() {
                s.finish(
                    insts,
                    &[
                        ("epochs", Value::U64(epochs)),
                        ("offchip", Value::U64(offchip)),
                    ],
                );
            }
        }
        let tracker = std::mem::take(&mut self.tracker);
        let b = self.branches.stats();
        let v = self.values.stats();
        let report = tracker.into_report(
            self.insts,
            BranchStats {
                branches: b.branches - self.branch_base.branches,
                mispredicts: b.mispredicts - self.branch_base.mispredicts,
            },
            ValueStats {
                correct: v.correct - self.value_base.correct,
                wrong: v.wrong - self.value_base.wrong,
                no_predict: v.no_predict - self.value_base.no_predict,
            },
        );
        crate::obs::flush_run(&report);
        self.hierarchy.flush_obs();
        report
    }

    fn out_of_input(&mut self) -> bool {
        self.consumed >= self.limit || (self.lookahead.is_empty() && !self.fill_lookahead(1))
    }

    fn advance(&mut self) {
        self.e += 1;
        if let Some(n) = self.issue_buckets.remove(&self.e) {
            self.deferred -= n;
        }
        if let Some(n) = self.sb_releases.remove(&self.e) {
            self.sb_occupancy -= n;
        }
        self.tracker.close_before(self.e);
        if self.sampler.as_ref().is_some_and(|s| s.due(self.insts)) {
            let (epochs, offchip) = self.tracker.totals();
            let insts = self.insts;
            if let Some(s) = self.sampler.as_mut() {
                s.record(
                    insts,
                    &[
                        ("epochs", Value::U64(epochs)),
                        ("offchip", Value::U64(offchip)),
                    ],
                );
            }
        }
        if self.line_avail.len() > PRUNE_LIMIT {
            let e = self.e;
            self.line_avail.retain(|_, &mut av| av > e);
        }
        if self.store_fwd.len() > PRUNE_LIMIT {
            let e = self.e;
            self.store_fwd.retain(|_, &mut ep| ep > e);
        }
    }

    fn retire(&mut self) {
        while let Some(&c) = self.window.front() {
            if c <= self.e {
                self.window.pop_front();
            } else {
                break;
            }
        }
    }

    fn fill_lookahead(&mut self, upto: usize) -> bool {
        while self.lookahead.len() < upto {
            match self.trace.next_inst() {
                Some(i) => self.lookahead.push_back(i),
                None => {
                    self.trace_done = true;
                    return false;
                }
            }
        }
        true
    }

    fn fetch_at_epoch(&mut self) {
        loop {
            self.retire();
            if let Some((until, _)) = self.fetch_block {
                if until > self.e {
                    return;
                }
                self.fetch_block = None;
            }
            if self.consumed >= self.limit {
                return;
            }
            if self.lookahead.is_empty() && !self.fill_lookahead(1) {
                return;
            }
            // Instruction-fetch classification of the next instruction.
            if !self.perfect_ifetch && self.iclassified == 0 {
                let pc = self.lookahead[0].pc;
                let acc = self.hierarchy.ifetch(pc);
                self.iclassified = 1;
                if acc.is_off_chip() {
                    let first = !self.tracker.has_miss(self.e);
                    self.tracker.record_miss(self.e, MissKind::Imiss);
                    let reason = if first {
                        Inhibitor::ImissStart
                    } else {
                        Inhibitor::ImissEnd
                    };
                    self.tracker.note_block(self.e, reason);
                    self.fetch_block = Some((self.e + 1, reason));
                    return;
                }
            }
            // Capacity: ROB holds everything in flight; the issue window
            // holds only unissued (deferred) instructions.
            if self.window.len() >= self.rob || self.deferred >= self.iw {
                self.tracker.note_block(self.e, Inhibitor::Maxwin);
                self.fetch_block = Some((self.e + 1, Inhibitor::Maxwin));
                self.probe_ahead();
                return;
            }
            let inst = self.lookahead.pop_front().expect("front checked above");
            self.iclassified = self.iclassified.saturating_sub(1);
            self.consumed += 1;
            if self.consumed == self.warmup + 1 && !self.tracker.measuring {
                self.start_measuring();
            }
            if self.tracker.measuring {
                self.insts += 1;
                self.tracker.note_inst();
            }
            self.admit(&inst);
            if self.fetch_block.is_some() {
                return;
            }
        }
    }

    fn start_measuring(&mut self) {
        self.tracker.measuring = true;
        self.hierarchy.reset_stats();
        self.branch_base = self.branches.stats();
        self.value_base = self.values.stats();
    }

    /// While the window is full, instruction fetch may still run ahead up
    /// to the fetch-buffer depth, so instruction-fetch misses can overlap
    /// the current epoch.
    fn probe_ahead(&mut self) {
        if self.perfect_ifetch {
            return;
        }
        while self.iclassified < self.fetch_buffer {
            if !self.fill_lookahead(self.iclassified + 1) {
                return;
            }
            let pc = self.lookahead[self.iclassified].pc;
            let acc = self.hierarchy.ifetch(pc);
            self.iclassified += 1;
            if acc.is_off_chip() {
                self.tracker.record_miss(self.e, MissKind::Imiss);
                return; // fetch cannot pass a missing line this epoch
            }
        }
    }

    fn data_epoch(&self, inst: &Inst) -> u64 {
        let mut t = self.e;
        for r in inst.dep_srcs() {
            t = t.max(self.avail[r.index()]);
        }
        t
    }

    fn push_entry(&mut self, exec: u64, complete: u64) {
        self.window.push_back(complete);
        self.max_complete = self.max_complete.max(complete);
        if exec > self.e {
            self.deferred += 1;
            *self.issue_buckets.entry(exec).or_insert(0) += 1;
        }
    }

    fn set_avail(&mut self, dst: Option<Reg>, epoch: u64) {
        if let Some(r) = dst {
            if !r.is_zero() {
                self.avail[r.index()] = epoch;
            }
        }
    }

    fn admit(&mut self, inst: &Inst) {
        let data = self.data_epoch(inst);
        match inst.kind {
            OpKind::Alu | OpKind::Nop => {
                self.set_avail(inst.dst, data);
                self.push_entry(data, data);
            }
            OpKind::Load => self.admit_load(inst, data, false),
            OpKind::Atomic => {
                if self.serializing {
                    // Pipeline drain: every older instruction must commit
                    // before the atomic issues, and nothing younger is
                    // fetched until it does.
                    let exec = data.max(self.max_complete);
                    self.admit_load_at(inst, exec, true);
                    if exec > self.e {
                        self.tracker.note_block(self.e, Inhibitor::Serialize);
                        self.fetch_block = Some((exec, Inhibitor::Serialize));
                    }
                } else {
                    self.admit_load(inst, data, true);
                }
            }
            OpKind::Membar => {
                if self.serializing {
                    let exec = data.max(self.max_complete);
                    self.push_entry(exec, exec);
                    if exec > self.e {
                        self.tracker.note_block(self.e, Inhibitor::Serialize);
                        self.fetch_block = Some((exec, Inhibitor::Serialize));
                    }
                } else {
                    self.push_entry(data, data);
                }
            }
            OpKind::Store => self.admit_store(inst, data),
            OpKind::Prefetch => {
                let exec = data;
                if let Some(m) = inst.mem {
                    let line = line_of(m.addr);
                    let in_flight = self.line_avail.get(&line).copied().unwrap_or(0) > exec;
                    if !in_flight && self.hierarchy.prefetch(m.addr).is_off_chip() {
                        self.tracker.record_miss(exec, MissKind::Pmiss);
                        self.line_avail.insert(line, exec + 1);
                    }
                }
                self.push_entry(exec, exec);
            }
            OpKind::Branch(_) => self.admit_branch(inst, data),
        }
    }

    fn admit_load(&mut self, inst: &Inst, data: u64, also_store: bool) {
        // Issue-policy edges (Table 2).
        let mut exec = data;
        let mut policy_cause = None;
        if self.loads_in_order && self.last_mem_exec > exec {
            exec = self.last_mem_exec;
            policy_cause = Some(self.last_mem_cause);
        }
        if self.wait_store_addr && self.store_addr_frontier > exec {
            exec = self.store_addr_frontier;
            policy_cause = Some(Inhibitor::DepStore);
        }
        self.admit_load_policy(inst, exec, data, policy_cause, also_store);
    }

    fn admit_load_at(&mut self, inst: &Inst, exec: u64, also_store: bool) {
        self.admit_load_policy(inst, exec, exec, None, also_store);
    }

    fn admit_load_policy(
        &mut self,
        inst: &Inst,
        exec: u64,
        data: u64,
        policy_cause: Option<Inhibitor>,
        also_store: bool,
    ) {
        let m = inst.mem.expect("loads carry a memory access");
        let line = line_of(m.addr);
        let fwd = self.store_fwd.get(&(m.addr & !7)).copied();
        let (ready, missed) = if let Some(ef) = fwd {
            (exec.max(ef), false)
        } else if let Some(&av) = self.line_avail.get(&line) {
            if av > exec {
                (av, false) // merge with the in-flight line transfer
            } else {
                let _ = self.hierarchy.load(m.addr); // resident: on-chip hit
                (exec, false)
            }
        } else if self.hierarchy.load(m.addr).is_off_chip() {
            self.tracker.record_miss(exec, MissKind::Dmiss);
            self.line_avail.insert(line, exec + 1);
            // A policy-deferred miss whose data inputs were ready is lost
            // MLP chargeable to the issue policy (Figure 5's "Missing
            // load" / "Dep store" segments).
            if let Some(cause) = policy_cause {
                if data <= self.e && exec > self.e {
                    self.tracker.note_policy(self.e, cause);
                }
            }
            let predicted = matches!(
                self.values.observe(inst.pc, inst.value),
                Some(ValuePrediction::Correct)
            );
            (if predicted { exec } else { exec + 1 }, true)
        } else {
            (exec, false)
        };
        let complete = if missed { exec + 1 } else { ready.max(exec) };
        self.set_avail(inst.dst, ready);
        if also_store {
            self.store_fwd.insert(m.addr & !7, complete);
        }
        if self.loads_in_order {
            self.last_mem_exec = self.last_mem_exec.max(exec);
            self.last_mem_cause = if missed {
                Inhibitor::MissingLoad
            } else {
                policy_cause.unwrap_or(Inhibitor::MissingLoad)
            };
        }
        self.push_entry(exec, complete);
    }

    fn admit_store(&mut self, inst: &Inst, data: u64) {
        let mut exec = data;
        if self.loads_in_order && self.last_mem_exec > exec {
            exec = self.last_mem_exec;
        }
        let m = inst.mem.expect("stores carry a memory access");
        // Write-allocate install; store misses are absorbed by the store
        // buffer and are not useful off-chip accesses (paper §2.1). With
        // a finite buffer (the paper's future-work store-MLP study) each
        // off-chip fill occupies an entry until it returns.
        if self.hierarchy.store(m.addr).is_off_chip() {
            self.tracker.record_store_fill(exec);
            if self.store_buffer.is_some() {
                self.sb_occupancy += 1;
                *self.sb_releases.entry(exec + 1).or_insert(0) += 1;
            }
        }
        if let Some(cap) = self.store_buffer {
            if self.sb_occupancy > cap {
                let release = self
                    .sb_releases
                    .keys()
                    .copied()
                    .min()
                    .unwrap_or(self.e + 1)
                    .max(self.e + 1);
                self.tracker.note_block(self.e, Inhibitor::StoreBuffer);
                self.fetch_block = Some((release, Inhibitor::StoreBuffer));
            }
        }
        self.store_fwd.insert(m.addr & !7, exec);
        if self.wait_store_addr {
            let addr_ready = inst.srcs[0]
                .filter(|r| !r.is_zero())
                .map(|r| self.avail[r.index()])
                .unwrap_or(self.e)
                .max(self.e);
            self.store_addr_frontier = self.store_addr_frontier.max(addr_ready);
        }
        if self.loads_in_order {
            self.last_mem_exec = self.last_mem_exec.max(exec);
            if exec > self.e {
                self.last_mem_cause = Inhibitor::DepStore;
            }
        }
        self.push_entry(exec, exec);
    }

    fn admit_branch(&mut self, inst: &Inst, data: u64) {
        let mut exec = data;
        if self.branches_in_order {
            exec = exec.max(self.last_branch_exec);
        }
        self.last_branch_exec = exec;
        let mispredicted = self.branches.observe(inst);
        if mispredicted && exec > self.e {
            // Unresolvable misprediction: the processor runs down the
            // wrong path until the branch resolves.
            self.tracker.note_block(self.e, Inhibitor::MispredBr);
            self.fetch_block = Some((exec, Inhibitor::MispredBr));
        }
        self.push_entry(exec, exec);
    }
}
