//! Per-thread pool of per-run scratch containers.
//!
//! A sweep runs hundreds of simulations per worker thread, and each run
//! used to allocate (and re-grow) its epoch buffers and bookkeeping maps
//! from scratch. The pool hands the previous run's containers — cleared,
//! capacity intact — to the next run on the same thread, so steady-state
//! sweep points perform no scratch allocation at all. Correctness does
//! not depend on the pool: every container is cleared on `take`, and map
//! iteration order never reaches a report (closes accumulate
//! commutatively; the in-flight maps are only probed by key or pruned).

use super::EpochAcc;
use mlp_hash::FxHashMap;
use std::cell::Cell;
use std::collections::VecDeque;

/// The containers an epoch-engine run needs.
#[derive(Default)]
pub(crate) struct Scratch {
    pub window: VecDeque<u64>,
    /// Epoch-indexed ring of pending issue counts (out-of-order engine).
    pub issue_buckets: Vec<u32>,
    pub line_avail: FxHashMap<u64, u64>,
    pub store_fwd: FxHashMap<u64, u64>,
    pub sb_releases: FxHashMap<u64, usize>,
    /// The tracker's open-epoch accumulator ring.
    pub tracker_ring: Vec<EpochAcc>,
}

impl Scratch {
    fn clear(&mut self) {
        self.window.clear();
        self.issue_buckets.fill(0);
        self.line_avail.clear();
        self.store_fwd.clear();
        self.sb_releases.clear();
        self.tracker_ring.fill(EpochAcc::default());
    }
}

thread_local! {
    static POOL: Cell<Option<Scratch>> = const { Cell::new(None) };
}

/// This thread's pooled scratch (cleared), or fresh containers.
pub(crate) fn take() -> Scratch {
    match POOL.take() {
        Some(mut s) => {
            s.clear();
            s
        }
        None => Scratch::default(),
    }
}

/// Returns a run's containers to the pool for the next run.
pub(crate) fn put(s: Scratch) {
    POOL.set(Some(s));
}
