//! The in-order epoch engine (paper §3.3): stall-on-miss and stall-on-use
//! cores.
//!
//! In-order cores execute strictly in program order, so the epoch engine
//! is a single forward pass:
//!
//! * **stall-on-miss** stalls issue the moment a load misses — the miss
//!   starts *and* ends its window, so only earlier prefetches and
//!   instruction-fetch misses can overlap it;
//! * **stall-on-use** stalls at the first *consumer* of a missing load's
//!   value, so independent later loads (and prefetches) between a miss and
//!   its use may overlap.

use super::{Branches, EpochTracker, MissKind, Values};
use crate::config::{InOrderPolicy, MlpsimConfig};
use crate::report::{Inhibitor, Report};
use mlp_hash::FxHashMap;
use mlp_isa::{line_of, OpKind, Reg, TraceSource};
use mlp_mem::Hierarchy;
use mlp_obs::{IntervalSampler, Value};
use mlp_predict::{BranchStats, ValuePrediction, ValueStats};

const PRUNE_LIMIT: usize = 8192;

pub(crate) fn run<T: TraceSource>(
    cfg: &MlpsimConfig,
    policy: InOrderPolicy,
    trace: &mut T,
    warmup: u64,
    measure: u64,
) -> Report {
    let mut hierarchy = Hierarchy::new(cfg.hierarchy);
    let mut branches = Branches::new(cfg.branch);
    let mut values = Values::new(cfg.value);
    let mut tracker = EpochTracker::new();
    tracker.measuring = warmup == 0;

    let mut e: u64 = 0;
    let mut avail = [0u64; Reg::COUNT];
    let mut line_avail: FxHashMap<u64, u64> = mlp_hash::map_with_capacity(1024);
    let mut insts: u64 = 0;
    let mut consumed: u64 = 0;
    let limit = warmup.saturating_add(measure);
    let mut branch_base = BranchStats::default();
    let mut value_base = ValueStats::default();
    // Stall-on-miss defers its epoch advance until after the *next*
    // instruction's fetch is classified: the front end keeps fetching
    // while the load stalls, so an instruction-fetch miss (or a just
    // fetched prefetch) can overlap the data miss (paper §3.3).
    let mut pending_stall = false;
    let mut sampler = IntervalSampler::armed("mlpsim.sample");

    // Advance the epoch counter to `to`, closing finished epochs.
    macro_rules! advance_to {
        ($to:expr) => {{
            let to: u64 = $to;
            if to > e {
                e = to;
                tracker.close_before(e);
                if sampler.as_ref().is_some_and(|s| s.due(insts)) {
                    let (epochs, offchip) = tracker.totals();
                    if let Some(s) = sampler.as_mut() {
                        s.record(
                            insts,
                            &[
                                ("epochs", Value::U64(epochs)),
                                ("offchip", Value::U64(offchip)),
                            ],
                        );
                    }
                }
            }
        }};
    }

    while consumed < limit {
        let Some(inst) = trace.next_inst() else { break };
        consumed += 1;
        if consumed == warmup + 1 && !tracker.measuring {
            tracker.measuring = true;
            hierarchy.reset_stats();
            branch_base = branches.stats();
            value_base = values.stats();
        }
        if tracker.measuring {
            insts += 1;
            tracker.note_inst();
        }

        // Instruction fetch is blocking: a missing fetch overlaps what is
        // already outstanding, then ends the window.
        if !cfg.perfect_ifetch && hierarchy.ifetch(inst.pc).is_off_chip() {
            let first = !tracker.has_miss(e);
            tracker.record_miss(e, MissKind::Imiss);
            tracker.note_block(
                e,
                if first {
                    Inhibitor::ImissStart
                } else {
                    Inhibitor::ImissEnd
                },
            );
            advance_to!(e + 1);
            pending_stall = false;
        }
        if pending_stall {
            pending_stall = false;
            advance_to!(e + 1);
        }

        let dep_ready = inst
            .dep_srcs()
            .map(|r| avail[r.index()])
            .max()
            .unwrap_or(0)
            .max(e);

        match inst.kind {
            OpKind::Alu | OpKind::Nop => {
                // In-order issue: an instruction consuming a pending value
                // stalls the pipeline (this *is* the stall-on-use event).
                if dep_ready > e {
                    tracker.note_block(e, Inhibitor::MissingLoad);
                    advance_to!(dep_ready);
                }
                if let Some(r) = inst.dep_dst() {
                    avail[r.index()] = e;
                }
            }
            OpKind::Load | OpKind::Atomic => {
                let serializing = inst.kind == OpKind::Atomic && cfg.issue.serializing();
                if serializing && tracker.has_miss(e) {
                    // Drain: outstanding misses of this epoch complete.
                    tracker.note_block(e, Inhibitor::Serialize);
                    advance_to!(e + 1);
                }
                if dep_ready > e {
                    tracker.note_block(e, Inhibitor::MissingLoad);
                    advance_to!(dep_ready);
                }
                let m = inst.mem.expect("loads carry a memory access");
                let line = line_of(m.addr);
                let in_flight = line_avail.get(&line).copied().unwrap_or(0) > e;
                let missed = !in_flight && hierarchy.load(m.addr).is_off_chip();
                if missed {
                    tracker.record_miss(e, MissKind::Dmiss);
                    line_avail.insert(line, e + 1);
                }
                let predicted = missed
                    && inst.kind == OpKind::Load
                    && matches!(
                        values.observe(inst.pc, inst.value),
                        Some(ValuePrediction::Correct)
                    );
                match policy {
                    InOrderPolicy::StallOnMiss => {
                        if missed || in_flight {
                            tracker.note_block(e, Inhibitor::MissingLoad);
                            pending_stall = true;
                        }
                        if let Some(r) = inst.dep_dst() {
                            avail[r.index()] = e + (missed || in_flight) as u64;
                        }
                    }
                    InOrderPolicy::StallOnUse => {
                        let ready = if in_flight {
                            line_avail[&line]
                        } else if missed && !predicted {
                            e + 1
                        } else {
                            e
                        };
                        if let Some(r) = inst.dep_dst() {
                            avail[r.index()] = ready;
                        }
                    }
                }
                if serializing {
                    // Nothing younger issues until the atomic completes.
                    if missed {
                        tracker.note_block(e, Inhibitor::Serialize);
                        advance_to!(e + 1);
                    }
                    if let Some(r) = inst.dep_dst() {
                        avail[r.index()] = e;
                    }
                }
            }
            OpKind::Store => {
                if dep_ready > e {
                    tracker.note_block(e, Inhibitor::MissingLoad);
                    advance_to!(dep_ready);
                }
                let m = inst.mem.expect("stores carry a memory access");
                // Write-allocate; fills tracked for the store-MLP metric.
                if hierarchy.store(m.addr).is_off_chip() {
                    tracker.record_store_fill(e);
                }
            }
            OpKind::Prefetch => {
                if dep_ready > e {
                    tracker.note_block(e, Inhibitor::MissingLoad);
                    advance_to!(dep_ready);
                }
                if let Some(m) = inst.mem {
                    let line = line_of(m.addr);
                    let in_flight = line_avail.get(&line).copied().unwrap_or(0) > e;
                    if !in_flight && hierarchy.prefetch(m.addr).is_off_chip() {
                        tracker.record_miss(e, MissKind::Pmiss);
                        line_avail.insert(line, e + 1);
                    }
                }
            }
            OpKind::Membar => {
                if cfg.issue.serializing() && tracker.has_miss(e) {
                    tracker.note_block(e, Inhibitor::Serialize);
                    advance_to!(e + 1);
                }
            }
            OpKind::Branch(_) => {
                let mispredicted = branches.observe(&inst);
                if dep_ready > e {
                    // The branch cannot issue until its condition is
                    // ready; a misprediction additionally means the front
                    // end runs the wrong path until then.
                    tracker.note_block(
                        e,
                        if mispredicted {
                            Inhibitor::MispredBr
                        } else {
                            Inhibitor::MissingLoad
                        },
                    );
                    advance_to!(dep_ready);
                }
            }
        }

        if line_avail.len() > PRUNE_LIMIT {
            line_avail.retain(|_, &mut av| av > e);
        }
    }

    tracker.close_all();
    if sampler.is_some() {
        let (epochs, offchip) = tracker.totals();
        if let Some(s) = sampler.as_mut() {
            s.finish(
                insts,
                &[
                    ("epochs", Value::U64(epochs)),
                    ("offchip", Value::U64(offchip)),
                ],
            );
        }
    }
    let b = branches.stats();
    let v = values.stats();
    let report = tracker.into_report(
        insts,
        BranchStats {
            branches: b.branches - branch_base.branches,
            mispredicts: b.mispredicts - branch_base.mispredicts,
        },
        ValueStats {
            correct: v.correct - value_base.correct,
            wrong: v.wrong - value_base.wrong,
            no_predict: v.no_predict - value_base.no_predict,
        },
    );
    crate::obs::flush_run(&report);
    hierarchy.flush_obs();
    report
}
