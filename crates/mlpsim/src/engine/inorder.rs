//! The in-order epoch engine (paper §3.3): stall-on-miss and stall-on-use
//! cores.
//!
//! In-order cores execute strictly in program order, so the epoch engine
//! is a single forward pass over the trace columns:
//!
//! * **stall-on-miss** stalls issue the moment a load misses — the miss
//!   starts *and* ends its window, so only earlier prefetches and
//!   instruction-fetch misses can overlap it;
//! * **stall-on-use** stalls at the first *consumer* of a missing load's
//!   value, so independent later loads (and prefetches) between a miss and
//!   its use may overlap.

use super::{scratch, Branches, EpochTracker, MissKind, Values};
use crate::config::{InOrderPolicy, MlpsimConfig};
use crate::report::{Inhibitor, Report};
use mlp_hash::FxHashMap;
use mlp_isa::{
    line_of, InstSource, AVAIL_SLOTS, CLASS_ALU, CLASS_ATOMIC, CLASS_LOAD, CLASS_MEMBAR, CLASS_NOP,
    CLASS_PREFETCH, CLASS_STORE,
};
use mlp_mem::Hierarchy;
use mlp_obs::{IntervalSampler, Value};
use mlp_predict::{BranchStats, ValuePrediction, ValueStats};

const PRUNE_LIMIT: usize = 8192;

pub(crate) fn run<S: InstSource>(
    cfg: &MlpsimConfig,
    policy: InOrderPolicy,
    src: &mut S,
    warmup: u64,
    measure: u64,
) -> Report {
    let mut hierarchy = Hierarchy::new(cfg.hierarchy);
    let mut branches = Branches::new(cfg.branch);
    let mut values = Values::new(cfg.value);
    let pool = scratch::take();
    let mut tracker = EpochTracker::with_scratch(pool.tracker_ring);
    tracker.measuring = warmup == 0;

    let mut e: u64 = 0;
    let mut avail = [0u64; AVAIL_SLOTS];
    let mut line_avail: FxHashMap<u64, u64> = pool.line_avail;
    let mut insts: u64 = 0;
    let mut consumed: u64 = 0;
    let mut next: usize = 0;
    let limit = warmup.saturating_add(measure);
    let mut branch_base = BranchStats::default();
    let mut value_base = ValueStats::default();
    // Stall-on-miss defers its epoch advance until after the *next*
    // instruction's fetch is classified: the front end keeps fetching
    // while the load stalls, so an instruction-fetch miss (or a just
    // fetched prefetch) can overlap the data miss (paper §3.3).
    let mut pending_stall = false;
    let mut sampler = IntervalSampler::armed("mlpsim.sample");
    let serializing_cfg = cfg.issue.serializing();

    // Advance the epoch counter to `to`, closing finished epochs.
    macro_rules! advance_to {
        ($to:expr) => {{
            let to: u64 = $to;
            if to > e {
                e = to;
                tracker.close_before(e);
                if sampler.as_ref().is_some_and(|s| s.due(insts)) {
                    let (epochs, offchip) = tracker.totals();
                    if let Some(s) = sampler.as_mut() {
                        s.record(
                            insts,
                            &[
                                ("epochs", Value::U64(epochs)),
                                ("offchip", Value::U64(offchip)),
                            ],
                        );
                    }
                }
            }
        }};
    }

    while consumed < limit {
        // Strictly in-order: nothing below the next instruction is ever
        // re-read, so a streaming source may evict it.
        src.release(next);
        if src.available() <= next && src.ensure(next + 1) <= next {
            break;
        }
        // Column slot of `next` (streaming sources offset their columns
        // by `base()`; stable for the rest of the iteration since no
        // further ensure/release happens before the reads).
        let idx = next - src.base();
        next += 1;
        consumed += 1;
        if consumed == warmup + 1 && !tracker.measuring {
            tracker.measuring = true;
            hierarchy.reset_stats();
            branch_base = branches.stats();
            value_base = values.stats();
        }
        if tracker.measuring {
            insts += 1;
            tracker.note_inst();
        }

        // Instruction fetch is blocking: a missing fetch overlaps what is
        // already outstanding, then ends the window.
        if !cfg.perfect_ifetch && hierarchy.ifetch(src.soa().pc()[idx]).is_off_chip() {
            let first = !tracker.has_miss(e);
            tracker.record_miss(e, MissKind::Imiss);
            tracker.note_block(
                e,
                if first {
                    Inhibitor::ImissStart
                } else {
                    Inhibitor::ImissEnd
                },
            );
            advance_to!(e + 1);
            pending_stall = false;
        }
        if pending_stall {
            pending_stall = false;
            advance_to!(e + 1);
        }

        let [d0, d1, d2] = src.soa().dep_srcs()[idx];
        let dep_ready = avail[d0 as usize]
            .max(avail[d1 as usize])
            .max(avail[d2 as usize])
            .max(e);
        let dst = src.soa().dep_dst()[idx] as usize;
        let class = src.soa().class()[idx];

        match class {
            CLASS_ALU | CLASS_NOP => {
                // In-order issue: an instruction consuming a pending value
                // stalls the pipeline (this *is* the stall-on-use event).
                if dep_ready > e {
                    tracker.note_block(e, Inhibitor::MissingLoad);
                    advance_to!(dep_ready);
                }
                avail[dst] = e;
            }
            CLASS_LOAD | CLASS_ATOMIC => {
                let serializing = class == CLASS_ATOMIC && serializing_cfg;
                if serializing && tracker.has_miss(e) {
                    // Drain: outstanding misses of this epoch complete.
                    tracker.note_block(e, Inhibitor::Serialize);
                    advance_to!(e + 1);
                }
                if dep_ready > e {
                    tracker.note_block(e, Inhibitor::MissingLoad);
                    advance_to!(dep_ready);
                }
                debug_assert!(src.soa().has_mem(idx), "loads carry a memory access");
                let addr = src.soa().addr()[idx];
                let line = line_of(addr);
                let in_flight = line_avail.get(&line).copied().unwrap_or(0) > e;
                let missed = !in_flight && hierarchy.load(addr).is_off_chip();
                if missed {
                    tracker.record_miss(e, MissKind::Dmiss);
                    line_avail.insert(line, e + 1);
                }
                let predicted = missed
                    && class == CLASS_LOAD
                    && matches!(
                        values.observe(src.soa().pc()[idx], src.soa().value()[idx]),
                        Some(ValuePrediction::Correct)
                    );
                match policy {
                    InOrderPolicy::StallOnMiss => {
                        if missed || in_flight {
                            tracker.note_block(e, Inhibitor::MissingLoad);
                            pending_stall = true;
                        }
                        avail[dst] = e + (missed || in_flight) as u64;
                    }
                    InOrderPolicy::StallOnUse => {
                        let ready = if in_flight {
                            line_avail[&line]
                        } else if missed && !predicted {
                            e + 1
                        } else {
                            e
                        };
                        avail[dst] = ready;
                    }
                }
                if serializing {
                    // Nothing younger issues until the atomic completes.
                    if missed {
                        tracker.note_block(e, Inhibitor::Serialize);
                        advance_to!(e + 1);
                    }
                    avail[dst] = e;
                }
            }
            CLASS_STORE => {
                if dep_ready > e {
                    tracker.note_block(e, Inhibitor::MissingLoad);
                    advance_to!(dep_ready);
                }
                debug_assert!(src.soa().has_mem(idx), "stores carry a memory access");
                // Write-allocate; fills tracked for the store-MLP metric.
                if hierarchy.store(src.soa().addr()[idx]).is_off_chip() {
                    tracker.record_store_fill(e);
                }
            }
            CLASS_PREFETCH => {
                if dep_ready > e {
                    tracker.note_block(e, Inhibitor::MissingLoad);
                    advance_to!(dep_ready);
                }
                if src.soa().has_mem(idx) {
                    let addr = src.soa().addr()[idx];
                    let line = line_of(addr);
                    let in_flight = line_avail.get(&line).copied().unwrap_or(0) > e;
                    if !in_flight && hierarchy.prefetch(addr).is_off_chip() {
                        tracker.record_miss(e, MissKind::Pmiss);
                        line_avail.insert(line, e + 1);
                    }
                }
            }
            CLASS_MEMBAR => {
                if serializing_cfg && tracker.has_miss(e) {
                    tracker.note_block(e, Inhibitor::Serialize);
                    advance_to!(e + 1);
                }
            }
            _ => {
                // The four branch classes.
                let info = src
                    .soa()
                    .branch_info(idx)
                    .expect("branch classes carry branch info");
                let mispredicted = branches.observe_branch(src.soa().pc()[idx], info);
                if dep_ready > e {
                    // The branch cannot issue until its condition is
                    // ready; a misprediction additionally means the front
                    // end runs the wrong path until then.
                    tracker.note_block(
                        e,
                        if mispredicted {
                            Inhibitor::MispredBr
                        } else {
                            Inhibitor::MissingLoad
                        },
                    );
                    advance_to!(dep_ready);
                }
            }
        }

        if line_avail.len() > PRUNE_LIMIT {
            line_avail.retain(|_, &mut av| av > e);
        }
    }

    tracker.close_all();
    if sampler.is_some() {
        let (epochs, offchip) = tracker.totals();
        if let Some(s) = sampler.as_mut() {
            s.finish(
                insts,
                &[
                    ("epochs", Value::U64(epochs)),
                    ("offchip", Value::U64(offchip)),
                ],
            );
        }
    }
    let b = branches.stats();
    let v = values.stats();
    // Recycle the drained scratch before the tracker is consumed.
    let tracker_ring = std::mem::take(&mut tracker.ring);
    let report = tracker.into_report(
        insts,
        BranchStats {
            branches: b.branches - branch_base.branches,
            mispredicts: b.mispredicts - branch_base.mispredicts,
        },
        ValueStats {
            correct: v.correct - value_base.correct,
            wrong: v.wrong - value_base.wrong,
            no_predict: v.no_predict - value_base.no_predict,
        },
    );
    scratch::put(scratch::Scratch {
        window: pool.window,
        issue_buckets: pool.issue_buckets,
        store_fwd: pool.store_fwd,
        sb_releases: pool.sb_releases,
        line_avail,
        tracker_ring,
    });
    crate::obs::flush_run(&report);
    hierarchy.flush_obs();
    report
}
