//! MLPsim: the epoch-model memory-level-parallelism simulator.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Chou, Fahs & Abraham, *Microarchitecture Optimizations for Exploiting
//! Memory-Level Parallelism*, ISCA 2004): a trace-driven simulator that
//! partitions the dynamic instruction stream into **epoch sets** and
//! reports the achievable MLP under a given set of microarchitecture
//! choices.
//!
//! # The epoch model
//!
//! When off-chip latencies dwarf on-chip latencies, execution separates
//! into recurring *epochs*: a stretch of on-chip computation followed by
//! one or more overlapped off-chip accesses, all of which are assumed to
//! issue and complete together. MLP is then simply
//!
//! ```text
//! MLP = (useful off-chip accesses) / (number of epochs)
//! ```
//!
//! Which accesses can share an epoch is decided by *window termination
//! conditions* — issue-window/ROB capacity, serializing instructions,
//! instruction-fetch misses, unresolvable mispredicted branches — and by
//! the load/branch issue policies ([`IssueConfig`] A–E, Table 2 of the
//! paper). [`Simulator`] implements all of them, plus in-order
//! stall-on-miss / stall-on-use cores, **runahead execution** and
//! missing-load **value prediction**, and the perfect-I/BP/VP limit modes.
//!
//! MLPsim needs *no timing model at all*: no instruction latencies, fetch
//! bandwidth, or function units — which is exactly what makes it small,
//! fast and easy to validate (the paper's Table 3; this workspace's
//! `mlp-cyclesim` plays the validation role).
//!
//! # Examples
//!
//! Five independent missing loads overlap perfectly in one epoch (the
//! builder enables perfect instruction fetch so the cold micro-trace code
//! lines don't add I-misses):
//!
//! ```
//! use mlpsim::{MlpsimConfig, Simulator};
//! use mlp_workloads::micro;
//!
//! let trace = micro::independent_misses(5, 2);
//! let mut sim = Simulator::new(MlpsimConfig::builder().perfect_ifetch(true).build());
//! let report = sim.run(&mut mlp_isa::SliceTrace::new(&trace), 0, u64::MAX);
//! assert_eq!(report.offchip.total(), 5);
//! assert_eq!(report.epochs, 1);
//! assert_eq!(report.mlp(), 5.0);
//! ```
//!
//! A pointer chase cannot overlap at all:
//!
//! ```
//! use mlpsim::{MlpsimConfig, Simulator};
//! use mlp_workloads::micro;
//!
//! let trace = micro::pointer_chase(6, 1);
//! let mut sim = Simulator::new(MlpsimConfig::builder().perfect_ifetch(true).build());
//! let report = sim.run(&mut mlp_isa::SliceTrace::new(&trace), 0, u64::MAX);
//! assert_eq!(report.mlp(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod obs;
mod report;

pub use config::{
    BranchMode, InOrderPolicy, IssueConfig, MlpsimConfig, MlpsimConfigBuilder, ValueMode,
    WindowModel,
};
pub use engine::Simulator;
pub use report::{Inhibitor, InhibitorCounts, OffchipCounts, Report};
