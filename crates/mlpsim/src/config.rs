use mlp_mem::HierarchyConfig;
use mlp_predict::BranchPredictorConfig;
use std::fmt;

/// The paper's Table 2: progressively aggressive issue-constraint
/// configurations.
///
/// | Config | Load issue (w.r.t. other loads/stores) | Branch issue | Serializing |
/// |--------|----------------------------------------|--------------|-------------|
/// | A      | in order                               | in order     | serializing |
/// | B      | out of order, wait for store addresses | in order     | serializing |
/// | C      | out of order, speculate past stores    | in order     | serializing |
/// | D      | out of order, speculate past stores    | out of order | serializing |
/// | E      | out of order, speculate past stores    | out of order | non-serializing |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IssueConfig {
    A,
    B,
    C,
    D,
    E,
}

impl IssueConfig {
    /// All five configurations in increasing aggressiveness.
    pub const ALL: [IssueConfig; 5] = [
        IssueConfig::A,
        IssueConfig::B,
        IssueConfig::C,
        IssueConfig::D,
        IssueConfig::E,
    ];

    /// Loads (and stores) issue in program order among memory operations.
    pub fn loads_in_order(self) -> bool {
        self == IssueConfig::A
    }

    /// Loads wait for all earlier store addresses to resolve.
    pub fn loads_wait_store_addresses(self) -> bool {
        self == IssueConfig::B
    }

    /// Branches resolve in program order with respect to other branches.
    pub fn branches_in_order(self) -> bool {
        matches!(self, IssueConfig::A | IssueConfig::B | IssueConfig::C)
    }

    /// Serializing instructions drain the pipeline.
    pub fn serializing(self) -> bool {
        self != IssueConfig::E
    }

    /// Single-letter label used in the paper's tables ("A".."E").
    pub fn letter(self) -> &'static str {
        match self {
            IssueConfig::A => "A",
            IssueConfig::B => "B",
            IssueConfig::C => "C",
            IssueConfig::D => "D",
            IssueConfig::E => "E",
        }
    }
}

impl fmt::Display for IssueConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.letter())
    }
}

/// Stall policy of an in-order core (paper §3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InOrderPolicy {
    /// Issue stalls as soon as a load misses the cache.
    StallOnMiss,
    /// Issue stalls only when a missing load's data is first used.
    StallOnUse,
}

/// The processor window organization being modelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowModel {
    /// An out-of-order core with the given issue-window and reorder-buffer
    /// capacities (the paper decouples them in §5.3.2) and fetch-buffer
    /// depth.
    OutOfOrder {
        /// Issue-window (scheduler) entries; holds *unissued* instructions.
        iw: usize,
        /// Reorder-buffer entries; holds all in-flight instructions.
        rob: usize,
        /// Fetch-buffer entries: how far instruction fetch may probe ahead
        /// of a full window (this is what lets an I-miss overlap a full
        /// window).
        fetch_buffer: usize,
    },
    /// An in-order core.
    InOrder(InOrderPolicy),
    /// Runahead execution (§3.5): on an L2 miss the core checkpoints and
    /// speculatively runs ahead up to `max_dist` instructions, converting
    /// misses to prefetches and ignoring serializing semantics. As the
    /// paper observes (§5.4.1), this behaves like an effectively unbounded
    /// window.
    Runahead {
        /// Maximum runahead distance in instructions.
        max_dist: usize,
    },
}

impl WindowModel {
    /// The paper's default: 64-entry issue window, 64-entry ROB, 32-entry
    /// fetch buffer.
    pub fn default_ooo() -> WindowModel {
        WindowModel::OutOfOrder {
            iw: 64,
            rob: 64,
            fetch_buffer: 32,
        }
    }
}

/// Branch-prediction modelling mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchMode {
    /// The realistic gshare + BTB + RAS stack.
    Real(BranchPredictorConfig),
    /// Perfect branch prediction (the limit study's `perfBP`).
    Perfect,
}

impl Default for BranchMode {
    fn default() -> BranchMode {
        BranchMode::Real(BranchPredictorConfig::default())
    }
}

/// Value-prediction modelling mode for missing loads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValueMode {
    /// No value prediction.
    #[default]
    None,
    /// A tagged last-value predictor with the given entry count
    /// (the paper uses 16K entries).
    LastValue(usize),
    /// A stride (reference-prediction-table) predictor with the given
    /// entry count — an extension beyond the paper's last-value scheme.
    Stride(usize),
    /// A hybrid last-value + stride predictor with per-PC chooser
    /// counters, after the paper's reference \[18\].
    Hybrid(usize),
    /// Perfect value prediction (the limit study's `perfVP`).
    Perfect,
}

/// Complete configuration of an MLPsim run.
///
/// The default matches the paper's default processor configuration
/// (§5.1): issue configuration C, 64-entry issue window and ROB, 32-entry
/// fetch buffer, the default hierarchy and predictors, no value
/// prediction.
///
/// # Examples
///
/// ```
/// use mlpsim::{IssueConfig, MlpsimConfig, WindowModel};
///
/// let cfg = MlpsimConfig::builder()
///     .issue(IssueConfig::D)
///     .window(WindowModel::OutOfOrder { iw: 64, rob: 256, fetch_buffer: 32 })
///     .build();
/// assert_eq!(cfg.issue, IssueConfig::D);
/// ```
#[derive(Clone, Debug)]
pub struct MlpsimConfig {
    /// Issue-constraint configuration (Table 2).
    pub issue: IssueConfig,
    /// Window organization.
    pub window: WindowModel,
    /// On-chip cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Branch prediction mode.
    pub branch: BranchMode,
    /// Value prediction mode.
    pub value: ValueMode,
    /// Perfect instruction prefetching: no instruction fetch ever leaves
    /// the chip (the limit study's `perfI`).
    pub perfect_ifetch: bool,
    /// Store-buffer entries for outstanding off-chip store fills, or
    /// `None` for the paper's infinite-store-buffer assumption (§3).
    /// A finite buffer is the paper's future-work "store MLP" study: a
    /// full buffer stalls dispatch until a fill returns.
    pub store_buffer: Option<usize>,
}

impl Default for MlpsimConfig {
    fn default() -> MlpsimConfig {
        MlpsimConfig {
            issue: IssueConfig::C,
            window: WindowModel::default_ooo(),
            hierarchy: HierarchyConfig::default(),
            branch: BranchMode::default(),
            value: ValueMode::None,
            perfect_ifetch: false,
            store_buffer: None,
        }
    }
}

impl MlpsimConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> MlpsimConfigBuilder {
        MlpsimConfigBuilder {
            config: MlpsimConfig::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a window capacity is zero.
    pub fn validate(&self) {
        match self.window {
            WindowModel::OutOfOrder { iw, rob, .. } => {
                assert!(iw > 0, "issue window must be non-empty");
                assert!(rob > 0, "reorder buffer must be non-empty");
                assert!(
                    rob >= iw,
                    "ROB smaller than the issue window is not meaningful"
                );
            }
            WindowModel::Runahead { max_dist } => {
                assert!(max_dist > 0, "runahead distance must be non-zero");
            }
            WindowModel::InOrder(_) => {}
        }
        if let Some(sb) = self.store_buffer {
            assert!(sb > 0, "store buffer must have at least one entry");
        }
    }
}

/// Builder for [`MlpsimConfig`].
#[derive(Clone, Debug)]
pub struct MlpsimConfigBuilder {
    config: MlpsimConfig,
}

impl MlpsimConfigBuilder {
    /// Sets the issue-constraint configuration.
    #[must_use]
    pub fn issue(mut self, issue: IssueConfig) -> Self {
        self.config.issue = issue;
        self
    }

    /// Sets the window organization.
    #[must_use]
    pub fn window(mut self, window: WindowModel) -> Self {
        self.config.window = window;
        self
    }

    /// Sets an out-of-order window with equal issue-window and ROB sizes
    /// (the coupled configuration of the paper's §5.3.1).
    #[must_use]
    pub fn coupled_window(mut self, size: usize) -> Self {
        self.config.window = WindowModel::OutOfOrder {
            iw: size,
            rob: size,
            fetch_buffer: 32,
        };
        self
    }

    /// Sets the hierarchy configuration.
    #[must_use]
    pub fn hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.config.hierarchy = hierarchy;
        self
    }

    /// Sets the branch-prediction mode.
    #[must_use]
    pub fn branch(mut self, branch: BranchMode) -> Self {
        self.config.branch = branch;
        self
    }

    /// Sets the value-prediction mode.
    #[must_use]
    pub fn value(mut self, value: ValueMode) -> Self {
        self.config.value = value;
        self
    }

    /// Enables or disables perfect instruction prefetching.
    #[must_use]
    pub fn perfect_ifetch(mut self, on: bool) -> Self {
        self.config.perfect_ifetch = on;
        self
    }

    /// Bounds the store buffer (extension; `None` = the paper's infinite
    /// store buffer).
    #[must_use]
    pub fn store_buffer(mut self, entries: Option<usize>) -> Self {
        self.config.store_buffer = entries;
        self
    }

    /// Finishes, validating the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MlpsimConfig::validate`].
    pub fn build(self) -> MlpsimConfig {
        self.config.validate();
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_policies() {
        use IssueConfig::*;
        assert!(A.loads_in_order());
        assert!(!B.loads_in_order());
        assert!(B.loads_wait_store_addresses());
        assert!(!C.loads_wait_store_addresses());
        for c in [A, B, C] {
            assert!(c.branches_in_order(), "{c} branches should be in order");
        }
        for c in [D, E] {
            assert!(!c.branches_in_order());
        }
        for c in [A, B, C, D] {
            assert!(c.serializing());
        }
        assert!(!E.serializing());
    }

    #[test]
    fn default_matches_paper_section_5_1() {
        let cfg = MlpsimConfig::default();
        assert_eq!(cfg.issue, IssueConfig::C);
        assert_eq!(
            cfg.window,
            WindowModel::OutOfOrder {
                iw: 64,
                rob: 64,
                fetch_buffer: 32
            }
        );
        assert_eq!(cfg.value, ValueMode::None);
        assert!(!cfg.perfect_ifetch);
    }

    #[test]
    fn builder_round_trip() {
        let cfg = MlpsimConfig::builder()
            .issue(IssueConfig::E)
            .coupled_window(128)
            .value(ValueMode::LastValue(16 * 1024))
            .perfect_ifetch(true)
            .build();
        assert_eq!(cfg.issue, IssueConfig::E);
        assert!(cfg.perfect_ifetch);
        assert_eq!(cfg.value, ValueMode::LastValue(16 * 1024));
        match cfg.window {
            WindowModel::OutOfOrder { iw, rob, .. } => {
                assert_eq!((iw, rob), (128, 128));
            }
            other => panic!("unexpected window {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "ROB smaller")]
    fn rob_smaller_than_iw_rejected() {
        MlpsimConfig::builder()
            .window(WindowModel::OutOfOrder {
                iw: 64,
                rob: 32,
                fetch_buffer: 32,
            })
            .build();
    }

    #[test]
    fn letters_match_display() {
        for c in IssueConfig::ALL {
            assert_eq!(format!("{c}"), c.letter());
        }
    }
}
