//! Property-based tests of epoch-model invariants on random (but
//! structurally valid) micro traces.

use mlp_isa::SliceTrace;
use mlp_workloads::micro;
use mlpsim::{IssueConfig, MlpsimConfig, Report, Simulator, WindowModel};
use proptest::prelude::*;

fn run(cfg: MlpsimConfig, trace: &[mlp_isa::Inst]) -> Report {
    Simulator::new(cfg).run(&mut SliceTrace::new(trace), 0, u64::MAX)
}

fn ooo(issue: IssueConfig, iw: usize, rob: usize) -> MlpsimConfig {
    MlpsimConfig::builder()
        .issue(issue)
        .window(WindowModel::OutOfOrder {
            iw,
            rob,
            fetch_buffer: 32,
        })
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mlp_is_at_least_one(seed in any::<u64>(), len in 10usize..400) {
        let t = micro::random_trace(seed, len);
        let r = run(MlpsimConfig::default(), &t);
        prop_assert!(r.mlp() >= 1.0);
        prop_assert!(r.epochs <= r.offchip.total());
    }

    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), len in 10usize..300) {
        let t = micro::random_trace(seed, len);
        let a = run(MlpsimConfig::default(), &t);
        let b = run(MlpsimConfig::default(), &t);
        prop_assert_eq!(a.offchip, b.offchip);
        prop_assert_eq!(a.epochs, b.epochs);
        prop_assert_eq!(a.insts, b.insts);
    }

    #[test]
    fn every_instruction_is_processed(seed in any::<u64>(), len in 1usize..300) {
        let t = micro::random_trace(seed, len);
        let r = run(MlpsimConfig::default(), &t);
        prop_assert_eq!(r.insts, len as u64);
    }

    #[test]
    fn runahead_equals_infinite_window(seed in any::<u64>(), len in 10usize..300) {
        // The paper's observation (§5.4.1): RAE behaves exactly like an
        // unbounded window with non-serializing semantics. Our engines
        // make this an exact identity.
        let t = micro::random_trace(seed, len);
        let rae = run(
            MlpsimConfig::builder()
                .issue(IssueConfig::E)
                .window(WindowModel::Runahead { max_dist: 2048 })
                .build(),
            &t,
        );
        let inf = run(ooo(IssueConfig::E, 2048, 2048), &t);
        prop_assert_eq!(rae.offchip, inf.offchip);
        prop_assert_eq!(rae.epochs, inf.epochs);
    }

    #[test]
    fn aggressiveness_is_monotone(seed in any::<u64>(), len in 20usize..300) {
        // Relaxing issue constraints never loses much MLP. (Exact
        // monotonicity can be violated by tiny epoch-boundary artifacts,
        // so allow a small tolerance.)
        let t = micro::random_trace(seed, len);
        let a = run(ooo(IssueConfig::A, 64, 64), &t).mlp();
        let c = run(ooo(IssueConfig::C, 64, 64), &t).mlp();
        let e = run(ooo(IssueConfig::E, 64, 64), &t).mlp();
        prop_assert!(c >= 0.8 * a - 0.05, "C {c} vs A {a}");
        prop_assert!(e >= 0.8 * c - 0.05, "E {e} vs C {c}");
    }

    #[test]
    fn larger_rob_never_loses_much(seed in any::<u64>(), len in 20usize..300) {
        let t = micro::random_trace(seed, len);
        // MLP is a ratio of misses to epochs: a larger window can
        // re-partition the same misses into a shape with slightly lower
        // average (e.g. {3,3,3} -> {5,2,2,1}), so the bound is relative.
        let small = run(ooo(IssueConfig::C, 32, 32), &t).mlp();
        let large = run(ooo(IssueConfig::C, 32, 256), &t).mlp();
        prop_assert!(large >= 0.7 * small - 0.05, "large {large} vs small {small}");
    }

    #[test]
    fn perfect_ifetch_removes_all_imisses(seed in any::<u64>(), len in 10usize..300) {
        let t = micro::random_trace(seed, len);
        let r = run(
            MlpsimConfig::builder().perfect_ifetch(true).build(),
            &t,
        );
        prop_assert_eq!(r.offchip.imiss, 0);
    }

    #[test]
    fn offchip_total_bounded_by_memory_instructions(seed in any::<u64>(), len in 10usize..300) {
        let t = micro::random_trace(seed, len);
        let mem_insts = t
            .iter()
            .filter(|i| i.kind.reads_memory() || i.kind == mlp_isa::OpKind::Prefetch)
            .count() as u64;
        let code_lines = {
            let mut lines: Vec<u64> = t.iter().map(|i| mlp_isa::line_of(i.pc)).collect();
            lines.sort_unstable();
            lines.dedup();
            lines.len() as u64
        };
        let r = run(MlpsimConfig::default(), &t);
        prop_assert!(r.offchip.dmiss + r.offchip.pmiss <= mem_insts);
        prop_assert!(r.offchip.imiss <= code_lines);
    }

    #[test]
    fn inhibitor_counts_cover_all_epochs(seed in any::<u64>(), len in 10usize..300) {
        let t = micro::random_trace(seed, len);
        let r = run(MlpsimConfig::default(), &t);
        prop_assert_eq!(r.inhibitors.total(), r.epochs);
    }

    #[test]
    fn histogram_accounts_every_epoch_and_miss(seed in any::<u64>(), len in 10usize..300) {
        let t = micro::random_trace(seed, len);
        let r = run(MlpsimConfig::default(), &t);
        let epochs: u64 = r.epoch_size_histogram.iter().sum();
        prop_assert_eq!(epochs, r.epochs);
        let misses: u64 = r
            .epoch_size_histogram
            .iter()
            .enumerate()
            .map(|(sz, &n)| sz as u64 * n)
            .sum();
        // The last bucket saturates, so the weighted sum is a lower bound.
        prop_assert!(misses <= r.offchip.total());
        if r.epoch_size_histogram.last() == Some(&0) {
            prop_assert_eq!(misses, r.offchip.total());
        }
    }
}
