//! Tests of the finite-store-buffer extension (the paper's future-work
//! "store MLP" study).

use mlp_isa::{Inst, Reg, SliceTrace};
use mlp_workloads::micro;
use mlpsim::{MlpsimConfig, Simulator};

/// `n` independent missing stores, `gap` fillers apart.
fn store_burst(n: usize, gap: usize) -> Vec<Inst> {
    let mut v = Vec::new();
    let mut pc = micro::PC_BASE;
    for k in 0..n {
        v.push(Inst::store(
            pc,
            Reg::int(1),
            0,
            Reg::int(2),
            micro::COLD_BASE + (k as u64) * 4096,
        ));
        pc += 4;
        for _ in 0..gap {
            v.push(micro::filler(&mut pc));
        }
    }
    v
}

fn run(cfg: MlpsimConfig, trace: &[Inst]) -> mlpsim::Report {
    let max_pc = trace.iter().map(|i| i.pc).max().unwrap_or(micro::PC_BASE);
    let mut full: Vec<Inst> = (micro::PC_BASE..=max_pc)
        .step_by(4)
        .map(Inst::nop)
        .collect();
    let warm = full.len() as u64;
    full.extend_from_slice(trace);
    Simulator::new(cfg).run(&mut SliceTrace::new(&full), warm, u64::MAX)
}

#[test]
fn store_fills_are_counted_but_not_useful_accesses() {
    let t = store_burst(6, 2);
    let r = run(MlpsimConfig::default(), &t);
    assert_eq!(r.store_fills, 6);
    assert_eq!(r.offchip.total(), 0, "store fills are not useful accesses");
}

#[test]
fn infinite_buffer_overlaps_all_fills() {
    let t = store_burst(8, 2);
    let r = run(MlpsimConfig::default(), &t);
    assert_eq!(r.store_fill_epochs, 1, "all fills share one epoch");
    assert!((r.store_mlp() - 8.0).abs() < 1e-9);
}

#[test]
fn single_entry_buffer_serializes_fills() {
    let t = store_burst(8, 2);
    let r = run(MlpsimConfig::builder().store_buffer(Some(1)).build(), &t);
    assert_eq!(r.store_fills, 8);
    assert!(
        r.store_mlp() < 2.5,
        "a 1-entry buffer cannot overlap fills freely (store MLP {:.2})",
        r.store_mlp()
    );
    assert!(
        r.store_fill_epochs >= 4,
        "fills must spread across epochs ({} epochs)",
        r.store_fill_epochs
    );
}

#[test]
fn buffer_size_sweep_is_monotone() {
    let t = store_burst(12, 2);
    let mut last = 0.0;
    for cap in [1usize, 2, 4, 8, 16] {
        let r = run(MlpsimConfig::builder().store_buffer(Some(cap)).build(), &t);
        assert!(
            r.store_mlp() >= last - 0.3,
            "store MLP should grow with buffer size (cap {cap}: {:.2} after {last:.2})",
            r.store_mlp()
        );
        last = r.store_mlp();
    }
}

#[test]
fn full_store_buffer_limits_load_mlp_too() {
    // Stores interleaved with independent missing loads: a tiny buffer
    // stalls dispatch and drags down load overlap as well.
    let mut t = Vec::new();
    let mut pc = micro::PC_BASE;
    for k in 0..6u64 {
        t.push(Inst::store(
            pc,
            Reg::int(1),
            0,
            Reg::int(2),
            micro::COLD_BASE + k * 4096,
        ));
        pc += 4;
        t.push(Inst::load(
            pc,
            Reg::int(1),
            0,
            Reg::int(8),
            micro::COLD_BASE + (100 + k) * 4096,
        ));
        pc += 4;
    }
    let unlimited = run(MlpsimConfig::default(), &t);
    let tiny = run(MlpsimConfig::builder().store_buffer(Some(1)).build(), &t);
    assert!(
        tiny.mlp() < unlimited.mlp(),
        "tiny buffer {:.2} vs unlimited {:.2}",
        tiny.mlp(),
        unlimited.mlp()
    );
}

#[test]
fn paper_default_is_unlimited() {
    let cfg = MlpsimConfig::default();
    assert_eq!(cfg.store_buffer, None);
}

#[test]
#[should_panic(expected = "at least one entry")]
fn zero_entry_buffer_rejected() {
    MlpsimConfig::builder().store_buffer(Some(0)).build();
}
