//! The paper's worked Examples 1–5 (Section 3) encoded as ground-truth
//! tests of the epoch engine, plus structural invariants on micro traces.

use mlp_isa::{Inst, SliceTrace};
use mlp_workloads::micro;
use mlpsim::{
    BranchMode, InOrderPolicy, IssueConfig, MlpsimConfig, Simulator, ValueMode, WindowModel,
};

/// Runs a micro trace with a warm-code prefix: `prefix_nops` no-ops on the
/// micro PC line so the example's own fetches hit (the paper's examples
/// assume warm instruction lines except where an I-miss is the point).
fn run_with_warm_code(cfg: MlpsimConfig, trace: &[Inst]) -> mlpsim::Report {
    // Touch every hot code line the trace will fetch so instruction fetch
    // hits (addresses at or above 0x8000_0000 are deliberately cold, e.g.
    // Example 3's I-miss).
    let max_hot_pc = trace
        .iter()
        .map(|i| i.pc)
        .filter(|&pc| pc < 0x8000_0000)
        .max()
        .unwrap_or(micro::PC_BASE);
    let mut full: Vec<Inst> = (micro::PC_BASE..=max_hot_pc)
        .step_by(4)
        .map(Inst::nop)
        .collect();
    let warm = full.len() as u64;
    full.extend_from_slice(trace);
    Simulator::new(cfg).run(&mut SliceTrace::new(&full), warm, u64::MAX)
}

fn ooo(issue: IssueConfig, iw: usize, rob: usize) -> MlpsimConfig {
    MlpsimConfig::builder()
        .issue(issue)
        .window(WindowModel::OutOfOrder {
            iw,
            rob,
            fetch_buffer: 32,
        })
        .build()
}

#[test]
fn paper_example_1_window_of_four() {
    // Epoch sets {i1, i4}, {i2, i3, i5}: 3 misses, 2 epochs, MLP 1.5.
    let r = run_with_warm_code(ooo(IssueConfig::C, 4, 4), &micro::paper_example_1());
    assert_eq!(r.offchip.total(), 3, "{r}");
    assert_eq!(r.epochs, 2, "{r}");
    assert!((r.mlp() - 1.5).abs() < 1e-9, "{r}");
}

#[test]
fn paper_example_1_large_window_overlaps_i5() {
    // With a large window i5 joins epoch 1: {i1, i4, i5}, {i2, i3}.
    let r = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &micro::paper_example_1());
    assert_eq!(r.offchip.total(), 3);
    assert_eq!(r.epochs, 2);
    // histogram: one epoch with 2 misses, one with 1
    assert_eq!(r.epoch_size_histogram[2], 1);
    assert_eq!(r.epoch_size_histogram[1], 1);
}

#[test]
fn paper_example_2_serializing_membar() {
    // Config C serializes: epoch sets {i1, i2}, {i3, i4, i5}: MLP 1.5.
    let r = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &micro::paper_example_2());
    assert_eq!(r.offchip.total(), 3, "{r}");
    assert_eq!(r.epochs, 2, "{r}");
    assert!((r.mlp() - 1.5).abs() < 1e-9);
    assert_eq!(r.inhibitors.serialize, 1, "first epoch ended by the membar");
}

#[test]
fn paper_example_2_config_e_ignores_membar() {
    // Non-serializing (config E): i5 overlaps i1; i4 still waits for i1's
    // data. Epochs {i1, i5}, {i4}: MLP 1.5 with a different shape.
    let r = run_with_warm_code(ooo(IssueConfig::E, 64, 64), &micro::paper_example_2());
    assert_eq!(r.offchip.total(), 3);
    assert_eq!(r.epochs, 2);
    assert_eq!(r.inhibitors.serialize, 0);
    assert_eq!(r.epoch_size_histogram[2], 1);
}

#[test]
fn paper_example_3_imiss_and_unresolvable_branch() {
    // Epoch sets {i1, i2-fetch}, {i2, i3}, {i4, i5}: 4 off-chip accesses
    // (i1 D, i2 I, i3 D, i5 D) over 3 epochs: MLP 1.333.
    let r = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &micro::paper_example_3());
    assert_eq!(r.offchip.dmiss, 3, "{r}");
    assert_eq!(r.offchip.imiss, 1, "{r}");
    assert_eq!(r.epochs, 3, "{r}");
    assert!((r.mlp() - 4.0 / 3.0).abs() < 1e-9);
    assert_eq!(r.inhibitors.mispred_br, 1, "i4 terminates the second epoch");
}

#[test]
fn paper_example_4_load_issue_policies() {
    // Policy 1 (A): {i1}, {i2, i3}, {i4, i5} — MLP 4/3.
    let a = run_with_warm_code(ooo(IssueConfig::A, 64, 64), &micro::paper_example_4());
    assert_eq!(a.offchip.total(), 4);
    assert_eq!(a.epochs, 3);
    assert!(
        a.inhibitors.missing_load >= 1,
        "config A: in-order loads inhibit MLP: {:?}",
        a.inhibitors
    );

    // Policy 2 (B): {i1, i3}, {i2}, {i4, i5} — MLP 4/3, inhibited by the
    // dependent store's unresolved address.
    let b = run_with_warm_code(ooo(IssueConfig::B, 64, 64), &micro::paper_example_4());
    assert_eq!(b.offchip.total(), 4);
    assert_eq!(b.epochs, 3);
    assert_eq!(b.inhibitors.missing_load, 0);
    assert!(
        b.inhibitors.dep_store >= 1,
        "config B: store-address wait inhibits MLP: {:?}",
        b.inhibitors
    );

    // Policy 3 (C): {i1, i3, i5}, {i2}, {i4} — MLP 4/2 (i4 is a store and
    // produces no counted access).
    let c = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &micro::paper_example_4());
    assert_eq!(c.offchip.total(), 4);
    assert_eq!(c.epochs, 2);
    assert!((c.mlp() - 2.0).abs() < 1e-9);
}

#[test]
fn paper_example_5_branch_issue_policies() {
    // Policy 1 (in-order branches, config C): i3 cannot resolve behind i2,
    // so i4 is lost to the wrong path: {i1}, {i2, i3, i4} — MLP 1.
    let c = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &micro::paper_example_5());
    assert_eq!(c.offchip.total(), 2, "{c}");
    assert_eq!(c.epochs, 2, "{c}");
    assert!((c.mlp() - 1.0).abs() < 1e-9);
    assert_eq!(c.inhibitors.mispred_br, 1);

    // Policy 2 (out-of-order branches, config D): i3 resolves immediately
    // and i4 overlaps i1: {i1, i3, i4}, {i2} — MLP 2.
    let d = run_with_warm_code(ooo(IssueConfig::D, 64, 64), &micro::paper_example_5());
    assert_eq!(d.offchip.total(), 2, "{d}");
    assert_eq!(d.epochs, 1, "{d}");
    assert!((d.mlp() - 2.0).abs() < 1e-9);
}

#[test]
fn independent_misses_fully_overlap() {
    for n in [2, 5, 8] {
        let t = micro::independent_misses(n, 2);
        let r = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &t);
        assert_eq!(r.offchip.total(), n as u64);
        assert_eq!(r.epochs, 1, "all {n} independent misses share one epoch");
    }
}

#[test]
fn pointer_chase_has_mlp_one() {
    for cfg in [
        ooo(IssueConfig::C, 64, 64),
        ooo(IssueConfig::E, 2048, 2048),
        MlpsimConfig::builder()
            .window(WindowModel::Runahead { max_dist: 2048 })
            .issue(IssueConfig::D)
            .build(),
    ] {
        let t = micro::pointer_chase(6, 1);
        let r = run_with_warm_code(cfg, &t);
        assert_eq!(r.offchip.total(), 6);
        assert_eq!(r.epochs, 6, "a dependence chain cannot overlap");
        assert!((r.mlp() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn serialized_misses_mlp_one_unless_config_e() {
    let t = micro::serialized_misses(5);
    let c = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &t);
    assert_eq!(c.epochs, 5);
    assert!((c.mlp() - 1.0).abs() < 1e-9);

    let e = run_with_warm_code(ooo(IssueConfig::E, 64, 64), &t);
    assert_eq!(e.epochs, 1, "config E ignores membars");
    assert!((e.mlp() - 5.0).abs() < 1e-9);

    // Runahead also speculates past serializing instructions (§3.5).
    let rae = run_with_warm_code(
        MlpsimConfig::builder()
            .window(WindowModel::Runahead { max_dist: 2048 })
            .build(),
        &t,
    );
    assert_eq!(rae.epochs, 1);
}

#[test]
fn window_size_bounds_overlap() {
    // 10 independent misses, 3 instructions apart; a window of 6 holds
    // two misses at a time (the trigger plus one more).
    let t = micro::independent_misses(10, 2);
    let small = run_with_warm_code(ooo(IssueConfig::C, 6, 6), &t);
    assert_eq!(small.offchip.total(), 10);
    assert_eq!(small.epochs, 5);
    assert!((small.mlp() - 2.0).abs() < 1e-9);
    assert!(small.inhibitors.maxwin >= 4, "{:?}", small.inhibitors);
}

#[test]
fn decoupled_rob_beats_coupled_iw() {
    // Independent instructions execute and vacate the issue window but
    // stay in the ROB behind the unretired miss — so a larger ROB with the
    // same IW reaches the next miss while a coupled window cannot.
    // Build: miss; 20 independent ALUs; miss; 20 ALUs; ...
    let mut t = Vec::new();
    let mut pc = micro::PC_BASE;
    let r = mlp_isa::Reg::int;
    for k in 0..8u64 {
        t.push(Inst::load(pc, r(1), 0, r(8), micro::COLD_BASE + k * 4096));
        pc += 4;
        for _ in 0..20 {
            t.push(Inst::alu(pc, &[r(2)], r(3))); // independent of the miss
            pc += 4;
        }
    }
    let coupled = run_with_warm_code(ooo(IssueConfig::C, 8, 8), &t);
    let decoupled = run_with_warm_code(ooo(IssueConfig::C, 8, 64), &t);
    assert!(
        decoupled.mlp() > coupled.mlp(),
        "decoupled {:.3} vs coupled {:.3}",
        decoupled.mlp(),
        coupled.mlp()
    );
}

#[test]
fn value_prediction_breaks_chains() {
    // A pointer chase with perfectly predictable values: perfect VP lets
    // every miss issue in the first epoch.
    let t = micro::pointer_chase(5, 1);
    let none = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &t);
    assert_eq!(none.epochs, 5);
    let perfect = run_with_warm_code(
        MlpsimConfig::builder()
            .issue(IssueConfig::C)
            .coupled_window(64)
            .value(ValueMode::Perfect)
            .build(),
        &t,
    );
    assert_eq!(perfect.offchip.total(), 5);
    assert_eq!(perfect.epochs, 1, "perfect VP collapses the chain");
    assert_eq!(perfect.value_stats.correct, 5);
}

#[test]
fn perfect_ifetch_removes_imisses() {
    let r = run_with_warm_code(
        MlpsimConfig::builder().perfect_ifetch(true).build(),
        &micro::paper_example_3(),
    );
    assert_eq!(r.offchip.imiss, 0);
}

#[test]
fn in_order_stall_on_miss_vs_use() {
    // miss A; filler; miss B (independent): stall-on-miss serializes them,
    // stall-on-use overlaps them (no use between).
    let t = micro::independent_misses(4, 2);
    let som = run_with_warm_code(
        MlpsimConfig::builder()
            .window(WindowModel::InOrder(InOrderPolicy::StallOnMiss))
            .build(),
        &t,
    );
    assert_eq!(som.offchip.total(), 4);
    assert_eq!(som.epochs, 4);
    assert!((som.mlp() - 1.0).abs() < 1e-9);

    let sou = run_with_warm_code(
        MlpsimConfig::builder()
            .window(WindowModel::InOrder(InOrderPolicy::StallOnUse))
            .build(),
        &t,
    );
    assert_eq!(sou.offchip.total(), 4);
    assert_eq!(sou.epochs, 1, "no intervening uses: all four overlap");
}

#[test]
fn in_order_stall_on_use_stops_at_consumer() {
    // load A -> r8 ; use r8 ; load B: the use forces B into a new epoch.
    let r = mlp_isa::Reg::int;
    let t = vec![
        Inst::load(micro::PC_BASE, r(1), 0, r(8), micro::COLD_BASE),
        Inst::alu(micro::PC_BASE + 4, &[r(8)], r(9)),
        Inst::load(micro::PC_BASE + 8, r(1), 0, r(10), micro::COLD_BASE + 4096),
    ];
    let sou = run_with_warm_code(
        MlpsimConfig::builder()
            .window(WindowModel::InOrder(InOrderPolicy::StallOnUse))
            .build(),
        &t,
    );
    assert_eq!(sou.epochs, 2);
}

#[test]
fn in_order_prefetches_overlap() {
    // Three prefetches then a missing load: all four share the epoch even
    // on a stall-on-miss core (the paper's §3.3).
    let r = mlp_isa::Reg::int;
    let mut t = Vec::new();
    for k in 0..3u64 {
        t.push(Inst::prefetch(
            micro::PC_BASE + k * 4,
            r(1),
            micro::COLD_BASE + (k + 1) * 4096,
        ));
    }
    t.push(Inst::load(
        micro::PC_BASE + 12,
        r(1),
        0,
        r(8),
        micro::COLD_BASE,
    ));
    let som = run_with_warm_code(
        MlpsimConfig::builder()
            .window(WindowModel::InOrder(InOrderPolicy::StallOnMiss))
            .build(),
        &t,
    );
    assert_eq!(som.offchip.pmiss, 3);
    assert_eq!(som.offchip.dmiss, 1);
    assert_eq!(som.epochs, 1);
    assert!((som.mlp() - 4.0).abs() < 1e-9);
}

#[test]
fn store_forwarding_suppresses_miss() {
    // store to X (cold); load from X: the load forwards and is NOT an
    // off-chip access.
    let r = mlp_isa::Reg::int;
    let t = vec![
        Inst::store(micro::PC_BASE, r(1), 0, r(2), micro::COLD_BASE),
        Inst::load(micro::PC_BASE + 4, r(1), 0, r(8), micro::COLD_BASE),
    ];
    let rep = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &t);
    assert_eq!(rep.offchip.total(), 0);
}

#[test]
fn same_line_misses_merge() {
    // Two loads to the same cold line in one epoch: one off-chip access.
    let r = mlp_isa::Reg::int;
    let t = vec![
        Inst::load(micro::PC_BASE, r(1), 0, r(8), micro::COLD_BASE),
        Inst::load(micro::PC_BASE + 4, r(1), 8, r(9), micro::COLD_BASE),
    ];
    let rep = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &t);
    assert_eq!(rep.offchip.total(), 1);
    assert_eq!(rep.epochs, 1);
}

#[test]
fn branch_stats_are_reported() {
    let r = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &micro::paper_example_5());
    assert_eq!(r.branch_stats.branches, 2);
    assert_eq!(r.branch_stats.mispredicts, 1);
}

#[test]
fn perfect_branch_mode_removes_unresolvable_terminations() {
    let r = run_with_warm_code(
        MlpsimConfig::builder()
            .issue(IssueConfig::C)
            .coupled_window(64)
            .branch(BranchMode::Perfect)
            .build(),
        &micro::paper_example_5(),
    );
    // With perfect prediction i4 overlaps i1 even under in-order branches.
    assert_eq!(r.epochs, 1, "{r}");
    assert_eq!(r.branch_stats.mispredicts, 0);
}

#[test]
fn fetch_buffer_lets_imiss_overlap_full_window() {
    // Trigger load, then enough fillers to fill a tiny ROB, then an
    // instruction on a cold line: with a deep fetch buffer the I-line
    // fetch overlaps the data miss (Imiss in the same epoch); with a
    // 1-entry fetch buffer it cannot.
    let r = mlp_isa::Reg::int;
    let mut t = vec![Inst::load(micro::PC_BASE, r(1), 0, r(8), micro::COLD_BASE)];
    let mut pc = micro::PC_BASE + 4;
    for _ in 0..8 {
        t.push(micro::filler(&mut pc));
    }
    t.push(Inst::nop(0x9000_0000)); // cold I-line
    t.push(Inst::load(
        0x9000_0004,
        r(1),
        0,
        r(9),
        micro::COLD_BASE + 4096,
    ));

    let mk = |fb: usize| {
        MlpsimConfig::builder()
            .issue(IssueConfig::C)
            .window(WindowModel::OutOfOrder {
                iw: 4,
                rob: 4,
                fetch_buffer: fb,
            })
            .build()
    };
    let deep = run_with_warm_code(mk(32), &t);
    assert_eq!(deep.offchip.imiss, 1);
    // The I-miss shares the trigger's epoch thanks to fetch-ahead.
    assert!(
        deep.epoch_size_histogram[2] >= 1,
        "deep fetch buffer: I-miss overlaps the data miss: {:?}",
        deep.epoch_size_histogram
    );

    let shallow = run_with_warm_code(mk(1), &t);
    assert_eq!(shallow.offchip.imiss, 1);
    assert!(
        shallow.epochs > deep.epochs
            || shallow.epoch_size_histogram[1] > deep.epoch_size_histogram[1],
        "1-entry fetch buffer cannot overlap the I-miss (deep {:?} vs shallow {:?})",
        deep.epoch_size_histogram,
        shallow.epoch_size_histogram
    );
}

#[test]
fn missing_casa_serializes_and_counts() {
    // A CASA that itself misses: serializing *and* an off-chip access.
    let r = mlp_isa::Reg::int;
    let t = vec![
        Inst::load(micro::PC_BASE, r(1), 0, r(8), micro::COLD_BASE),
        Inst::casa(
            micro::PC_BASE + 4,
            r(2),
            r(3),
            r(4),
            r(7),
            micro::COLD_BASE + 4096,
        ),
        Inst::load(micro::PC_BASE + 8, r(1), 0, r(9), micro::COLD_BASE + 8192),
    ];
    let c = run_with_warm_code(ooo(IssueConfig::C, 64, 64), &t);
    // Three off-chip reads. The drain separates the CASA from the first
    // load; once the CASA *issues*, younger instructions fetch again, so
    // the final load overlaps the CASA's own miss:
    // epochs {A}, {CASA, B}.
    assert_eq!(c.offchip.dmiss, 3);
    assert_eq!(c.epochs, 2, "{c}");
    assert_eq!(c.inhibitors.serialize, 1, "{:?}", c.inhibitors);

    let e = run_with_warm_code(ooo(IssueConfig::E, 64, 64), &t);
    assert_eq!(e.offchip.dmiss, 3);
    assert_eq!(e.epochs, 1, "config E: all three overlap ({e})");
}

#[test]
fn value_mode_stride_and_hybrid_run() {
    use mlpsim::ValueMode;
    let t = micro::pointer_chase(5, 1);
    for mode in [ValueMode::Stride(1024), ValueMode::Hybrid(1024)] {
        let cfg = MlpsimConfig {
            value: mode,
            ..MlpsimConfig::builder().perfect_ifetch(true).build()
        };
        let r = run_with_warm_code(cfg, &t);
        assert_eq!(r.offchip.total(), 5);
        assert_eq!(
            r.value_stats.total(),
            5,
            "every miss consults the predictor"
        );
    }
}
