//! The `mlp-surrogate.report/v1` document.
//!
//! `mlp-experiments --surrogate <dir>` trains a surrogate from the
//! report corpus in `<dir>` and writes this document next to it:
//! provenance (corpus size, tolerance contract), the cross-validation
//! verdict, and one entry per grid point with the predicted CPI, the
//! ensemble uncertainty, and whether that point's value was simulated
//! (appears in the corpus) or predicted. Serialization follows the
//! workspace report conventions — insertion-ordered keys, shortest
//! round-trip floats, trailing newline — so the document is
//! byte-deterministic.

use crate::features::ConfigPoint;
use crate::{CvStats, Surrogate, TOL_MEDIAN_PCT, TOL_P99_PCT};
use std::fmt::Write as _;

/// Schema tag stamped into every surrogate report.
pub const SCHEMA: &str = "mlp-surrogate.report/v1";

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// Renders the surrogate report for `grid`, marking the corpus-labeled
/// points (`simulated`, carrying their measured CPI) apart from the
/// purely predicted rest. `simulated` maps grid index → measured CPI.
pub fn render(
    surrogate: &Surrogate,
    grid: &[ConfigPoint],
    simulated: &[(usize, f64)],
    cv: &CvStats,
    corpus_rows: usize,
) -> String {
    let mut measured = vec![None; grid.len()];
    for &(i, y) in simulated {
        if let Some(slot) = measured.get_mut(i) {
            *slot = Some(y);
        }
    }
    let mut out = String::new();
    out.push_str("{\n  \"schema\": ");
    write_json_str(&mut out, SCHEMA);
    let _ = write!(
        out,
        ",\n  \"corpus_rows\": {corpus_rows},\n  \"grid_points\": {},\n  \"simulated_points\": {},",
        grid.len(),
        simulated.len()
    );
    let _ = write!(
        out,
        "\n  \"tolerance\": {{\"median_pct\": {TOL_MEDIAN_PCT}, \"p99_pct\": {TOL_P99_PCT}}},"
    );
    out.push_str("\n  \"cv\": {\"n\": ");
    let _ = write!(out, "{}", cv.n);
    out.push_str(", \"median_pct\": ");
    write_num(&mut out, cv.median_pct);
    out.push_str(", \"p99_pct\": ");
    write_num(&mut out, cv.p99_pct);
    out.push_str(", \"worst_pct\": ");
    write_num(&mut out, cv.worst_pct);
    let _ = write!(out, ", \"within_tolerance\": {}}},", cv.within_tolerance());
    out.push_str("\n  \"points\": [");
    for (i, p) in grid.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"benchmark\": ");
        write_json_str(&mut out, p.workload_name());
        let _ = write!(
            out,
            ", \"window\": {}, \"mshrs\": {}, \"latency\": {}, \"l2_kb\": {}",
            p.window, p.mshrs, p.latency, p.l2_kb
        );
        out.push_str(", \"predicted_cpi\": ");
        write_num(&mut out, surrogate.predict(p));
        out.push_str(", \"uncertainty_pct\": ");
        write_num(&mut out, surrogate.uncertainty_pct(p));
        match measured[i] {
            Some(y) => {
                out.push_str(", \"source\": \"simulated\", \"cpi\": ");
                write_num(&mut out, y);
            }
            None => out.push_str(", \"source\": \"predicted\""),
        }
        out.push('}');
    }
    if !grid.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::{default_priors, kfold_cv, DEFAULT_LAMBDA};

    fn tiny() -> (Vec<ConfigPoint>, Vec<f64>) {
        let grid: Vec<ConfigPoint> = (0..8)
            .map(|i| ConfigPoint {
                workload: i % 3,
                window: 16 << (i % 3),
                mshrs: 1 + i as u32,
                latency: 200 + 100 * i as u32,
                l2_kb: 1024,
            })
            .collect();
        let cpi: Vec<f64> = grid
            .iter()
            .map(|p| 1.5 + p.latency as f64 / 500.0)
            .collect();
        (grid, cpi)
    }

    #[test]
    fn report_is_schema_tagged_and_parseable() {
        let (grid, cpi) = tiny();
        let s = Surrogate::fit(&grid, &cpi, &default_priors());
        let cv = kfold_cv(&grid, &cpi, &default_priors(), 4, DEFAULT_LAMBDA);
        let simulated: Vec<(usize, f64)> = vec![(0, cpi[0]), (3, cpi[3])];
        let text = render(&s, &grid, &simulated, &cv, 2);
        assert!(text.starts_with("{\n  \"schema\": \"mlp-surrogate.report/v1\""));
        assert!(text.ends_with("}\n"));
        // Our own corpus parser accepts the document.
        let doc = corpus::parse(&text).expect("self-parseable");
        assert_eq!(
            doc.get("grid_points").and_then(corpus::Val::as_num),
            Some(grid.len() as f64)
        );
        let corpus::Val::Arr(points) = doc.get("points").expect("points") else {
            panic!("points not an array");
        };
        assert_eq!(points.len(), grid.len());
        assert_eq!(
            points[0].get("source").and_then(corpus::Val::as_str),
            Some("simulated")
        );
        assert_eq!(
            points[1].get("source").and_then(corpus::Val::as_str),
            Some("predicted")
        );
        assert!(points[0].get("cpi").is_some());
        assert!(points[1].get("cpi").is_none());
    }

    #[test]
    fn report_is_deterministic() {
        let (grid, cpi) = tiny();
        let s = Surrogate::fit(&grid, &cpi, &default_priors());
        let cv = kfold_cv(&grid, &cpi, &default_priors(), 4, DEFAULT_LAMBDA);
        let a = render(&s, &grid, &[(1, cpi[1])], &cv, 1);
        let b = render(&s, &grid, &[(1, cpi[1])], &cv, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_grid_is_valid() {
        let (grid, cpi) = tiny();
        let s = Surrogate::fit(&grid, &cpi, &default_priors());
        let cv = kfold_cv(&grid, &cpi, &default_priors(), 4, DEFAULT_LAMBDA);
        let text = render(&s, &[], &[], &cv, 0);
        assert!(corpus::parse(&text).is_some());
        assert!(text.contains("\"points\": []"));
    }
}
