//! Configuration points and their feature embedding.
//!
//! A [`ConfigPoint`] names one cell of the experiment design space: a
//! workload, a coupled window size, an MSHR count, an off-chip latency
//! and an L2 capacity — the axes the paper sweeps. [`features`] embeds a
//! point into the polynomial/interaction basis the ridge layer fits
//! residuals over; the physics carried by the §2.2 CPI equation lives in
//! the prior mean (see [`crate::WorkloadPrior`]), so the basis only has
//! to bend the residual surface, not reproduce the latency scaling from
//! scratch.

/// Number of modelled workloads (the paper's three server presets).
pub const NUM_WORKLOADS: usize = 3;

/// Canonical workload names, index-aligned with
/// [`ConfigPoint::workload`] and matching the `benchmark` field of the
/// experiment reports.
pub const WORKLOAD_NAMES: [&str; NUM_WORKLOADS] = ["Database", "SPECjbb2000", "SPECweb99"];

/// The workload index for a report's `benchmark` name, if known.
pub fn workload_index(name: &str) -> Option<usize> {
    WORKLOAD_NAMES.iter().position(|&n| n == name)
}

/// One point of the sweep-space grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigPoint {
    /// Workload index into [`WORKLOAD_NAMES`].
    pub workload: usize,
    /// Coupled issue-window/ROB size (instructions).
    pub window: u32,
    /// Miss-status-holding registers: outstanding off-chip accesses that
    /// can be in flight at once.
    pub mshrs: u32,
    /// Off-chip access latency in cycles.
    pub latency: u32,
    /// L2 capacity in KB.
    pub l2_kb: u32,
}

impl ConfigPoint {
    /// The workload's canonical name.
    ///
    /// # Panics
    ///
    /// Panics if the workload index is out of range.
    pub fn workload_name(&self) -> &'static str {
        WORKLOAD_NAMES[self.workload]
    }
}

/// Terms in the per-workload `(window, L2)` surface `g` (see
/// [`features`]).
pub const SURFACE_TERMS: usize = 12;

/// Features per workload block; the full basis is one block per
/// workload, gated by the workload one-hot.
pub const FEATURES_PER_WORKLOAD: usize = 6 * SURFACE_TERMS + 5;

/// Total dimensionality of the feature embedding.
pub const DIM: usize = NUM_WORKLOADS * FEATURES_PER_WORKLOAD;

/// Embeds a point into the residual basis.
///
/// The ridge layer fits the **log-space off-chip residual**
/// `t = ln(CPI_offchip / CPI_offchip_prior)` (see
/// [`crate::Surrogate`]), so the basis models `ln r(MSHRs, window, L2)`
/// — the serialization-adjusted miss intensity — and needs no latency
/// scaling: the truth is linear in latency, which cancels in the ratio.
///
/// Axes are log-normalized to roughly `[0, 1]` over the `sweep1000`
/// grid so the ridge penalty treats every direction comparably:
/// `lw = (log2 window − 4)/5`, `lc = (log2 L2_KB − 9)/3`,
/// `u = latency/1000 − 0.5`, `im = 1/MSHRs`. Each workload's
/// one-hot-gated block holds the `(window, L2)` surface
///
/// ```text
/// g = [1, lw, lw², lw³, lw⁴, lc, lc², lc³, lw·lc, lw·lc², lw²·lc, lw²·lc²]
/// ```
///
/// quartic in `lw` (the overlap curve saturates with window size and a
/// quadratic is too stiff over six octaves) and cubic in `lc` (the miss
/// rate cliffs between L2 levels; with four swept capacities a cubic
/// spans the axis exactly) — plus its `im` and `im²` crossings (the
/// smooth large-MSHR end of the serialization curve
/// `ln E[ceil(s/m)]/E[s]`), indicator-gated correction surfaces for MSHR
/// counts 1–4 where `ceil` is genuinely piecewise and no low-degree
/// polynomial in `im` fits (full surfaces for 1–3, linear for 4), and
/// two centered-latency terms that let the fit absorb any residual
/// latency dependence (zero for the analytic truth, a safety valve for
/// measured corpora).
///
/// # Panics
///
/// Panics if the workload index is out of range or a physical axis is
/// zero (a window, MSHR count, latency or cache without capacity is
/// meaningless everywhere in this workspace).
pub fn features(p: &ConfigPoint) -> Vec<f64> {
    assert!(p.workload < NUM_WORKLOADS, "workload index {}", p.workload);
    assert!(
        p.window > 0 && p.mshrs > 0 && p.latency > 0 && p.l2_kb > 0,
        "config axes must be positive: {p:?}"
    );
    let lw = ((p.window as f64).log2() - 4.0) / 5.0;
    let lc = ((p.l2_kb as f64).log2() - 9.0) / 3.0;
    let un = p.latency as f64 / 1000.0 - 0.5;
    let im = 1.0 / p.mshrs as f64;
    let g = [
        1.0,
        lw,
        lw * lw,
        lw * lw * lw,
        lw * lw * lw * lw,
        lc,
        lc * lc,
        lc * lc * lc,
        lw * lc,
        lw * lc * lc,
        lw * lw * lc,
        lw * lw * lc * lc,
    ];
    debug_assert_eq!(g.len(), SURFACE_TERMS);
    let d1 = if p.mshrs == 1 { 1.0 } else { 0.0 };
    let d2 = if p.mshrs == 2 { 1.0 } else { 0.0 };
    let d3 = if p.mshrs == 3 { 1.0 } else { 0.0 };
    let d4 = if p.mshrs == 4 { 1.0 } else { 0.0 };
    let mut phi = vec![0.0; DIM];
    let base = p.workload * FEATURES_PER_WORKLOAD;
    let s = SURFACE_TERMS;
    for (i, gi) in g.iter().enumerate() {
        phi[base + i] = *gi;
        phi[base + s + i] = im * gi;
        phi[base + 2 * s + i] = im * im * gi;
        phi[base + 3 * s + i] = d1 * gi;
        phi[base + 4 * s + i] = d2 * gi;
        phi[base + 5 * s + i] = d3 * gi;
    }
    phi[base + 6 * s] = d4;
    phi[base + 6 * s + 1] = d4 * lw;
    phi[base + 6 * s + 2] = d4 * lc;
    phi[base + 6 * s + 3] = un;
    phi[base + 6 * s + 4] = un * im;
    phi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> ConfigPoint {
        ConfigPoint {
            workload: 1,
            window: 64,
            mshrs: 8,
            latency: 500,
            l2_kb: 2048,
        }
    }

    #[test]
    fn names_round_trip() {
        for (i, name) in WORKLOAD_NAMES.iter().enumerate() {
            assert_eq!(workload_index(name), Some(i));
        }
        assert_eq!(workload_index("nope"), None);
        assert_eq!(point().workload_name(), "SPECjbb2000");
    }

    #[test]
    fn embedding_is_one_hot_blocked() {
        let phi = features(&point());
        assert_eq!(phi.len(), DIM);
        let block = |w: usize| &phi[w * FEATURES_PER_WORKLOAD..(w + 1) * FEATURES_PER_WORKLOAD];
        assert!(block(0).iter().all(|&v| v == 0.0));
        assert!(block(2).iter().all(|&v| v == 0.0));
        assert_eq!(block(1)[0], 1.0);
        assert!(block(1)[1..].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn embedding_is_deterministic() {
        assert_eq!(features(&point()), features(&point()));
    }

    #[test]
    #[should_panic(expected = "workload index")]
    fn out_of_range_workload_rejected() {
        features(&ConfigPoint {
            workload: 3,
            ..point()
        });
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_axis_rejected() {
        features(&ConfigPoint {
            mshrs: 0,
            ..point()
        });
    }
}
