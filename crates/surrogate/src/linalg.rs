//! Hand-rolled dense linear algebra for the surrogate: a Cholesky solve
//! and ridge regression on top of it. No external dependencies — the
//! systems here are tiny (tens of features), so a first-party solver is
//! cheaper than pulling in a linear-algebra crate, and it keeps every
//! floating-point operation deterministic and auditable.

/// Solves `A·x = b` for a symmetric positive-definite `A` (row-major
/// `n × n`) via Cholesky factorization (`A = L·Lᵀ`, then two triangular
/// substitutions). Returns `None` when `A` is not numerically SPD — a
/// pivot that is non-positive or non-finite — or when the dimensions
/// disagree; it never panics on hostile input.
pub fn cholesky_solve(a: &[f64], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    if a.len() != n.checked_mul(n)? {
        return None;
    }
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if !sum.is_finite() || sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution L·y = b …
    let mut x = b.to_vec();
    for i in 0..n {
        let mut acc = x[i];
        for k in 0..i {
            acc -= l[i * n + k] * x[k];
        }
        x[i] = acc / l[i * n + i];
    }
    // … then back substitution Lᵀ·β = y.
    for i in (0..n).rev() {
        let mut acc = x[i];
        for k in i + 1..n {
            acc -= l[k * n + i] * x[k];
        }
        x[i] = acc / l[i * n + i];
    }
    x.iter().all(|v| v.is_finite()).then_some(x)
}

/// Ridge regression: minimizes `‖X·β − y‖² + λ‖β‖²` by solving the
/// normal equations `(XᵀX + λI)·β = Xᵀy` with [`cholesky_solve`].
///
/// The solution is **total**: rows whose length disagrees with the
/// widest row, or that contain non-finite values, are dropped; `λ` is
/// floored at a small multiple of the Gram matrix's mean diagonal so the
/// system is SPD even for rank-deficient designs; and if the solve still
/// fails (e.g. every row was hostile) the zero vector comes back instead
/// of a panic.
pub fn ridge(rows: &[Vec<f64>], y: &[f64], lambda: f64) -> Vec<f64> {
    let p = rows.iter().map(Vec::len).max().unwrap_or(0);
    if p == 0 {
        return Vec::new();
    }
    let mut xtx = vec![0.0; p * p];
    let mut xty = vec![0.0; p];
    for (r, &yi) in rows.iter().zip(y) {
        if r.len() != p || !yi.is_finite() || r.iter().any(|v| !v.is_finite()) {
            continue;
        }
        for i in 0..p {
            xty[i] += r[i] * yi;
            for j in 0..=i {
                xtx[i * p + j] += r[i] * r[j];
            }
        }
    }
    for i in 0..p {
        for j in 0..i {
            xtx[j * p + i] = xtx[i * p + j];
        }
    }
    let trace: f64 = (0..p).map(|i| xtx[i * p + i]).sum();
    let floor = 1e-12 * (1.0 + trace.abs() / p as f64);
    let lam = if lambda.is_finite() && lambda > floor {
        lambda
    } else {
        floor
    };
    for i in 0..p {
        xtx[i * p + i] += lam;
    }
    cholesky_solve(&xtx, &xty).unwrap_or_else(|| vec![0.0; p])
}

/// Dot product of equal-length slices (shorter length wins, so a
/// truncated coefficient vector degrades instead of panicking).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, -4.0];
        assert_eq!(cholesky_solve(&a, &b), Some(vec![3.0, -4.0]));
    }

    #[test]
    fn solves_spd_system() {
        // A = [[4,2],[2,3]], x = [1,2] -> b = [8,8].
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let x = cholesky_solve(&a, &[8.0, 8.0]).expect("SPD");
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_spd() {
        assert_eq!(cholesky_solve(&[-1.0], &[1.0]), None);
        assert_eq!(cholesky_solve(&[0.0], &[1.0]), None);
        assert_eq!(cholesky_solve(&[f64::NAN], &[1.0]), None);
        // Dimension mismatch.
        assert_eq!(cholesky_solve(&[1.0, 2.0], &[1.0]), None);
    }

    #[test]
    fn ridge_recovers_exact_coefficients() {
        // Orthogonal design: the ridge bias at the tiny floor is ~1e-12.
        let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let beta = [2.5, -1.25];
        let y: Vec<f64> = rows.iter().map(|r| dot(r, &beta)).collect();
        let hat = ridge(&rows, &y, 0.0);
        assert!((hat[0] - beta[0]).abs() < 1e-9);
        assert!((hat[1] - beta[1]).abs() < 1e-9);
    }

    #[test]
    fn ridge_is_total_on_degenerate_designs() {
        // Rank-deficient: two identical columns still solve (λ floor).
        let rows = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let beta = ridge(&rows, &[1.0, 2.0], 0.0);
        assert!(beta.iter().all(|v| v.is_finite()));
        // Hostile rows (NaN, wrong width) are dropped, not fatal.
        let rows = vec![vec![f64::NAN, 1.0], vec![1.0], vec![1.0, 0.0]];
        let beta = ridge(&rows, &[1.0, 2.0, 3.0], 0.0);
        assert_eq!(beta.len(), 2);
        assert!(beta.iter().all(|v| v.is_finite()));
        // No rows at all.
        assert!(ridge(&[], &[], 0.0).is_empty());
    }
}
