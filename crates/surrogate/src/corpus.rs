//! Harvesting training data from recorded experiment reports.
//!
//! `mlp-experiments --json` leaves `mlp-experiments.report/v*` documents
//! on disk; this module reads them back into `(ConfigPoint, CPI)`
//! training pairs. Only rows that carry the full sweep coordinate —
//! `benchmark`, `window`, `mshrs`, `latency`, `l2_kb` — plus a `cpi`
//! value qualify (in practice, `sweep1000`'s simulated rows); rows from
//! other experiments are silently skipped, so pointing the trainer at a
//! mixed report directory is safe.
//!
//! The JSON reader is first-party (the workspace builds offline, and
//! `mlp-stats`' parser is unreachable from here without a dependency
//! cycle): a ~100-line recursive-descent parser, depth-limited and total
//! on hostile input.

use crate::features::{workload_index, ConfigPoint};

/// Maximum nesting depth the parser accepts; beyond this the document is
/// rejected rather than risking a stack overflow on hostile input.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Val>),
    /// An object, keys in document order.
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// Member lookup for objects (first match wins).
    pub fn get(&self, key: &str) -> Option<&Val> {
        match self {
            Val::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Val::Num(x) if x.is_finite() => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document. Returns `None` on any syntax error, trailing
/// garbage, or nesting deeper than [`MAX_DEPTH`] — never panics.
pub fn parse(text: &str) -> Option<Val> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    (pos == bytes.len()).then_some(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, want: u8) -> Option<()> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn value(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Val> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => object(bytes, pos, depth),
        b'[' => array(bytes, pos, depth),
        b'"' => Some(Val::Str(string(bytes, pos)?)),
        b't' => literal(bytes, pos, b"true", Val::Bool(true)),
        b'f' => literal(bytes, pos, b"false", Val::Bool(false)),
        b'n' => literal(bytes, pos, b"null", Val::Null),
        _ => number(bytes, pos),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, word: &[u8], v: Val) -> Option<Val> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Some(v)
    } else {
        None
    }
}

fn number(bytes: &[u8], pos: &mut usize) -> Option<Val> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Val::Num)
}

fn string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    eat(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            &c => {
                // Copy the full UTF-8 sequence starting at this byte.
                let s = std::str::from_utf8(&bytes[*pos..]).ok()?;
                let ch = s.chars().next()?;
                if (c as u32) < 0x20 {
                    return None;
                }
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Val> {
    eat(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Val::Arr(items));
    }
    loop {
        items.push(value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Val::Arr(items));
            }
            _ => return None,
        }
    }
}

fn object(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Val> {
    eat(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Val::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = string(bytes, pos)?;
        eat(bytes, pos, b':')?;
        members.push((key, value(bytes, pos, depth + 1)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Val::Obj(members));
            }
            _ => return None,
        }
    }
}

/// One training pair harvested from a report row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorpusRow {
    /// The sweep coordinate.
    pub point: ConfigPoint,
    /// Simulated CPI at that coordinate.
    pub cpi: f64,
}

fn axis_u32(row: &Val, key: &str) -> Option<u32> {
    let x = row.get(key)?.as_num()?;
    (x > 0.0 && x <= u32::MAX as f64 && x.fract() == 0.0).then_some(x as u32)
}

/// Extracts every qualifying training row from one report document.
/// Returns an empty vector for non-JSON input, reports without rows, or
/// reports whose rows lack the full sweep coordinate.
pub fn rows_from_report(text: &str) -> Vec<CorpusRow> {
    let Some(doc) = parse(text) else {
        return Vec::new();
    };
    let Some(Val::Arr(rows)) = doc.get("rows") else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|row| {
            let workload = workload_index(row.get("benchmark")?.as_str()?)?;
            let point = ConfigPoint {
                workload,
                window: axis_u32(row, "window")?,
                mshrs: axis_u32(row, "mshrs")?,
                latency: axis_u32(row, "latency")?,
                l2_kb: axis_u32(row, "l2_kb")?,
            };
            let cpi = row.get("cpi")?.as_num()?;
            (cpi > 0.0).then_some(CorpusRow { point, cpi })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null"), Some(Val::Null));
        assert_eq!(parse(" true "), Some(Val::Bool(true)));
        assert_eq!(parse("-1.5e2"), Some(Val::Num(-150.0)));
        assert_eq!(parse(r#""a\nbA""#), Some(Val::Str("a\nbA".into())));
        let v = parse(r#"{"a": [1, {"b": 2}], "c": {}}"#).expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| match a {
                Val::Arr(items) => items[1].get("b").and_then(Val::as_num),
                _ => None,
            }),
            Some(2.0)
        );
    }

    #[test]
    fn rejects_hostile_input() {
        assert_eq!(parse(""), None);
        assert_eq!(parse("{"), None);
        assert_eq!(parse("[1,]"), None);
        assert_eq!(parse("1 trailing"), None);
        assert_eq!(parse(&("[".repeat(100) + &"]".repeat(100))), None);
        assert_eq!(parse("{\"a\"}"), None);
    }

    #[test]
    fn harvests_only_full_coordinates() {
        let report = r#"{
          "schema": "mlp-experiments.report/v2",
          "rows": [
            {"source": "summary", "grid_points": 3888},
            {"benchmark": "Database", "window": 64, "mshrs": 4,
             "latency": 300, "l2_kb": 1024, "cpi": 2.25},
            {"benchmark": "Unknown", "window": 64, "mshrs": 4,
             "latency": 300, "l2_kb": 1024, "cpi": 2.25},
            {"benchmark": "SPECweb99", "window": 64, "mshrs": 4,
             "latency": 300, "cpi": 2.25},
            {"benchmark": "SPECjbb2000", "window": 64, "mshrs": 0,
             "latency": 300, "l2_kb": 1024, "cpi": 2.25}
          ]
        }"#;
        let rows = rows_from_report(report);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].point.workload, 0);
        assert_eq!(rows[0].point.window, 64);
        assert_eq!(rows[0].cpi, 2.25);
    }

    #[test]
    fn non_reports_yield_nothing() {
        assert!(rows_from_report("not json").is_empty());
        assert!(rows_from_report("{\"rows\": 3}").is_empty());
        assert!(rows_from_report("{}").is_empty());
    }
}
