//! `mlp-surrogate` — a physics-informed surrogate of the CPI response
//! surface over the experiment design space.
//!
//! Every point of a sweep grid normally costs a full simulation. This
//! crate fits the CPI surface from already-recorded runs instead, using
//! the paper's own §2.2 CPI equation (`mlp-model`) as the *mean
//! function* — the analytic prior carries the latency scaling and the
//! per-workload on-chip/off-chip split — and hand-rolled ridge
//! regression over a polynomial/interaction basis ([`features`]) to fit
//! the residuals. A jackknife ensemble provides a per-point uncertainty
//! estimate, which drives the active-sampling loop in [`active`]:
//! predict the whole grid, simulate only the most uncertain points,
//! refit, repeat until cross-validation meets the pinned tolerance.
//!
//! Everything is first-party and deterministic: the Cholesky solve in
//! [`linalg`] is the only linear algebra, training rows are canonically
//! ordered before any floating-point accumulation (so the fit is
//! invariant to input row order, bit for bit), and no randomness exists
//! anywhere in the crate.
//!
//! # Examples
//!
//! ```
//! use mlp_surrogate::{ConfigPoint, Surrogate, default_priors};
//!
//! let points = vec![
//!     ConfigPoint { workload: 0, window: 16, mshrs: 1, latency: 200, l2_kb: 512 },
//!     ConfigPoint { workload: 0, window: 64, mshrs: 8, latency: 1000, l2_kb: 4096 },
//! ];
//! let cpi = vec![2.6, 7.2];
//! let s = Surrogate::fit(&points, &cpi, &default_priors());
//! let pred = s.predict(&points[0]);
//! assert!(pred.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod corpus;
pub mod features;
pub mod linalg;
pub mod report;

pub use features::{features, workload_index, ConfigPoint, DIM, NUM_WORKLOADS, WORKLOAD_NAMES};

/// Pinned cross-validation tolerance: median relative CPI error on
/// held-out points must not exceed this (percent).
pub const TOL_MEDIAN_PCT: f64 = 5.0;

/// Pinned cross-validation tolerance: p99 relative CPI error on held-out
/// points must not exceed this (percent).
pub const TOL_P99_PCT: f64 = 15.0;

/// Default ridge penalty. The basis is normalized to O(1) per axis, so a
/// small absolute λ regularizes the rank-deficient directions without
/// visibly biasing the well-constrained ones.
pub const DEFAULT_LAMBDA: f64 = 1e-6;

/// Jackknife ensemble size used for the uncertainty estimate.
pub const ENSEMBLE: usize = 8;

/// Per-workload physics prior: the §2.2 CPI equation's ingredients,
/// evaluated as the surrogate's mean function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadPrior {
    /// On-chip CPI component, `CPI_perf·(1−Overlap_CM)`.
    pub cpi_on_chip: f64,
    /// Off-chip accesses per instruction.
    pub miss_rate: f64,
    /// Prior average MLP at the default configuration.
    pub mlp: f64,
}

impl WorkloadPrior {
    /// The prior mean CPI at `latency` cycles: the §2.2 equation with
    /// this workload's measured constants. MSHR/window/cache effects are
    /// left to the ridge residual; the prior's job is the dominant
    /// linear-in-latency off-chip term.
    pub fn mean_cpi(&self, latency: u32) -> f64 {
        let m = mlp_model::CpiModel {
            cpi_perf: self.cpi_on_chip,
            overlap_cm: 0.0,
            miss_rate: self.miss_rate,
            miss_penalty: latency as f64,
        };
        m.cpi(self.mlp)
    }

    /// The prior's off-chip CPI component at `latency` cycles,
    /// `MissRate·latency/MLP` — the denominator of the log-space
    /// residual the ridge layer fits. Floored at a tiny positive value
    /// so the ratio is always defined.
    pub fn off_chip_cpi(&self, latency: u32) -> f64 {
        (self.mean_cpi(latency) - self.cpi_on_chip).max(1e-12)
    }
}

/// Clamp for the fitted log-residual before exponentiation: keeps a
/// wildly extrapolated fold finite instead of predicting an infinite or
/// zero off-chip component.
const LOG_RESIDUAL_CLAMP: f64 = 20.0;

/// The log-space residual target for one training pair: how far the
/// observed off-chip CPI sits from the prior's, in log ratio. Fitting in
/// log space makes least squares minimize *relative* error — the metric
/// the tolerance contract is written in — and cancels the latency axis
/// exactly for responses linear in latency. The observed off-chip
/// component is floored at a tiny positive value so a measured CPI at or
/// below the prior's on-chip CPI still yields a finite target.
fn residual_target(prior: &WorkloadPrior, latency: u32, cpi: f64) -> f64 {
    ((cpi - prior.cpi_on_chip).max(1e-9) / prior.off_chip_cpi(latency)).ln()
}

/// Default priors for the three workloads, index-aligned with
/// [`WORKLOAD_NAMES`]: the quick-scale Table 1 calibration of this
/// workspace (on-chip CPI and miss rate measured there; MLP the
/// 1000-cycle column).
pub fn default_priors() -> [WorkloadPrior; NUM_WORKLOADS] {
    [
        WorkloadPrior {
            cpi_on_chip: 0.955935,
            miss_rate: 0.0091425,
            mlp: 1.3691337280871214,
        },
        WorkloadPrior {
            cpi_on_chip: 1.2251975,
            miss_rate: 0.00267,
            mlp: 1.087026219927389,
        },
        WorkloadPrior {
            cpi_on_chip: 1.1923925,
            miss_rate: 0.0011325,
            mlp: 1.3269281466943965,
        },
    ]
}

/// A fitted surrogate: prior mean plus ridge residual coefficients, and
/// a jackknife ensemble for uncertainty.
#[derive(Clone, Debug)]
pub struct Surrogate {
    priors: [WorkloadPrior; NUM_WORKLOADS],
    beta: Vec<f64>,
    ensemble: Vec<Vec<f64>>,
}

/// One canonically-ordered training row: features, prior-subtracted
/// residual target.
type TrainRow = (Vec<f64>, f64);

fn canonical_rows(
    points: &[ConfigPoint],
    cpi: &[f64],
    priors: &[WorkloadPrior; NUM_WORKLOADS],
) -> Vec<TrainRow> {
    let mut rows: Vec<TrainRow> = points
        .iter()
        .zip(cpi)
        .map(|(p, &y)| {
            (
                features(p),
                residual_target(&priors[p.workload], p.latency, y),
            )
        })
        .collect();
    // Canonical order before any accumulation: the fit (and therefore
    // every prediction) is bit-identical however the caller ordered the
    // training set. Ties are identical rows, so their order is moot.
    rows.sort_by(|a, b| {
        a.0.iter()
            .map(|v| v.to_bits())
            .cmp(b.0.iter().map(|v| v.to_bits()))
            .then(a.1.total_cmp(&b.1))
    });
    rows
}

impl Surrogate {
    /// Fits the surrogate to observed `(point, CPI)` pairs with the
    /// default ridge penalty.
    ///
    /// # Panics
    ///
    /// Panics if `points` and `cpi` lengths disagree, or a point carries
    /// an out-of-range workload or a zero axis (see [`features`]).
    pub fn fit(
        points: &[ConfigPoint],
        cpi: &[f64],
        priors: &[WorkloadPrior; NUM_WORKLOADS],
    ) -> Surrogate {
        Surrogate::fit_with(points, cpi, priors, DEFAULT_LAMBDA)
    }

    /// [`Surrogate::fit`] with an explicit ridge penalty.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Surrogate::fit`].
    pub fn fit_with(
        points: &[ConfigPoint],
        cpi: &[f64],
        priors: &[WorkloadPrior; NUM_WORKLOADS],
        lambda: f64,
    ) -> Surrogate {
        assert_eq!(points.len(), cpi.len(), "points/cpi length mismatch");
        let rows = canonical_rows(points, cpi, priors);
        let xs: Vec<Vec<f64>> = rows.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<f64> = rows.iter().map(|&(_, y)| y).collect();
        let beta = linalg::ridge(&xs, &ys, lambda);
        let folds = ENSEMBLE.min(rows.len()).max(1);
        let ensemble = (0..folds)
            .map(|f| {
                let (fx, fy): (Vec<Vec<f64>>, Vec<f64>) = rows
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % folds != f)
                    .map(|(_, (x, y))| (x.clone(), *y))
                    .unzip();
                linalg::ridge(&fx, &fy, lambda)
            })
            .collect();
        Surrogate {
            priors: *priors,
            beta,
            ensemble,
        }
    }

    /// Predicted CPI at `p`: the prior's on-chip CPI plus its off-chip
    /// component scaled by the fitted log-space residual. The
    /// exponential keeps the off-chip component positive, so a
    /// prediction is never below the workload's on-chip CPI.
    pub fn predict(&self, p: &ConfigPoint) -> f64 {
        self.predict_with(&self.beta, p)
    }

    fn predict_with(&self, beta: &[f64], p: &ConfigPoint) -> f64 {
        let prior = &self.priors[p.workload];
        let t = linalg::dot(beta, &features(p)).clamp(-LOG_RESIDUAL_CLAMP, LOG_RESIDUAL_CLAMP);
        prior.cpi_on_chip + prior.off_chip_cpi(p.latency) * t.exp()
    }

    /// Relative uncertainty (percent) at `p`: the spread of the
    /// jackknife ensemble's predictions around their mean. Zero only
    /// when every fold agrees exactly — in practice, points far from any
    /// training data disagree the most, which is what active sampling
    /// exploits.
    pub fn uncertainty_pct(&self, p: &ConfigPoint) -> f64 {
        let preds: Vec<f64> = self
            .ensemble
            .iter()
            .map(|beta| self.predict_with(beta, p))
            .collect();
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        100.0 * var.sqrt() / mean.abs().max(1e-9)
    }
}

/// Held-out error statistics from [`kfold_cv`].
#[derive(Clone, Debug)]
pub struct CvStats {
    /// Held-out points scored.
    pub n: usize,
    /// Median relative CPI error, percent.
    pub median_pct: f64,
    /// 99th-percentile relative CPI error, percent.
    pub p99_pct: f64,
    /// Largest relative CPI error, percent.
    pub worst_pct: f64,
    /// The config behind [`CvStats::worst_pct`], for failure messages.
    pub worst: Option<ConfigPoint>,
}

impl CvStats {
    /// Whether the statistics meet the pinned tolerance
    /// ([`TOL_MEDIAN_PCT`] / [`TOL_P99_PCT`]).
    pub fn within_tolerance(&self) -> bool {
        self.n > 0 && self.median_pct <= TOL_MEDIAN_PCT && self.p99_pct <= TOL_P99_PCT
    }
}

/// The fold a point belongs to in [`kfold_cv`]: a deterministic hash of
/// the point's engine cell `(workload, window, L2)`.
///
/// Grouping folds by cell instead of round-robin keeps a simulated
/// cell's free `(MSHRs, latency)` stencil mates on one side of the
/// train/test split — otherwise near-duplicates of every held-out point
/// sit in the training set and the CV score measures interpolation
/// within a cell, not generalization to unseen cells (which is what the
/// published tolerance claims).
pub fn cv_fold(p: &ConfigPoint, k: usize) -> usize {
    let h = (p.workload as u64)
        .wrapping_mul(1_000_003)
        .wrapping_add(u64::from(p.window))
        .wrapping_mul(1_000_033)
        .wrapping_add(u64::from(p.l2_kb));
    (h % k.max(1) as u64) as usize
}

/// `k`-fold cross-validation: folds group whole engine cells (see
/// [`cv_fold`]), each fold's points are predicted by a surrogate trained
/// on the other folds, and the relative errors are summarized. Fully
/// deterministic for a fixed input order.
///
/// # Panics
///
/// Panics if `points` and `cpi` lengths disagree or `k == 0`.
pub fn kfold_cv(
    points: &[ConfigPoint],
    cpi: &[f64],
    priors: &[WorkloadPrior; NUM_WORKLOADS],
    k: usize,
    lambda: f64,
) -> CvStats {
    assert_eq!(points.len(), cpi.len(), "points/cpi length mismatch");
    assert!(k > 0, "need at least one fold");
    let k = k.min(points.len()).max(1);
    let mut errors: Vec<(f64, usize)> = Vec::with_capacity(points.len());
    for fold in 0..k {
        let (tp, ty): (Vec<ConfigPoint>, Vec<f64>) = points
            .iter()
            .zip(cpi)
            .filter(|(p, _)| cv_fold(p, k) != fold)
            .map(|(p, &y)| (*p, y))
            .unzip();
        if tp.is_empty() {
            continue;
        }
        let s = Surrogate::fit_with(&tp, &ty, priors, lambda);
        for (i, (p, &y)) in points.iter().zip(cpi).enumerate() {
            if cv_fold(p, k) == fold {
                errors.push((mlp_model::pct_error(s.predict(p), y).abs(), i));
            }
        }
    }
    summarize_errors(points, errors)
}

fn summarize_errors(points: &[ConfigPoint], mut errors: Vec<(f64, usize)>) -> CvStats {
    if errors.is_empty() {
        return CvStats {
            n: 0,
            median_pct: f64::INFINITY,
            p99_pct: f64::INFINITY,
            worst_pct: f64::INFINITY,
            worst: None,
        };
    }
    errors.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let n = errors.len();
    let quantile = |q: f64| errors[((q * (n - 1) as f64).round() as usize).min(n - 1)].0;
    let &(worst_pct, worst_idx) = errors.last().expect("non-empty");
    CvStats {
        n,
        median_pct: quantile(0.5),
        p99_pct: quantile(0.99),
        worst_pct,
        worst: points.get(worst_idx).copied(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_grid() -> Vec<ConfigPoint> {
        let mut grid = Vec::new();
        for workload in 0..NUM_WORKLOADS {
            for &window in &[16u32, 64, 256] {
                for &mshrs in &[1u32, 4, 16] {
                    for &latency in &[200u32, 1000] {
                        for &l2_kb in &[512u32, 2048] {
                            grid.push(ConfigPoint {
                                workload,
                                window,
                                mshrs,
                                latency,
                                l2_kb,
                            });
                        }
                    }
                }
            }
        }
        grid
    }

    /// A synthetic truth with the same structure the features target:
    /// the prior's on-chip CPI plus a latency-linear off-chip component.
    fn toy_truth(p: &ConfigPoint) -> f64 {
        let base = default_priors()[p.workload].cpi_on_chip;
        let lw = (p.window as f64).log2();
        base + p.latency as f64 * (0.002 + 0.004 / p.mshrs as f64) * (1.0 + 0.05 * lw)
            / (p.l2_kb as f64).log2()
    }

    #[test]
    fn fit_interpolates_toy_truth() {
        let grid = toy_grid();
        let cpi: Vec<f64> = grid.iter().map(toy_truth).collect();
        let s = Surrogate::fit(&grid, &cpi, &default_priors());
        let worst = grid
            .iter()
            .zip(&cpi)
            .map(|(p, &y)| (mlp_model::pct_error(s.predict(p), y)).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 5.0, "toy in-sample worst error {worst:.2}%");
    }

    #[test]
    fn fit_is_invariant_to_row_order() {
        let grid = toy_grid();
        let cpi: Vec<f64> = grid.iter().map(toy_truth).collect();
        let fwd = Surrogate::fit(&grid, &cpi, &default_priors());
        let mut rev_grid = grid.clone();
        let mut rev_cpi = cpi.clone();
        rev_grid.reverse();
        rev_cpi.reverse();
        let rev = Surrogate::fit(&rev_grid, &rev_cpi, &default_priors());
        for p in &grid {
            assert_eq!(fwd.predict(p).to_bits(), rev.predict(p).to_bits());
            assert_eq!(
                fwd.uncertainty_pct(p).to_bits(),
                rev.uncertainty_pct(p).to_bits()
            );
        }
    }

    #[test]
    fn uncertainty_grows_away_from_training_data() {
        let grid = toy_grid();
        // Train on workload 0 only; workloads 1/2 are unseen.
        let (tp, ty): (Vec<ConfigPoint>, Vec<f64>) = grid
            .iter()
            .filter(|p| p.workload == 0)
            .map(|p| (*p, toy_truth(p)))
            .unzip();
        let s = Surrogate::fit(&tp, &ty, &default_priors());
        let seen = s.uncertainty_pct(&tp[0]);
        let unseen = s.uncertainty_pct(&ConfigPoint {
            workload: 1,
            ..tp[0]
        });
        // An unseen workload's block has no data at all: every jackknife
        // fold agrees it is all prior, so spread is ~0 there — instead
        // compare a *sparsely* seen corner. Drop most of workload 0's
        // points and check the dropped corner is less certain.
        let (sp, sy): (Vec<ConfigPoint>, Vec<f64>) = tp
            .iter()
            .zip(&ty)
            .filter(|(p, _)| p.mshrs > 1)
            .map(|(p, &y)| (*p, y))
            .unzip();
        let sparse = Surrogate::fit(&sp, &sy, &default_priors());
        let corner = ConfigPoint {
            workload: 0,
            window: 16,
            mshrs: 1,
            latency: 1000,
            l2_kb: 512,
        };
        assert!(
            sparse.uncertainty_pct(&corner) > sparse.uncertainty_pct(&sp[0]),
            "unsampled corner must be less certain than a training point"
        );
        let _ = (seen, unseen);
    }

    #[test]
    fn kfold_cv_scores_toy_truth_within_tolerance() {
        let grid = toy_grid();
        let cpi: Vec<f64> = grid.iter().map(toy_truth).collect();
        let cv = kfold_cv(&grid, &cpi, &default_priors(), 5, DEFAULT_LAMBDA);
        assert_eq!(cv.n, grid.len());
        assert!(cv.within_tolerance(), "toy CV: {cv:?}");
        assert!(cv.worst.is_some());
        assert!(cv.median_pct <= cv.p99_pct && cv.p99_pct <= cv.worst_pct);
    }

    #[test]
    fn empty_cv_is_out_of_tolerance() {
        let cv = kfold_cv(&[], &[], &default_priors(), 5, DEFAULT_LAMBDA);
        assert_eq!(cv.n, 0);
        assert!(!cv.within_tolerance());
    }

    #[test]
    fn priors_match_table1_shape() {
        let priors = default_priors();
        for p in &priors {
            assert!(p.cpi_on_chip > 0.5 && p.cpi_on_chip < 2.0);
            assert!(p.mlp >= 1.0);
            // Mean CPI grows with latency.
            assert!(p.mean_cpi(1000) > p.mean_cpi(200));
        }
    }
}
