//! The active-sampling loop: simulate only where the surrogate is
//! uncertain.
//!
//! [`explore`] owns the loop; the caller owns the simulator. Each round
//! fits a surrogate to the labeled points, cross-validates it, and — if
//! the pinned tolerance does not hold yet — asks the caller to simulate
//! the top-`batch` highest-uncertainty unlabeled grid points. The
//! simulate callback receives *indices into the grid* and returns
//! `(index, CPI)` labels covering at least the request — plus any extra
//! points the same simulator work priced for free — so the caller is
//! free to batch, cache and parallelize however it likes.
//!
//! Everything here is deterministic: uncertainty ranking breaks ties by
//! ascending grid index, and the underlying fit is invariant to row
//! order, so two explorations of the same grid with the same simulator
//! label the same points in the same order.

use crate::features::{ConfigPoint, NUM_WORKLOADS};
use crate::{kfold_cv, CvStats, Surrogate, WorkloadPrior, DEFAULT_LAMBDA};

/// Knobs for [`explore`].
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Points simulated per round.
    pub batch: usize,
    /// Hard cap on total simulated points (seeds included).
    pub budget: usize,
    /// Stop once cross-validated median error is at or below this
    /// (percent) …
    pub target_median_pct: f64,
    /// … and p99 error is at or below this (percent).
    pub target_p99_pct: f64,
    /// Folds for the per-round cross-validation.
    pub cv_folds: usize,
    /// Ridge penalty passed through to the fit.
    pub lambda: f64,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            batch: 16,
            budget: 144,
            // Tighter than the crate-level tolerance so the published
            // contract (5% / 15%) holds with margin on fresh data.
            target_median_pct: 4.0,
            target_p99_pct: 12.0,
            cv_folds: 5,
            lambda: DEFAULT_LAMBDA,
        }
    }
}

/// The outcome of an [`explore`] run.
#[derive(Clone, Debug)]
pub struct Explored {
    /// Grid indices in the order they were simulated (seeds first).
    pub order: Vec<usize>,
    /// Simulated CPI, aligned with [`Explored::order`].
    pub cpi: Vec<f64>,
    /// Fit/simulate rounds executed (seed labeling is round 0's input,
    /// not a round).
    pub rounds: usize,
    /// Whether the tolerance targets held before the budget ran out.
    pub converged: bool,
    /// Cross-validation statistics of the final fit over all labeled
    /// points.
    pub cv: CvStats,
    /// The final fitted surrogate (trained on every labeled point).
    pub surrogate: Surrogate,
}

/// The simulate callback [`explore`] drives: takes a batch of grid
/// indices, returns `(grid index, CPI)` labels covering at least the
/// requested indices (free extras welcome — see [`explore`]).
pub type Simulate<'a> = &'a mut dyn FnMut(&[usize]) -> Vec<(usize, f64)>;

/// Runs the active-sampling loop over `grid`.
///
/// `seeds` are grid indices labeled up front (duplicates and
/// out-of-range indices are ignored); with no valid seeds the first
/// `batch` grid points are used so the loop always has something to fit.
/// `simulate` is called with batches of grid indices and returns
/// `(grid index, CPI)` labels covering **at least** the requested
/// indices; it may return extra labels for points the same simulator
/// work priced for free (`sweep1000`'s engine runs one `(workload,
/// window, L2)` cell and prices every MSHR/latency combination of it
/// analytically). Extras already labeled are ignored; fresh ones join
/// the training set in returned order, so the exploration stays
/// deterministic.
///
/// `budget` caps labeled points approximately: the loop stops requesting
/// once `order` reaches it, but the final batch's free extras may push
/// past.
///
/// # Panics
///
/// Panics if `grid` is empty, if `simulate` omits a requested index or
/// returns an out-of-range one, or if a returned CPI is not finite and
/// positive — a simulator that cannot price a point is a caller bug, not
/// something to paper over.
pub fn explore(
    grid: &[ConfigPoint],
    priors: &[WorkloadPrior; NUM_WORKLOADS],
    seeds: &[usize],
    cfg: &ExploreConfig,
    simulate: Simulate,
) -> Explored {
    assert!(!grid.is_empty(), "cannot explore an empty grid");
    let batch = cfg.batch.max(1);
    let mut labeled = vec![false; grid.len()];
    let mut order: Vec<usize> = Vec::new();
    let mut cpi: Vec<f64> = Vec::new();
    let mut seed_batch: Vec<usize> = Vec::new();
    for &i in seeds {
        if i < grid.len() && !seed_batch.contains(&i) {
            seed_batch.push(i);
        }
    }
    if seed_batch.is_empty() {
        seed_batch = (0..grid.len().min(batch)).collect();
    }
    run_batch(
        &seed_batch,
        grid,
        simulate,
        &mut labeled,
        &mut order,
        &mut cpi,
    );

    let mut rounds = 0;
    loop {
        let points: Vec<ConfigPoint> = order.iter().map(|&i| grid[i]).collect();
        let surrogate = Surrogate::fit_with(&points, &cpi, priors, cfg.lambda);
        let cv = kfold_cv(&points, &cpi, priors, cfg.cv_folds.max(2), cfg.lambda);
        let converged =
            cv.n > 0 && cv.median_pct <= cfg.target_median_pct && cv.p99_pct <= cfg.target_p99_pct;
        let budget_left = cfg.budget.saturating_sub(order.len());
        if converged || budget_left == 0 || order.len() == grid.len() {
            return Explored {
                order,
                cpi,
                rounds,
                converged,
                cv,
                surrogate,
            };
        }

        // Rank unlabeled points by descending uncertainty; ties break by
        // ascending grid index so the pick order is fully deterministic.
        let mut ranked: Vec<(f64, usize)> = grid
            .iter()
            .enumerate()
            .filter(|&(i, _)| !labeled[i])
            .map(|(i, p)| (surrogate.uncertainty_pct(p), i))
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let pick: Vec<usize> = ranked
            .into_iter()
            .take(batch.min(budget_left))
            .map(|(_, i)| i)
            .collect();
        if pick.is_empty() {
            return Explored {
                order,
                cpi,
                rounds,
                converged: false,
                cv,
                surrogate,
            };
        }
        run_batch(&pick, grid, simulate, &mut labeled, &mut order, &mut cpi);
        rounds += 1;
    }
}

/// Requests labels for `indices` and records every fresh label returned
/// (requested or free extra), enforcing the [`explore`] contract.
fn run_batch(
    indices: &[usize],
    grid: &[ConfigPoint],
    simulate: Simulate,
    labeled: &mut [bool],
    order: &mut Vec<usize>,
    cpi: &mut Vec<f64>,
) {
    let out = simulate(indices);
    for &(i, y) in &out {
        assert!(i < grid.len(), "simulate labeled out-of-range index {i}");
        assert!(
            y.is_finite() && y > 0.0,
            "simulate returned non-physical CPI {y} for {:?}",
            grid[i]
        );
        if !labeled[i] {
            labeled[i] = true;
            order.push(i);
            cpi.push(y);
        }
    }
    for &i in indices {
        assert!(
            labeled[i],
            "simulate omitted requested point {i} ({:?})",
            grid[i]
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_priors;

    fn grid() -> Vec<ConfigPoint> {
        let mut g = Vec::new();
        for workload in 0..NUM_WORKLOADS {
            for &window in &[16u32, 32, 64, 128, 256, 512] {
                for &mshrs in &[1u32, 4, 16] {
                    for &latency in &[200u32, 500, 1000] {
                        g.push(ConfigPoint {
                            workload,
                            window,
                            mshrs,
                            latency,
                            l2_kb: 1024,
                        });
                    }
                }
            }
        }
        g
    }

    fn truth(p: &ConfigPoint) -> f64 {
        default_priors()[p.workload].cpi_on_chip
            + p.latency as f64 * (0.001 + 0.003 / p.mshrs as f64)
                / (1.0 + 0.1 * (p.window as f64).log2())
    }

    fn direct<'a>(g: &'a [ConfigPoint]) -> impl FnMut(&[usize]) -> Vec<(usize, f64)> + 'a {
        |idx: &[usize]| idx.iter().map(|&i| (i, truth(&g[i]))).collect()
    }

    #[test]
    fn converges_on_smooth_truth_without_exhausting_grid() {
        let g = grid();
        let mut calls = 0usize;
        let mut sim = |idx: &[usize]| -> Vec<(usize, f64)> {
            calls += idx.len();
            idx.iter().map(|&i| (i, truth(&g[i]))).collect()
        };
        let seeds: Vec<usize> = (0..g.len()).step_by(7).collect();
        let out = explore(
            &g,
            &default_priors(),
            &seeds,
            &ExploreConfig::default(),
            &mut sim,
        );
        assert!(out.converged, "cv after budget: {:?}", out.cv);
        assert_eq!(out.order.len(), calls);
        assert!(out.order.len() < g.len(), "should not label the whole grid");
        // Labels are unique.
        let mut seen = out.order.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), out.order.len());
        // Final surrogate predicts held-out points well.
        let unlabeled: Vec<&ConfigPoint> = g
            .iter()
            .enumerate()
            .filter(|(i, _)| !out.order.contains(i))
            .map(|(_, p)| p)
            .collect();
        assert!(!unlabeled.is_empty());
        let worst = unlabeled
            .iter()
            .map(|p| mlp_model::pct_error(out.surrogate.predict(p), truth(p)).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 15.0, "worst held-out error {worst:.2}%");
    }

    #[test]
    fn exploration_is_deterministic() {
        let g = grid();
        let run = || {
            let mut sim = direct(&g);
            explore(
                &g,
                &default_priors(),
                &[0, 5, 11],
                &ExploreConfig::default(),
                &mut sim,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.order, b.order);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(
            a.cpi.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.cpi.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn budget_caps_labeling() {
        let g = grid();
        let cfg = ExploreConfig {
            budget: 20,
            batch: 8,
            target_median_pct: 0.0, // unreachable: force budget exhaustion
            target_p99_pct: 0.0,
            ..ExploreConfig::default()
        };
        let mut sim = direct(&g);
        let out = explore(&g, &default_priors(), &[], &cfg, &mut sim);
        assert!(!out.converged);
        assert_eq!(out.order.len(), 20);
    }

    #[test]
    fn free_extras_are_recorded_once() {
        let g = grid();
        // Every request also labels index 1 and re-labels index 0 for free.
        let mut sim = |idx: &[usize]| -> Vec<(usize, f64)> {
            let mut out: Vec<(usize, f64)> = idx.iter().map(|&i| (i, truth(&g[i]))).collect();
            out.push((0, truth(&g[0])));
            out.push((1, truth(&g[1])));
            out
        };
        let cfg = ExploreConfig {
            budget: 12,
            batch: 4,
            target_median_pct: 0.0,
            target_p99_pct: 0.0,
            ..ExploreConfig::default()
        };
        let out = explore(&g, &default_priors(), &[0], &cfg, &mut sim);
        assert_eq!(out.order[..2], [0, 1], "seed then its free extra");
        let mut seen = out.order.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), out.order.len(), "extras recorded at most once");
        assert!(out.order.len() >= 12);
    }

    #[test]
    #[should_panic(expected = "omitted requested point")]
    fn omitted_request_rejected() {
        let g = grid();
        let mut sim = |_: &[usize]| Vec::new();
        explore(
            &g,
            &default_priors(),
            &[0],
            &ExploreConfig::default(),
            &mut sim,
        );
    }

    #[test]
    fn bad_seeds_are_ignored() {
        let g = grid();
        let mut sim = direct(&g);
        let cfg = ExploreConfig {
            budget: 12,
            target_median_pct: 0.0,
            target_p99_pct: 0.0,
            ..ExploreConfig::default()
        };
        let out = explore(&g, &default_priors(), &[0, 0, usize::MAX], &cfg, &mut sim);
        assert_eq!(out.order[0], 0);
        assert_eq!(out.order.iter().filter(|&&i| i == 0).count(), 1);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_rejected() {
        let mut sim = |_: &[usize]| Vec::new();
        explore(
            &[],
            &default_priors(),
            &[],
            &ExploreConfig::default(),
            &mut sim,
        );
    }

    #[test]
    #[should_panic(expected = "non-physical CPI")]
    fn non_physical_simulator_rejected() {
        let g = grid();
        let mut sim = |idx: &[usize]| idx.iter().map(|&i| (i, f64::NAN)).collect();
        explore(
            &g,
            &default_priors(),
            &[0],
            &ExploreConfig::default(),
            &mut sim,
        );
    }
}
