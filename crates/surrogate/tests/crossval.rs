//! Cross-validation over the checked-in golden report corpus: the
//! surrogate's published tolerance (median ≤ 5%, p99 ≤ 15% relative CPI
//! error on held-out points) must hold on real simulated data, not just
//! synthetic truths.
//!
//! The corpus is whatever `tests/golden/*.quick.json` reports carry full
//! sweep coordinates — today that is the `sweep1000` snapshot, several
//! hundred engine-priced points spanning every workload, window, MSHR
//! count, latency, and L2 size in the sweep. Folds group whole engine
//! cells (see `mlp_surrogate::cv_fold`), so the score measures
//! generalization to unseen cells.
//!
//! Release-only: fitting a 231-wide ridge across 5 folds over ~750 rows
//! is seconds in release and minutes unoptimized.
#![cfg(not(debug_assertions))]

use mlp_surrogate::{corpus, default_priors, kfold_cv};
use std::fs;
use std::path::PathBuf;

/// Ridge penalty used by the `sweep1000` exploration loop
/// (`mlp_experiments::exp::sweep1000::explore_config()`); duplicated as
/// a literal because depending on `mlp-experiments` here would be a
/// dependency cycle. Its golden snapshot pins the value operationally:
/// if the exploration penalty drifts, this corpus was fit with the new
/// value and this test's score moves too.
const LAMBDA: f64 = 1e-3;

#[test]
fn golden_corpus_cross_validates_within_tolerance() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/golden exists — run from the workspace checkout")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".quick.json"))
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no golden reports found in {dir:?}");

    let mut points = Vec::new();
    let mut cpi = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file).expect("readable golden report");
        for row in corpus::rows_from_report(&text) {
            points.push(row.point);
            cpi.push(row.cpi);
        }
    }
    assert!(
        points.len() >= 500,
        "golden corpus shrank to {} rows — the sweep1000 snapshot alone \
         contributes ~750; was it re-blessed with a smaller budget?",
        points.len()
    );

    let cv = kfold_cv(&points, &cpi, &default_priors(), 5, LAMBDA);
    assert_eq!(cv.n, points.len(), "every corpus row must be scored");
    assert!(
        cv.within_tolerance(),
        "surrogate out of tolerance on the golden corpus: \
         median {:.2}% (≤ {:.0}%), p99 {:.2}% (≤ {:.0}%) over {} points; \
         worst offender {:?} at {:.2}%",
        cv.median_pct,
        mlp_surrogate::TOL_MEDIAN_PCT,
        cv.p99_pct,
        mlp_surrogate::TOL_P99_PCT,
        cv.n,
        cv.worst,
        cv.worst_pct,
    );
}
