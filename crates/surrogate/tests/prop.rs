//! Property tests for the surrogate's numerical core: the Cholesky
//! solver recovers planted coefficients exactly (to float precision) on
//! noiseless well-conditioned systems, ridge regression is total on
//! arbitrarily hostile designs, and a fitted surrogate is deterministic
//! and bit-for-bit invariant to the order of its training rows.

use mlp_surrogate::linalg::{cholesky_solve, ridge};
use mlp_surrogate::{default_priors, ConfigPoint, Surrogate, NUM_WORKLOADS};
use proptest::prelude::*;
use proptest::strategy::LazyGen;
use proptest::test_runner::TestRng;

/// A random well-conditioned SPD system with a planted solution:
/// `A = L·Lᵀ` for a lower-triangular `L` with diagonal in `[0.5, 2]` and
/// off-diagonal in `[-0.5, 0.5]`, plus `x` in `[-2, 2]` and `b = A·x`.
fn spd_system(rng: &mut TestRng) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let n = (1usize..=8).generate(rng);
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..i {
            l[i * n + j] = (-0.5..=0.5).generate(rng);
        }
        l[i * n + i] = (0.5..=2.0).generate(rng);
    }
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = (0..n).map(|k| l[i * n + k] * l[j * n + k]).sum();
        }
    }
    let x: Vec<f64> = (0..n).map(|_| (-2.0..=2.0).generate(rng)).collect();
    let b: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum())
        .collect();
    (a, x, b)
}

/// A value drawn from the hostile end of the f64 spectrum: NaN, both
/// infinities, zero, or a large-magnitude finite number.
fn hostile_value(rng: &mut TestRng) -> f64 {
    match rng.below(6) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        _ => (-1e3..=1e3).generate(rng),
    }
}

/// A deliberately degenerate ridge design: hostile entries, mismatched
/// row widths, duplicated rows (rank deficiency), zeroed rows, and a
/// possibly non-finite or negative penalty.
fn hostile_design(rng: &mut TestRng) -> (Vec<Vec<f64>>, Vec<f64>, f64) {
    let p = (1usize..=6).generate(rng);
    let n = (0usize..=12).generate(rng);
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let width = if rng.ratio(1, 5) {
            (0usize..=8).generate(rng)
        } else {
            p
        };
        let mut row: Vec<f64> = (0..width).map(|_| hostile_value(rng)).collect();
        if rng.ratio(1, 4) && !rows.is_empty() {
            row = rows[rng.below(rows.len() as u64) as usize].clone();
        }
        if rng.ratio(1, 6) {
            row.iter_mut().for_each(|v| *v = 0.0);
        }
        rows.push(row);
        y.push(hostile_value(rng));
    }
    let lambda = match rng.below(4) {
        0 => f64::NAN,
        1 => -1.0,
        2 => 0.0,
        _ => (0.0..1.0).generate(rng),
    };
    (rows, y, lambda)
}

/// A random training set drawn from realistic sweep axes, with targets
/// above each workload's on-chip CPI (any positive off-chip component is
/// a valid observation), plus a Fisher–Yates permutation of its rows and
/// a probe point for prediction checks.
#[allow(clippy::type_complexity)]
fn training_set(rng: &mut TestRng) -> (Vec<ConfigPoint>, Vec<f64>, Vec<usize>, ConfigPoint) {
    const WINDOWS: [u32; 4] = [16, 32, 128, 512];
    const MSHRS: [u32; 3] = [1, 4, 16];
    const LATENCIES: [u32; 3] = [200, 500, 1000];
    const L2_KB: [u32; 2] = [512, 2048];
    fn pick(rng: &mut TestRng, xs: &[u32]) -> u32 {
        xs[rng.below(xs.len() as u64) as usize]
    }
    let priors = default_priors();
    let n = (4usize..=40).generate(rng);
    let mut points = Vec::with_capacity(n);
    let mut cpi = Vec::with_capacity(n);
    for _ in 0..n {
        let p = ConfigPoint {
            workload: (0usize..NUM_WORKLOADS).generate(rng),
            window: pick(rng, &WINDOWS),
            mshrs: pick(rng, &MSHRS),
            latency: pick(rng, &LATENCIES),
            l2_kb: pick(rng, &L2_KB),
        };
        let prior = &priors[p.workload];
        let y = prior.cpi_on_chip + prior.off_chip_cpi(p.latency) * (0.2..=5.0).generate(rng);
        points.push(p);
        cpi.push(y);
    }
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    let probe = points[rng.below(n as u64) as usize];
    (points, cpi, perm, probe)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Noiseless data from a well-conditioned SPD system: the solver
    /// must recover the planted solution to 1e-9.
    #[test]
    fn cholesky_recovers_planted_coefficients(sys in LazyGen::new(spd_system)) {
        let (a, x, b) = sys;
        let sol = cholesky_solve(&a, &b);
        prop_assert!(sol.is_some(), "well-conditioned SPD system must solve");
        let sol = sol.unwrap();
        prop_assert_eq!(sol.len(), x.len());
        for (got, want) in sol.iter().zip(&x) {
            prop_assert!(
                (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "planted {want} recovered as {got}"
            );
        }
    }

    /// `cholesky_solve` never panics and never returns non-finite
    /// values, whatever the input holds.
    #[test]
    fn cholesky_is_total_on_hostile_input(
        n in 0usize..=6,
        seed in any::<u64>(),
    ) {
        let mut rng = TestRng::for_case("hostile-cholesky", seed);
        let a: Vec<f64> = (0..n * n).map(|_| hostile_value(&mut rng)).collect();
        let b: Vec<f64> = (0..n).map(|_| hostile_value(&mut rng)).collect();
        if let Some(sol) = cholesky_solve(&a, &b) {
            prop_assert_eq!(sol.len(), n);
            prop_assert!(sol.iter().all(|v| v.is_finite()));
        }
    }

    /// Ridge is total: rank-deficient, degenerate, and hostile designs
    /// produce a finite coefficient vector of the right width — never a
    /// panic, never NaN.
    #[test]
    fn ridge_is_total_on_hostile_designs(design in LazyGen::new(hostile_design)) {
        let (rows, y, lambda) = design;
        let p = rows.iter().map(Vec::len).max().unwrap_or(0);
        let beta = ridge(&rows, &y, lambda);
        prop_assert_eq!(beta.len(), p);
        prop_assert!(beta.iter().all(|v| v.is_finite()), "beta = {:?}", beta);
    }
}

proptest! {
    // Fewer cases: each one fits three full surrogates (a 231-wide ridge
    // plus its jackknife ensemble apiece), which is seconds per case in
    // unoptimized builds.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fitting the same data twice gives bit-identical predictions, and
    /// permuting the training rows changes nothing: the fit canonicalizes
    /// row order before any floating-point accumulation.
    #[test]
    fn fit_is_deterministic_and_row_order_invariant(set in LazyGen::new(training_set)) {
        let (points, cpi, perm, probe) = set;
        let priors = default_priors();
        let first = Surrogate::fit(&points, &cpi, &priors);
        let again = Surrogate::fit(&points, &cpi, &priors);
        let shuffled_points: Vec<ConfigPoint> = perm.iter().map(|&i| points[i]).collect();
        let shuffled_cpi: Vec<f64> = perm.iter().map(|&i| cpi[i]).collect();
        let shuffled = Surrogate::fit(&shuffled_points, &shuffled_cpi, &priors);
        for p in points.iter().chain([&probe]) {
            let want = first.predict(p);
            prop_assert!(want.is_finite());
            prop_assert_eq!(want.to_bits(), again.predict(p).to_bits());
            prop_assert_eq!(want.to_bits(), shuffled.predict(p).to_bits());
            prop_assert_eq!(
                first.uncertainty_pct(p).to_bits(),
                shuffled.uncertainty_pct(p).to_bits()
            );
        }
    }
}
