//! Deterministic fault injection for the experiment harness.
//!
//! Long sweep campaigns must survive a single bad run, and the only way
//! to *prove* they do is to make faults happen on demand. This crate is
//! the single switchboard: production code consults a named **site**, and
//! the `MLP_FAULT=<site>:<n>` environment variable arms exactly one site
//! per process. With the variable unset every probe is a no-op, so the
//! hooks cost one atomic load on the hot path and nothing observable in
//! behaviour.
//!
//! Sites are plain strings; the ones wired into the workspace are:
//!
//! | site | armed as | effect |
//! |------|----------|--------|
//! | [`SWEEP_PANIC`] | `sweep-panic:<n>` | the *n*-th sweep job started by `mlp_par::try_par_map` (counted process-wide, 1-based) panics |
//! | [`CURSOR_TRUNCATE`] | `cursor-truncate:<n>` | every materialized trace cursor is capped at `n` instructions, so a run drains its trace early |
//! | [`TRACE_BITFLIP`] | `trace-bitflip:<bit>` | `mlp_isa::tracefile::read` sees bit `bit` (a process-wide bit offset into the stream) flipped |
//! | [`SERVE_JOB_HANG`] | `serve-job-hang:<n>` | the *n*-th job body started by the `mlp-serve` worker pool wedges (sleeps past any deadline) |
//! | [`SERVE_IO_ERROR`] | `serve-io-error:<n>` | the *n*-th serve job attempt fails with a transient injected IO error (retried with backoff) |
//! | [`SERVE_CACHE_CORRUPT`] | `serve-cache-corrupt:<n>` | the *n*-th result-cache write by `mlp-serve` stores corrupt bytes |
//! | [`SURROGATE_UNCERTAIN`] | `surrogate-uncertain:<n>` | the *n*-th surrogate-tier request served by `mlp-serve` is treated as out-of-tolerance and falls back to real simulation |
//!
//! Three probe flavours cover those semantics: [`fire`] counts dynamic
//! occurrences and panics on the *n*-th one (for sites whose parameter is
//! an ordinal), [`trip`] counts the same way but *returns* `true` on the
//! armed occurrence instead of panicking (for sites whose effect is not a
//! panic — hanging a worker, corrupting bytes), and [`param`] just hands
//! the armed parameter back (for sites whose parameter is a size or
//! offset). Determinism: occurrence counting uses a single process-wide
//! counter, so which *experiment* a fault lands in depends only on the
//! cumulative number of probes — experiments run sequentially — never on
//! thread scheduling.
//!
//! A malformed `MLP_FAULT` value is reported once on stderr and ignored:
//! a typo'd injection must not silently pass a fault test, and the
//! warning makes the misconfiguration visible.
//!
//! # Examples
//!
//! ```
//! mlp_faults::set_for_test(Some(("demo-site", 2)));
//! assert_eq!(mlp_faults::param("demo-site"), Some(2));
//! assert_eq!(mlp_faults::param("other-site"), None);
//! mlp_faults::fire("demo-site"); // occurrence 1 of 2: no panic
//! let hit = std::panic::catch_unwind(|| mlp_faults::fire("demo-site"));
//! assert!(hit.is_err()); // occurrence 2 fires
//! mlp_faults::set_for_test(None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;

/// Site name: panic inside the n-th parallel sweep job (see `mlp-par`).
pub const SWEEP_PANIC: &str = "sweep-panic";
/// Site name: cap materialized trace cursors at the armed length.
pub const CURSOR_TRUNCATE: &str = "cursor-truncate";
/// Site name: flip the armed bit offset in a binary trace stream.
pub const TRACE_BITFLIP: &str = "trace-bitflip";
/// Site name: wedge the n-th job body started by the `mlp-serve` worker
/// pool (the body sleeps far past any configured deadline, so the
/// daemon's watchdog must reclaim the worker).
pub const SERVE_JOB_HANG: &str = "serve-job-hang";
/// Site name: fail the n-th serve job attempt with a transient injected
/// IO error (the daemon retries it with capped backoff).
pub const SERVE_IO_ERROR: &str = "serve-io-error";
/// Site name: corrupt the bytes of the n-th result-cache write performed
/// by `mlp-serve` (a later read must detect and regenerate).
pub const SERVE_CACHE_CORRUPT: &str = "serve-cache-corrupt";
/// Site name: force the n-th surrogate-tier request served by
/// `mlp-serve` to be treated as exceeding the uncertainty bound, so it
/// falls back from the fitted model to a real simulation.
pub const SURROGATE_UNCERTAIN: &str = "surrogate-uncertain";

/// The environment variable that arms a fault site.
pub const ENV_VAR: &str = "MLP_FAULT";

/// One armed fault: a site name, its parameter, and how many times the
/// counting probe has been consulted.
#[derive(Debug)]
struct Armed {
    site: String,
    param: u64,
    occurrences: u64,
}

/// Process-global armed fault. `None` inside the option means "nothing
/// armed"; the outer `Option` distinguishes "not yet initialized from the
/// environment".
static ARMED: Mutex<Option<Option<Armed>>> = Mutex::new(None);

/// Parses a `<site>:<n>` spec. Returns `None` (and the reason) when the
/// spec is malformed.
fn parse_spec(spec: &str) -> Result<(String, u64), &'static str> {
    let Some((site, param)) = spec.rsplit_once(':') else {
        return Err("expected <site>:<n>");
    };
    let site = site.trim();
    if site.is_empty() {
        return Err("empty site name");
    }
    let Ok(param) = param.trim().parse::<u64>() else {
        return Err("parameter is not a non-negative integer");
    };
    Ok((site.to_string(), param))
}

fn with_armed<R>(f: impl FnOnce(&mut Option<Armed>) -> R) -> R {
    let mut guard = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    let slot = guard.get_or_insert_with(|| match std::env::var(ENV_VAR) {
        Ok(spec) => match parse_spec(&spec) {
            Ok((site, param)) => Some(Armed {
                site,
                param,
                occurrences: 0,
            }),
            Err(why) => {
                eprintln!("[mlp-faults] ignoring malformed {ENV_VAR}={spec:?}: {why}");
                None
            }
        },
        Err(_) => None,
    });
    f(slot)
}

/// The armed parameter for `site`, or `None` if the site is not armed.
///
/// Use this for sites whose parameter is a magnitude (a truncation
/// length, a bit offset) rather than an occurrence count.
pub fn param(site: &str) -> Option<u64> {
    with_armed(|armed| match armed {
        Some(a) if a.site == site => Some(a.param),
        _ => None,
    })
}

/// Counts one dynamic occurrence of `site` and panics if it is the armed
/// occurrence (1-based). A no-op unless `site` is armed; an armed
/// parameter of `0` never fires.
///
/// # Panics
///
/// Panics with an `injected fault:` message on the n-th occurrence.
pub fn fire(site: &str) {
    if trip(site) {
        let n = param(site).unwrap_or(0);
        panic!("injected fault: {site}:{n} (occurrence {n})");
    }
}

/// Counts one dynamic occurrence of `site` and returns `true` if it is
/// the armed occurrence (1-based), `false` otherwise. The non-panicking
/// sibling of [`fire`], for sites whose injected effect is behavioural
/// rather than a panic — wedging a worker, corrupting bytes on the way
/// to disk. Always `false` unless `site` is armed; an armed parameter of
/// `0` never trips.
pub fn trip(site: &str) -> bool {
    with_armed(|armed| match armed {
        Some(a) if a.site == site => {
            a.occurrences += 1;
            a.occurrences == a.param
        }
        _ => false,
    })
}

/// Arms `site` with `param` (or disarms everything with `None`),
/// resetting the occurrence counter. Test hook: the environment variable
/// is read once per process, so tests arm faults programmatically.
pub fn set_for_test(spec: Option<(&str, u64)>) {
    let mut guard = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(spec.map(|(site, param)| Armed {
        site: site.to_string(),
        param,
        occurrences: 0,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    // The armed fault is process-global; serialize tests that touch it.
    static LOCK: TestMutex<()> = TestMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_accepts_well_formed_specs() {
        assert_eq!(
            parse_spec("sweep-panic:3"),
            Ok(("sweep-panic".to_string(), 3))
        );
        assert_eq!(
            parse_spec("cursor-truncate:1000"),
            Ok(("cursor-truncate".to_string(), 1000))
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(parse_spec("no-colon").is_err());
        assert!(parse_spec(":3").is_err());
        assert!(parse_spec("site:abc").is_err());
        assert!(parse_spec("site:-1").is_err());
    }

    #[test]
    fn unarmed_probes_are_noops() {
        let _g = lock();
        set_for_test(None);
        assert_eq!(param(SWEEP_PANIC), None);
        fire(SWEEP_PANIC); // must not panic
    }

    #[test]
    fn param_matches_only_the_armed_site() {
        let _g = lock();
        set_for_test(Some((CURSOR_TRUNCATE, 1000)));
        assert_eq!(param(CURSOR_TRUNCATE), Some(1000));
        assert_eq!(param(SWEEP_PANIC), None);
        set_for_test(None);
    }

    #[test]
    fn fire_hits_exactly_the_nth_occurrence() {
        let _g = lock();
        set_for_test(Some((SWEEP_PANIC, 3)));
        fire(SWEEP_PANIC);
        fire(SWEEP_PANIC);
        let hit = std::panic::catch_unwind(|| fire(SWEEP_PANIC));
        assert!(hit.is_err(), "third occurrence must fire");
        // Later occurrences stay quiet: exactly one injected fault.
        fire(SWEEP_PANIC);
        fire(SWEEP_PANIC);
        set_for_test(None);
    }

    #[test]
    fn trip_returns_true_exactly_once() {
        let _g = lock();
        set_for_test(Some((SERVE_JOB_HANG, 2)));
        assert!(!trip(SERVE_JOB_HANG));
        assert!(trip(SERVE_JOB_HANG), "second occurrence must trip");
        assert!(!trip(SERVE_JOB_HANG), "later occurrences stay quiet");
        // Other sites never trip while a different site is armed.
        assert!(!trip(SERVE_IO_ERROR));
        set_for_test(None);
        assert!(!trip(SERVE_CACHE_CORRUPT), "unarmed probes never trip");
    }

    #[test]
    fn zero_parameter_never_fires() {
        let _g = lock();
        set_for_test(Some((SWEEP_PANIC, 0)));
        for _ in 0..8 {
            fire(SWEEP_PANIC);
        }
        set_for_test(None);
    }
}
