//! Branch and value predictors for the MLP simulators.
//!
//! The paper's default front end is modelled faithfully: a 64K-entry
//! gshare direction predictor, a 16K-entry branch target buffer and a
//! 16-entry return address stack ([`BranchPredictor`]), plus the 16K-entry
//! last-value predictor used to predict *missing loads only*
//! ([`LastValuePredictor`], §5.5).
//!
//! Both simulators drive predictors in *observe* style: present the actual
//! dynamic instruction, get back whether the front end would have predicted
//! it correctly, with the tables trained as a side effect. Perfect variants
//! ([`PerfectBranchPredictor`]) support the paper's limit study (§5.6).
//!
//! # Examples
//!
//! ```
//! use mlp_isa::Inst;
//! use mlp_isa::Reg;
//! use mlp_predict::{BranchObserver, BranchPredictor, BranchPredictorConfig};
//!
//! let mut bp = BranchPredictor::new(BranchPredictorConfig::default());
//! let br = Inst::cond_branch(0x100, Reg::int(1), true, 0x4000);
//! // Train the same branch repeatedly: it becomes predictable.
//! for _ in 0..40 { bp.observe(&br); }
//! assert!(!bp.observe(&br)); // not mispredicted any more
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod value;

pub use branch::{
    BranchObserver, BranchPredictor, BranchPredictorConfig, BranchStats, PerfectBranchPredictor,
};
pub use value::{
    HybridValuePredictor, LastValuePredictor, PerfectValuePredictor, StridePredictor,
    ValueObserver, ValuePrediction, ValueStats,
};
