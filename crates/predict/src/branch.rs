use mlp_isa::{BranchInfo, BranchKind, Inst};

/// Geometry of the branch prediction stack.
///
/// Defaults match the paper's §5.1 configuration: 64K-entry gshare,
/// 16K-entry BTB, 16-entry return address stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchPredictorConfig {
    /// Number of 2-bit counters in the gshare table (power of two).
    pub gshare_entries: usize,
    /// Global-history length in bits folded into the gshare index.
    pub history_bits: u32,
    /// Number of branch target buffer entries (power of two).
    pub btb_entries: usize,
    /// Return address stack depth.
    pub ras_entries: usize,
}

impl Default for BranchPredictorConfig {
    fn default() -> BranchPredictorConfig {
        BranchPredictorConfig {
            gshare_entries: 64 * 1024,
            history_bits: 5,
            btb_entries: 16 * 1024,
            ras_entries: 16,
        }
    }
}

/// Counters kept by the branch predictor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Branches observed.
    pub branches: u64,
    /// Branches the front end would have mispredicted (wrong direction or
    /// wrong target).
    pub mispredicts: u64,
}

impl BranchStats {
    /// Misprediction rate in `[0, 1]` (0 when no branches observed).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// Something that can judge, branch by branch, whether the front end
/// predicts it correctly. Implemented by the realistic
/// [`BranchPredictor`] and by [`PerfectBranchPredictor`] for the limit
/// study.
pub trait BranchObserver {
    /// Observes a dynamic branch given its already-decoded parts:
    /// returns `true` if the front end *mispredicts* it, training
    /// internal state as a side effect. This is the primary entry point
    /// — column-oriented engines call it straight off their trace
    /// columns without reconstructing a row-level [`Inst`].
    fn observe_branch(&mut self, pc: u64, info: BranchInfo) -> bool;

    /// Observes the dynamic branch `inst` (which must carry
    /// [`Inst::branch`] info), via [`BranchObserver::observe_branch`].
    fn observe(&mut self, inst: &Inst) -> bool {
        let info = inst
            .branch
            .expect("observe() requires a branch instruction");
        self.observe_branch(inst.pc, info)
    }

    /// Accumulated statistics.
    fn stats(&self) -> BranchStats;
}

/// The realistic front-end predictor: gshare + BTB + RAS.
///
/// * Conditional branches: direction from gshare (2-bit counters indexed
///   by PC ⊕ global history); taken-target from the BTB.
/// * Calls: always predicted taken; target from the BTB; push the return
///   address onto the RAS.
/// * Returns: target from the RAS.
/// * Indirect jumps: target from the BTB.
///
/// A branch is *mispredicted* if the predicted direction differs from the
/// actual one, or the branch is taken and the predicted target is wrong.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    config: BranchPredictorConfig,
    counters: Vec<u8>, // 2-bit saturating
    history: u64,
    btb: Vec<(u64, u64)>, // (tag, target); tag 0 = empty
    ras: Vec<u64>,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Creates a predictor with all counters weakly not-taken and empty
    /// BTB/RAS.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two or are zero.
    pub fn new(config: BranchPredictorConfig) -> BranchPredictor {
        assert!(
            config.gshare_entries.is_power_of_two(),
            "gshare table must be a power of two"
        );
        assert!(
            config.btb_entries.is_power_of_two(),
            "BTB must be a power of two"
        );
        assert!(config.ras_entries > 0, "RAS must have at least one entry");
        BranchPredictor {
            config,
            counters: vec![1; config.gshare_entries], // weakly not-taken
            history: 0,
            btb: vec![(0, 0); config.btb_entries],
            ras: Vec::with_capacity(config.ras_entries),
            stats: BranchStats::default(),
        }
    }

    /// The predictor configuration.
    pub fn config(&self) -> BranchPredictorConfig {
        self.config
    }

    fn gshare_index(&self, pc: u64) -> usize {
        let hist_mask = (1u64 << self.config.history_bits) - 1;
        let idx = (pc >> 2) ^ (self.history & hist_mask);
        (idx as usize) & (self.config.gshare_entries - 1)
    }

    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.config.btb_entries - 1)
    }

    fn btb_lookup(&self, pc: u64) -> Option<u64> {
        let (tag, target) = self.btb[self.btb_index(pc)];
        if tag == pc && pc != 0 {
            Some(target)
        } else {
            None
        }
    }

    fn btb_update(&mut self, pc: u64, target: u64) {
        let idx = self.btb_index(pc);
        self.btb[idx] = (pc, target);
    }

    fn predict_direction(&self, pc: u64) -> bool {
        self.counters[self.gshare_index(pc)] >= 2
    }

    fn train_direction(&mut self, pc: u64, taken: bool) {
        let idx = self.gshare_index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;
    }
}

impl BranchObserver for BranchPredictor {
    fn observe_branch(&mut self, pc: u64, info: BranchInfo) -> bool {
        self.stats.branches += 1;
        let mispredicted = match info.kind {
            BranchKind::Conditional => {
                let pred_taken = self.predict_direction(pc);
                let pred_target = self.btb_lookup(pc);
                self.train_direction(pc, info.taken);
                if info.taken {
                    self.btb_update(pc, info.target);
                }
                pred_taken != info.taken || (info.taken && pred_target != Some(info.target))
            }
            BranchKind::Call => {
                let pred_target = self.btb_lookup(pc);
                self.btb_update(pc, info.target);
                if self.ras.len() == self.config.ras_entries {
                    self.ras.remove(0);
                }
                self.ras.push(pc.wrapping_add(4));
                pred_target != Some(info.target)
            }
            BranchKind::Return => {
                let pred_target = self.ras.pop();
                pred_target != Some(info.target)
            }
            BranchKind::Indirect => {
                let pred_target = self.btb_lookup(pc);
                self.btb_update(pc, info.target);
                pred_target != Some(info.target)
            }
        };
        if mispredicted {
            self.stats.mispredicts += 1;
        }
        mispredicted
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }
}

/// A perfect branch predictor: never mispredicts. Used for the
/// `perfBP` arms of the paper's limit study (Figure 10).
#[derive(Clone, Debug, Default)]
pub struct PerfectBranchPredictor {
    stats: BranchStats,
}

impl PerfectBranchPredictor {
    /// Creates a perfect predictor.
    pub fn new() -> PerfectBranchPredictor {
        PerfectBranchPredictor::default()
    }
}

impl BranchObserver for PerfectBranchPredictor {
    fn observe_branch(&mut self, _pc: u64, _info: BranchInfo) -> bool {
        self.stats.branches += 1;
        false
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_isa::Reg;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(BranchPredictorConfig::default())
    }

    #[test]
    fn monotone_branch_becomes_predictable() {
        let mut p = bp();
        let br = Inst::cond_branch(0x100, Reg::int(1), true, 0x4000);
        // Warm up past the history-register transient (indices shift until
        // the 14-bit global history saturates with 1s).
        for _ in 0..40 {
            p.observe(&br);
        }
        assert!(!p.observe(&br));
        assert!(p.stats().mispredicts >= 1); // the cold predictions
        assert_eq!(p.stats().branches, 41);
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut p = bp();
        let mut late_mis = 0;
        for k in 0..200 {
            let br = Inst::cond_branch(0x300, Reg::int(1), k % 2 == 0, 0x4000);
            let mis = p.observe(&br);
            if k >= 100 && mis {
                late_mis += 1;
            }
        }
        // History-based prediction captures strict alternation.
        assert!(
            late_mis <= 2,
            "gshare should learn alternation, got {late_mis} late mispredicts"
        );
    }

    #[test]
    fn not_taken_branch_predicts_quickly() {
        let mut p = bp();
        let br = Inst::cond_branch(0x200, Reg::int(1), false, 0x4000);
        // counters initialise weakly not-taken: first observation already
        // predicts correctly and there is no target to match.
        assert!(!p.observe(&br));
    }

    #[test]
    fn random_branch_mispredicts_often() {
        let mut p = bp();
        let mut mis = 0;
        let mut lcg: u64 = 0x2545_f491_4f6c_dd1d;
        for _ in 0..400 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (lcg >> 33) & 1 == 1;
            let br = Inst::cond_branch(0x300, Reg::int(1), taken, 0x4000);
            if p.observe(&br) {
                mis += 1;
            }
        }
        assert!(
            mis > 100,
            "random outcomes should defeat any predictor, got {mis}"
        );
    }

    #[test]
    fn call_return_pair_uses_ras() {
        let mut p = bp();
        let call = Inst::call(0x100, 0x4000);
        let ret = Inst::ret(0x4000, 0x104);
        p.observe(&call); // cold BTB: mispredicts the call target
        assert!(!p.observe(&ret), "RAS must predict the matching return");
        assert!(!p.observe(&call), "trained BTB predicts the call");
    }

    #[test]
    fn deep_recursion_overflows_ras() {
        let mut p = BranchPredictor::new(BranchPredictorConfig {
            ras_entries: 2,
            ..BranchPredictorConfig::default()
        });
        // Three nested calls; the first return address is pushed out.
        p.observe(&Inst::call(0x100, 0x1000));
        p.observe(&Inst::call(0x1000, 0x2000));
        p.observe(&Inst::call(0x2000, 0x3000));
        assert!(!p.observe(&Inst::ret(0x3000, 0x2004)));
        assert!(!p.observe(&Inst::ret(0x2000, 0x1004)));
        assert!(
            p.observe(&Inst::ret(0x1000, 0x104)),
            "overflowed entry lost"
        );
    }

    #[test]
    fn indirect_jump_trains_btb() {
        let mut p = bp();
        let j = Inst::indirect(0x500, Reg::int(9), 0x9000);
        assert!(p.observe(&j)); // cold
        assert!(!p.observe(&j)); // trained
        let j2 = Inst::indirect(0x500, Reg::int(9), 0xa000);
        assert!(p.observe(&j2)); // target changed
    }

    #[test]
    fn perfect_never_mispredicts() {
        let mut p = PerfectBranchPredictor::new();
        let br = Inst::cond_branch(0x100, Reg::int(1), true, 0x4000);
        for _ in 0..10 {
            assert!(!p.observe(&br));
        }
        assert_eq!(p.stats().branches, 10);
        assert_eq!(p.stats().mispredicts, 0);
    }

    #[test]
    fn mispredict_rate() {
        let s = BranchStats {
            branches: 10,
            mispredicts: 3,
        };
        assert!((s.mispredict_rate() - 0.3).abs() < 1e-12);
        assert_eq!(BranchStats::default().mispredict_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_config_rejected() {
        let _ = BranchPredictor::new(BranchPredictorConfig {
            gshare_entries: 1000,
            ..BranchPredictorConfig::default()
        });
    }
}
