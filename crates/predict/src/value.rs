/// Outcome of consulting a value predictor for one missing load.
///
/// Matches the three columns of the paper's Table 6 (Correct / Wrong /
/// No Predict).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValuePrediction {
    /// The predictor produced the right value.
    Correct,
    /// The predictor produced a value, but the wrong one.
    Wrong,
    /// The predictor had no entry for this load (no confidence).
    NoPredict,
}

/// Counters matching the paper's Table 6.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValueStats {
    /// Loads predicted with the right value.
    pub correct: u64,
    /// Loads predicted with a wrong value.
    pub wrong: u64,
    /// Loads for which no prediction was made.
    pub no_predict: u64,
}

impl ValueStats {
    /// Total loads observed.
    pub fn total(&self) -> u64 {
        self.correct + self.wrong + self.no_predict
    }

    /// Fraction predicted correctly, as in Table 6 (0 when empty).
    pub fn correct_rate(&self) -> f64 {
        self.rate(self.correct)
    }

    /// Fraction predicted wrongly.
    pub fn wrong_rate(&self) -> f64 {
        self.rate(self.wrong)
    }

    /// Fraction not predicted.
    pub fn no_predict_rate(&self) -> f64 {
        self.rate(self.no_predict)
    }

    fn rate(&self, n: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            n as f64 / t as f64
        }
    }
}

/// A predictor of missing-load values.
///
/// The paper's key observation (§3.6) is that *only missing loads* need
/// value prediction to improve MLP, which keeps the predictor small.
pub trait ValueObserver {
    /// Observes a missing load at `pc` whose actual loaded value is
    /// `actual`: returns how the predictor would have fared, training as a
    /// side effect.
    fn observe(&mut self, pc: u64, actual: u64) -> ValuePrediction;

    /// Accumulated statistics (the paper's Table 6).
    fn stats(&self) -> ValueStats;
}

/// A tagged last-value predictor (the paper's §5.5 configuration:
/// 16K entries, predicting only missing loads).
///
/// Each entry remembers the last value loaded by a PC together with a
/// one-bit confidence: a prediction is only *made* once the same PC has
/// been seen before (so the first encounter is a `NoPredict`, not a
/// `Wrong`).
///
/// # Examples
///
/// ```
/// use mlp_predict::{LastValuePredictor, ValueObserver, ValuePrediction};
///
/// let mut vp = LastValuePredictor::new(16 * 1024);
/// assert_eq!(vp.observe(0x100, 7), ValuePrediction::NoPredict);
/// assert_eq!(vp.observe(0x100, 7), ValuePrediction::Correct);
/// assert_eq!(vp.observe(0x100, 8), ValuePrediction::Wrong);
/// ```
#[derive(Clone, Debug)]
pub struct LastValuePredictor {
    entries: Vec<Option<(u64, u64)>>, // (pc tag, value)
    stats: ValueStats,
}

impl LastValuePredictor {
    /// Creates a predictor with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> LastValuePredictor {
        assert!(
            entries.is_power_of_two(),
            "value predictor size must be a power of two"
        );
        LastValuePredictor {
            entries: vec![None; entries],
            stats: ValueStats::default(),
        }
    }

    /// Number of table entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Consults the table without training (used by simulators that need
    /// to look ahead). Returns the predicted value if an entry for this PC
    /// exists.
    pub fn peek(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, value)) if tag == pc => Some(value),
            _ => None,
        }
    }

    /// Trains the table with the actual value.
    pub fn train(&mut self, pc: u64, actual: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, actual));
    }
}

impl ValueObserver for LastValuePredictor {
    fn observe(&mut self, pc: u64, actual: u64) -> ValuePrediction {
        let outcome = match self.peek(pc) {
            Some(v) if v == actual => ValuePrediction::Correct,
            Some(_) => ValuePrediction::Wrong,
            None => ValuePrediction::NoPredict,
        };
        self.train(pc, actual);
        match outcome {
            ValuePrediction::Correct => self.stats.correct += 1,
            ValuePrediction::Wrong => self.stats.wrong += 1,
            ValuePrediction::NoPredict => self.stats.no_predict += 1,
        }
        outcome
    }

    fn stats(&self) -> ValueStats {
        self.stats
    }
}

/// A stride value predictor: predicts `last + (last − previous)` per PC.
///
/// Complements the last-value predictor on loads whose values advance by
/// a constant step (array walks, sequence numbers). The paper's §3.6
/// argument applies unchanged: only missing loads need prediction, so the
/// table stays small. A prediction is made only once a stable stride has
/// been observed twice (two-delta confidence), so cold or erratic PCs
/// report [`ValuePrediction::NoPredict`] rather than guessing. After one
/// observed delta the predictor commits (a classic reference-prediction
/// table); a broken stride costs one or two wrong predictions before the
/// new stride takes over.
///
/// # Examples
///
/// ```
/// use mlp_predict::{StridePredictor, ValueObserver, ValuePrediction};
///
/// let mut vp = StridePredictor::new(1024);
/// vp.observe(0x40, 100);
/// vp.observe(0x40, 108); // stride 8 seen once
/// assert_eq!(vp.observe(0x40, 116), ValuePrediction::Correct);
/// assert_eq!(vp.observe(0x40, 124), ValuePrediction::Correct);
/// ```
#[derive(Clone, Debug)]
pub struct StridePredictor {
    entries: Vec<Option<StrideEntry>>,
    stats: ValueStats,
}

#[derive(Clone, Copy, Debug)]
struct StrideEntry {
    tag: u64,
    last: u64,
    stride: u64,
    confident: bool,
}

impl StridePredictor {
    /// Creates a predictor with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> StridePredictor {
        assert!(
            entries.is_power_of_two(),
            "stride predictor size must be a power of two"
        );
        StridePredictor {
            entries: vec![None; entries],
            stats: ValueStats::default(),
        }
    }

    /// Number of table entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Consults the table without training.
    pub fn peek(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some(e) if e.tag == pc && e.confident => Some(e.last.wrapping_add(e.stride)),
            _ => None,
        }
    }

    /// Trains the table with the actual value.
    pub fn train(&mut self, pc: u64, actual: u64) {
        let idx = self.index(pc);
        let entry = &mut self.entries[idx];
        match entry {
            Some(e) if e.tag == pc => {
                e.stride = actual.wrapping_sub(e.last);
                e.last = actual;
                e.confident = true; // one observed delta establishes a prediction
            }
            _ => {
                *entry = Some(StrideEntry {
                    tag: pc,
                    last: actual,
                    stride: 0,
                    confident: false,
                });
            }
        }
    }
}

impl ValueObserver for StridePredictor {
    fn observe(&mut self, pc: u64, actual: u64) -> ValuePrediction {
        let outcome = match self.peek(pc) {
            Some(v) if v == actual => ValuePrediction::Correct,
            Some(_) => ValuePrediction::Wrong,
            None => ValuePrediction::NoPredict,
        };
        self.train(pc, actual);
        match outcome {
            ValuePrediction::Correct => self.stats.correct += 1,
            ValuePrediction::Wrong => self.stats.wrong += 1,
            ValuePrediction::NoPredict => self.stats.no_predict += 1,
        }
        outcome
    }

    fn stats(&self) -> ValueStats {
        self.stats
    }
}

/// A hybrid last-value + stride predictor with per-PC chooser counters,
/// after Wang & Franklin's hybrid scheme (the paper's reference \[18\]).
///
/// Both components train on every observation; the 2-bit chooser tracks
/// which one has been right more often for this PC and selects whose
/// prediction to use.
///
/// # Examples
///
/// ```
/// use mlp_predict::{HybridValuePredictor, ValueObserver, ValuePrediction};
///
/// let mut vp = HybridValuePredictor::new(1024);
/// // A striding PC trains the chooser toward the stride component.
/// for k in 0..6u64 { vp.observe(0x80, 100 + 8 * k); }
/// assert_eq!(vp.observe(0x80, 148), ValuePrediction::Correct);
/// ```
#[derive(Clone, Debug)]
pub struct HybridValuePredictor {
    last: LastValuePredictor,
    stride: StridePredictor,
    chooser: Vec<u8>, // 2-bit: >=2 prefers stride
    stats: ValueStats,
}

impl HybridValuePredictor {
    /// Creates a hybrid predictor with `entries` slots per component.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> HybridValuePredictor {
        HybridValuePredictor {
            last: LastValuePredictor::new(entries),
            stride: StridePredictor::new(entries),
            chooser: vec![1; entries],
            stats: ValueStats::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.chooser.len() - 1)
    }
}

impl ValueObserver for HybridValuePredictor {
    fn observe(&mut self, pc: u64, actual: u64) -> ValuePrediction {
        let lv = self.last.peek(pc);
        let st = self.stride.peek(pc);
        let idx = self.index(pc);
        let use_stride = self.chooser[idx] >= 2;
        let chosen = if use_stride { st.or(lv) } else { lv.or(st) };
        let outcome = match chosen {
            Some(v) if v == actual => ValuePrediction::Correct,
            Some(_) => ValuePrediction::Wrong,
            None => ValuePrediction::NoPredict,
        };
        // Train the chooser on component disagreement.
        let lv_right = lv == Some(actual);
        let st_right = st == Some(actual);
        let c = &mut self.chooser[idx];
        if st_right && !lv_right {
            *c = (*c + 1).min(3);
        } else if lv_right && !st_right {
            *c = c.saturating_sub(1);
        }
        self.last.train(pc, actual);
        self.stride.train(pc, actual);
        match outcome {
            ValuePrediction::Correct => self.stats.correct += 1,
            ValuePrediction::Wrong => self.stats.wrong += 1,
            ValuePrediction::NoPredict => self.stats.no_predict += 1,
        }
        outcome
    }

    fn stats(&self) -> ValueStats {
        self.stats
    }
}

/// A perfect value predictor: always correct. Used for the `perfVP` arms
/// of the paper's limit study (Figure 10).
#[derive(Clone, Debug, Default)]
pub struct PerfectValuePredictor {
    stats: ValueStats,
}

impl PerfectValuePredictor {
    /// Creates a perfect value predictor.
    pub fn new() -> PerfectValuePredictor {
        PerfectValuePredictor::default()
    }
}

impl ValueObserver for PerfectValuePredictor {
    fn observe(&mut self, _pc: u64, _actual: u64) -> ValuePrediction {
        self.stats.correct += 1;
        ValuePrediction::Correct
    }

    fn stats(&self) -> ValueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sight_is_no_predict() {
        let mut vp = LastValuePredictor::new(16);
        assert_eq!(vp.observe(0x100, 1), ValuePrediction::NoPredict);
    }

    #[test]
    fn stable_value_predicts() {
        let mut vp = LastValuePredictor::new(16);
        vp.observe(0x100, 42);
        for _ in 0..5 {
            assert_eq!(vp.observe(0x100, 42), ValuePrediction::Correct);
        }
        let s = vp.stats();
        assert_eq!(s.correct, 5);
        assert_eq!(s.no_predict, 1);
    }

    #[test]
    fn changing_value_is_wrong_then_retrains() {
        let mut vp = LastValuePredictor::new(16);
        vp.observe(0x100, 1);
        assert_eq!(vp.observe(0x100, 2), ValuePrediction::Wrong);
        assert_eq!(vp.observe(0x100, 2), ValuePrediction::Correct);
    }

    #[test]
    fn aliasing_pcs_evict() {
        let mut vp = LastValuePredictor::new(16);
        // Two PCs 16*4 bytes apart share an index but have different tags.
        vp.observe(0x100, 1);
        vp.observe(0x100 + 16 * 4, 9); // evicts the 0x100 entry
        assert_eq!(vp.observe(0x100, 1), ValuePrediction::NoPredict);
    }

    #[test]
    fn peek_does_not_train() {
        let mut vp = LastValuePredictor::new(16);
        assert_eq!(vp.peek(0x100), None);
        vp.train(0x100, 5);
        assert_eq!(vp.peek(0x100), Some(5));
        assert_eq!(vp.stats().total(), 0);
    }

    #[test]
    fn perfect_is_always_correct() {
        let mut vp = PerfectValuePredictor::new();
        assert_eq!(vp.observe(0x1, 123), ValuePrediction::Correct);
        assert_eq!(vp.stats().correct_rate(), 1.0);
    }

    #[test]
    fn rates_sum_to_one() {
        let mut vp = LastValuePredictor::new(16);
        vp.observe(0x100, 1);
        vp.observe(0x100, 1);
        vp.observe(0x100, 2);
        let s = vp.stats();
        let sum = s.correct_rate() + s.wrong_rate() + s.no_predict_rate();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        let _ = LastValuePredictor::new(1000);
    }

    #[test]
    fn stride_learns_after_two_deltas() {
        let mut vp = StridePredictor::new(16);
        assert_eq!(vp.observe(0x40, 100), ValuePrediction::NoPredict);
        assert_eq!(vp.observe(0x40, 108), ValuePrediction::NoPredict);
        assert_eq!(vp.observe(0x40, 116), ValuePrediction::Correct);
        assert_eq!(vp.observe(0x40, 999), ValuePrediction::Wrong);
        // One wrong guess while the new delta settles, then correct again.
        assert_eq!(vp.observe(0x40, 1007), ValuePrediction::Wrong);
        assert_eq!(vp.observe(0x40, 1015), ValuePrediction::Correct);
    }

    #[test]
    fn stride_zero_is_last_value_behaviour() {
        let mut vp = StridePredictor::new(16);
        vp.observe(0x40, 7);
        vp.observe(0x40, 7);
        assert_eq!(vp.observe(0x40, 7), ValuePrediction::Correct);
    }

    #[test]
    fn stride_handles_wrapping_deltas() {
        let mut vp = StridePredictor::new(16);
        vp.observe(0x40, u64::MAX - 4);
        vp.observe(0x40, 3); // stride 8 across the wrap
        assert_eq!(vp.observe(0x40, 11), ValuePrediction::Correct);
    }

    #[test]
    fn stride_peek_does_not_train() {
        let mut vp = StridePredictor::new(16);
        assert_eq!(vp.peek(0x40), None);
        vp.train(0x40, 10);
        vp.train(0x40, 20);
        vp.train(0x40, 30);
        assert_eq!(vp.peek(0x40), Some(40));
        assert_eq!(vp.stats().total(), 0);
        assert_eq!(vp.capacity(), 16);
    }

    #[test]
    fn hybrid_beats_both_components_on_mixed_pcs() {
        let mut hybrid = HybridValuePredictor::new(64);
        let mut last = LastValuePredictor::new(64);
        let mut stride = StridePredictor::new(64);
        // PC 0x100 strides; PC 0x200 repeats; interleaved.
        let mut h = 0u64;
        let mut l = 0u64;
        let mut st = 0u64;
        for k in 0..200u64 {
            for (pc, v) in [(0x100u64, 100 + 8 * k), (0x204u64, 42)] {
                if hybrid.observe(pc, v) == ValuePrediction::Correct {
                    h += 1;
                }
                if last.observe(pc, v) == ValuePrediction::Correct {
                    l += 1;
                }
                if stride.observe(pc, v) == ValuePrediction::Correct {
                    st += 1;
                }
            }
        }
        assert!(h >= l, "hybrid {h} vs last {l}");
        assert!(h >= st, "hybrid {h} vs stride {st}");
        assert!(h > 350, "hybrid should get nearly everything ({h}/400)");
    }

    #[test]
    fn hybrid_rates_form_distribution() {
        let mut vp = HybridValuePredictor::new(16);
        vp.observe(0x10, 1);
        vp.observe(0x10, 2);
        vp.observe(0x10, 3);
        let s = vp.stats();
        let sum = s.correct_rate() + s.wrong_rate() + s.no_predict_rate();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn stride_bad_size_rejected() {
        let _ = StridePredictor::new(100);
    }
}
