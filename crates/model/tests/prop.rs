//! Property tests of the §2.2 CPI model's algebraic laws, and of the
//! `mlp-obs` counter invariants the instrumented engines must uphold on
//! arbitrary inputs.
//!
//! The model half needs no fixtures: the laws (monotonicity in MLP, the
//! closed form at MLP = 1, the on-chip floor, the `from_measured`
//! round-trip) hold for *every* valid parameterisation, which is
//! exactly what example-based tests cannot say. The obs half drives the
//! real memory hierarchy and MLPsim over random inputs with counters
//! armed and checks the structural identities the counters must satisfy
//! (demand accesses conserved across levels, counters equal to the
//! engine's own report).

use mlp_model::CpiModel;
use proptest::prelude::*;
use std::sync::Mutex;

/// Random but physically sensible model parameters: the strategies span
/// compute-bound (`miss_rate` near 0) to memory-bound (tens of misses
/// per 1000 instructions at 1000-cycle latency) regimes.
fn arb_model() -> impl Strategy<Value = CpiModel> {
    (
        0.3f64..3.0,      // cpi_perf
        0.0f64..=1.0,     // overlap_cm
        0.0f64..0.05,     // miss_rate
        100.0f64..1500.0, // miss_penalty
    )
        .prop_map(|(cpi_perf, overlap_cm, miss_rate, miss_penalty)| CpiModel {
            cpi_perf,
            overlap_cm,
            miss_rate,
            miss_penalty,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// More MLP never hurts: CPI is non-increasing in MLP (the model's
    /// whole premise — off-chip time divides by the overlap factor).
    #[test]
    fn cpi_is_monotone_non_increasing_in_mlp(
        m in arb_model(),
        mlp in 1.0f64..16.0,
        delta in 0.0f64..16.0,
    ) {
        prop_assert!(m.cpi(mlp + delta) <= m.cpi(mlp) + 1e-12);
    }

    /// At MLP = 1 (fully serialized misses) the model collapses to the
    /// closed form `CPI_perf·(1−Overlap_CM) + MissRate·MissPenalty`.
    #[test]
    fn mlp_of_one_matches_the_closed_form(m in arb_model()) {
        let want = m.cpi_perf * (1.0 - m.overlap_cm) + m.miss_rate * m.miss_penalty;
        prop_assert!((m.cpi(1.0) - want).abs() < 1e-9 * want.max(1.0));
    }

    /// No amount of MLP beats a perfect cache: CPI never drops below the
    /// on-chip component `CPI_perf·(1−Overlap_CM)`.
    #[test]
    fn cpi_never_beats_the_on_chip_floor(m in arb_model(), mlp in 1.0f64..1e6) {
        prop_assert!(m.cpi(mlp) >= m.cpi_on_chip() - 1e-12);
    }

    /// The two components partition the total.
    #[test]
    fn components_partition_the_cpi(m in arb_model(), mlp in 1.0f64..32.0) {
        let total = m.cpi(mlp);
        prop_assert!((total - m.cpi_on_chip() - m.cpi_off_chip(mlp)).abs() <= 1e-12 * total);
    }

    /// The §2.2 workflow round-trips: measuring the CPI a model predicts
    /// and solving back for `Overlap_CM` recovers the model exactly
    /// (within float error) whenever the overlap is interior.
    #[test]
    fn from_measured_round_trips(m in arb_model(), mlp in 1.0f64..16.0) {
        let cpi = m.cpi(mlp);
        let back = CpiModel::from_measured(cpi, m.cpi_perf, m.miss_rate, m.miss_penalty, mlp);
        prop_assert!((back.overlap_cm - m.overlap_cm).abs() < 1e-7,
            "overlap {} -> {}", m.overlap_cm, back.overlap_cm);
        prop_assert!((back.cpi(mlp) - cpi).abs() < 1e-7 * cpi);
    }

    /// `from_measured` never produces an overlap outside `[0, 1]`, no
    /// matter how inconsistent the "measurements" are.
    #[test]
    fn from_measured_always_clamps(
        cpi in 0.01f64..100.0,
        cpi_perf in 0.01f64..10.0,
        miss_rate in 0.0f64..0.1,
        miss_penalty in 1.0f64..2000.0,
        mlp in 1.0f64..16.0,
    ) {
        let m = CpiModel::from_measured(cpi, cpi_perf, miss_rate, miss_penalty, mlp);
        prop_assert!((0.0..=1.0).contains(&m.overlap_cm), "overlap {}", m.overlap_cm);
    }

    /// Improving MLP never reports a slowdown (Figure 11's metric is
    /// non-negative whenever `mlp_new ≥ mlp_base`).
    #[test]
    fn improvement_is_non_negative_for_higher_mlp(
        m in arb_model(),
        base in 1.0f64..8.0,
        gain in 0.0f64..8.0,
    ) {
        prop_assert!(m.improvement_pct(base, base + gain) >= -1e-9);
    }
}

// ---------------------------------------------------------------------
// Observability invariants: the mlp-obs counters flushed by the engines
// must satisfy the same conservation laws as the structures they mirror.
// ---------------------------------------------------------------------

use mlp_isa::SliceTrace;
use mlp_mem::{Hierarchy, HierarchyConfig};
use mlp_obs::Mode;
use mlp_workloads::micro;
use mlpsim::{MlpsimConfig, Simulator};

/// The obs mode and counter registry are process-global; every armed
/// test serializes on this and drains the registry before starting.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// One random hierarchy operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    Ifetch(u64),
    Load(u64),
    Store(u64),
    Prefetch(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // A few thousand distinct lines against a 32 KB L1: enough reuse for
    // hits, enough spread for misses and evictions.
    let addr = (0u64..0x4_0000).prop_map(|a| a << 6);
    (0u8..4, addr).prop_map(|(k, a)| match k {
        0 => Op::Ifetch(a),
        1 => Op::Load(a),
        2 => Op::Store(a),
        _ => Op::Prefetch(a),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Demand accesses are conserved across levels: every L1 demand miss
    /// probes the L2 exactly once (prefetches fill without counting), the
    /// TLB sees every operation, and each level's hits+misses equals the
    /// demand accesses it was offered.
    #[test]
    fn hierarchy_counters_conserve_demand_accesses(
        ops in proptest::collection::vec(arb_op(), 1..600),
    ) {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        mlp_obs::set_for_test(Some(Mode::Counters));
        let _ = mlp_obs::snapshot_and_reset();

        let mut mem = Hierarchy::new(HierarchyConfig::default());
        let (mut ifetches, mut demand_data) = (0u64, 0u64);
        for op in &ops {
            match *op {
                Op::Ifetch(a) => { mem.ifetch(a); ifetches += 1; }
                Op::Load(a) => { mem.load(a); demand_data += 1; }
                Op::Store(a) => { mem.store(a); demand_data += 1; }
                Op::Prefetch(a) => { mem.prefetch(a); }
            }
        }
        mem.flush_obs();
        let s = mlp_obs::snapshot_and_reset();
        mlp_obs::set_for_test(None);

        let level = |l: &str| {
            (s.counter(&format!("mem.{l}.hits")), s.counter(&format!("mem.{l}.misses")))
        };
        let (l1i_h, l1i_m) = level("l1i");
        let (l1d_h, l1d_m) = level("l1d");
        let (l2_h, l2_m) = level("l2");
        prop_assert_eq!(l1i_h + l1i_m, ifetches, "L1I sees every ifetch");
        prop_assert_eq!(l1d_h + l1d_m, demand_data, "L1D sees every load/store");
        prop_assert_eq!(l2_h + l2_m, l1i_m + l1d_m, "L2 sees exactly the L1 misses");
        prop_assert_eq!(
            s.counter("mem.tlb.hits") + s.counter("mem.tlb.misses"),
            ops.len() as u64,
            "TLB sees every operation"
        );
        // Evictions require fills; fills require misses somewhere.
        if s.counter("mem.l2.evictions") > 0 {
            prop_assert!(l2_m + s.counter("mem.tlb.misses") > 0);
        }
    }

    /// The counters MLPsim flushes are the report, not an approximation
    /// of it — and epochs exist exactly when off-chip accesses do.
    #[test]
    fn mlpsim_counters_equal_its_report(seed in any::<u64>(), len in 1usize..300) {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        mlp_obs::set_for_test(Some(Mode::Counters));
        let _ = mlp_obs::snapshot_and_reset();

        let t = micro::random_trace(seed, len);
        let r = Simulator::new(MlpsimConfig::default())
            .run(&mut SliceTrace::new(&t), 0, u64::MAX);
        let s = mlp_obs::snapshot_and_reset();
        mlp_obs::set_for_test(None);

        prop_assert_eq!(s.counter("mlpsim.insts"), r.insts);
        prop_assert_eq!(s.counter("mlpsim.epochs"), r.epochs);
        prop_assert_eq!(s.counter("mlpsim.offchip.useful"), r.offchip.total());
        prop_assert_eq!(s.counter("mlpsim.offchip.dmiss"), r.offchip.dmiss);
        prop_assert_eq!(s.counter("mlpsim.offchip.imiss"), r.offchip.imiss);
        prop_assert_eq!(s.counter("mlpsim.offchip.pmiss"), r.offchip.pmiss);
        prop_assert_eq!(s.counter("mlpsim.runs"), 1);
        // An epoch is a group of ≥1 useful off-chip accesses: they exist
        // exactly when off-chip accesses do.
        prop_assert_eq!(r.epochs >= 1, r.offchip.total() > 0);
        prop_assert!(r.epochs <= r.offchip.total());
    }

    /// With the switchboard off the same runs touch no counter at all —
    /// the zero-overhead contract at property-test granularity.
    #[test]
    fn disarmed_runs_record_nothing(seed in any::<u64>(), len in 1usize..120) {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        mlp_obs::set_for_test(Some(Mode::Off));
        let _ = mlp_obs::snapshot_and_reset();
        let t = micro::random_trace(seed, len);
        let _ = Simulator::new(MlpsimConfig::default())
            .run(&mut SliceTrace::new(&t), 0, u64::MAX);
        let empty = mlp_obs::snapshot_and_reset().is_empty();
        mlp_obs::set_for_test(None);
        prop_assert!(empty, "disarmed run must leave every counter at zero");
    }
}
