//! The analytic MLP/CPI performance model of the paper's §2.2.
//!
//! The model relates average MLP to overall execution time:
//!
//! ```text
//! CPI = CPI_perf · (1 − Overlap_CM) + MissRate · MissPenalty / MLP
//! ```
//!
//! where `CPI_perf` is the CPI with a perfect furthest on-chip cache,
//! `Overlap_CM` is the fractional overlap of compute cycles with off-chip
//! cycles, `MissRate` is off-chip accesses per instruction and
//! `MissPenalty` the off-chip latency. The first term is the *on-chip*
//! CPI, the second the *off-chip* CPI.
//!
//! The workflow mirrors the paper's: measure `CPI` and `MLP` with the
//! cycle-accurate simulator, measure `CPI_perf` with a perfect L2, derive
//! `Overlap_CM` from the equation ([`CpiModel::from_measured`]), then
//! *predict* the CPI of other configurations from their MLPsim-measured
//! MLP alone ([`CpiModel::cpi`]) — validated to within 2% in the paper's
//! Table 4 and reproduced in this workspace's Table 4 experiment.
//!
//! # Examples
//!
//! The worked example of the paper's Figure 1 (570 total cycles, 200 of
//! perfect-cache execution, three 200-cycle misses, MLP = 1.463,
//! Overlap_CM = 0.2):
//!
//! ```
//! use mlp_model::CpiModel;
//!
//! // Per-"instruction" bookkeeping with one instruction per cycle of
//! // perfect execution: 200 insts, CPI_perf = 1.
//! let model = CpiModel {
//!     cpi_perf: 1.0,
//!     overlap_cm: 0.2,
//!     miss_rate: 3.0 / 200.0,
//!     miss_penalty: 200.0,
//! };
//! let cpi = model.cpi(1.463);
//! assert!((cpi * 200.0 - 570.0).abs() < 1.0); // ≈ 570 total cycles
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The paper's CPI decomposition (§2.2, second equation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpiModel {
    /// CPI with a perfect furthest on-chip cache.
    pub cpi_perf: f64,
    /// Fractional overlap of compute with off-chip time, in `[0, 1]`.
    pub overlap_cm: f64,
    /// Off-chip accesses per instruction.
    pub miss_rate: f64,
    /// Off-chip access latency in cycles.
    pub miss_penalty: f64,
}

impl CpiModel {
    /// Predicted overall CPI at the given average MLP.
    ///
    /// # Panics
    ///
    /// Panics if `mlp < 1.0` (MLP is defined as at least one outstanding
    /// access).
    pub fn cpi(&self, mlp: f64) -> f64 {
        assert!(mlp >= 1.0, "MLP is at least 1 by definition, got {mlp}");
        self.cpi_on_chip() + self.cpi_off_chip(mlp)
    }

    /// The on-chip CPI component, `CPI_perf · (1 − Overlap_CM)`.
    pub fn cpi_on_chip(&self) -> f64 {
        self.cpi_perf * (1.0 - self.overlap_cm)
    }

    /// The off-chip CPI component, `MissRate · MissPenalty / MLP`.
    pub fn cpi_off_chip(&self, mlp: f64) -> f64 {
        self.miss_rate * self.miss_penalty / mlp
    }

    /// Builds the model from cycle-accurate measurements by solving the
    /// equation for `Overlap_CM` (the paper's §2.2 workflow):
    ///
    /// ```text
    /// Overlap_CM = 1 − (CPI − MissRate·MissPenalty/MLP) / CPI_perf
    /// ```
    ///
    /// The result is clamped to `[0, 1]`: measurement noise on nearly
    /// memory-free workloads can push the raw value slightly outside.
    pub fn from_measured(
        cpi: f64,
        cpi_perf: f64,
        miss_rate: f64,
        miss_penalty: f64,
        mlp: f64,
    ) -> CpiModel {
        let off = miss_rate * miss_penalty / mlp;
        let overlap = 1.0 - (cpi - off) / cpi_perf;
        CpiModel {
            cpi_perf,
            overlap_cm: overlap.clamp(0.0, 1.0),
            miss_rate,
            miss_penalty,
        }
    }

    /// Relative performance improvement (in percent) of achieving
    /// `mlp_new` over `mlp_base`, everything else equal — the metric of
    /// the paper's Figure 11.
    pub fn improvement_pct(&self, mlp_base: f64, mlp_new: f64) -> f64 {
        100.0 * (self.cpi(mlp_base) / self.cpi(mlp_new) - 1.0)
    }
}

/// Percentage difference of `estimated` relative to `measured` — used by
/// the Table 4 validation.
pub fn pct_error(estimated: f64, measured: f64) -> f64 {
    100.0 * (estimated - measured) / measured
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_1_model() -> CpiModel {
        CpiModel {
            cpi_perf: 1.0,
            overlap_cm: 0.2,
            miss_rate: 3.0 / 200.0,
            miss_penalty: 200.0,
        }
    }

    #[test]
    fn figure_1_example_reproduces() {
        // Paper Figure 1: 570 cycles total over 200 instructions.
        let cycles = figure_1_model().cpi(1.463) * 200.0;
        assert!((cycles - 570.0).abs() < 1.0, "got {cycles}");
    }

    #[test]
    fn components_sum() {
        let m = figure_1_model();
        let mlp = 1.3;
        assert!((m.cpi(mlp) - m.cpi_on_chip() - m.cpi_off_chip(mlp)).abs() < 1e-12);
    }

    #[test]
    fn from_measured_round_trips() {
        let m = figure_1_model();
        let mlp = 1.463;
        let cpi = m.cpi(mlp);
        let back = CpiModel::from_measured(cpi, m.cpi_perf, m.miss_rate, m.miss_penalty, mlp);
        assert!((back.overlap_cm - m.overlap_cm).abs() < 1e-9);
        assert!((back.cpi(mlp) - cpi).abs() < 1e-9);
    }

    #[test]
    fn overlap_is_clamped() {
        // A CPI lower than the off-chip component alone would give a
        // nonsensical overlap > 1.
        let m = CpiModel::from_measured(0.5, 1.0, 0.01, 1000.0, 1.0);
        assert!(m.overlap_cm <= 1.0);
        let m = CpiModel::from_measured(100.0, 1.0, 0.001, 100.0, 1.0);
        assert!(m.overlap_cm >= 0.0);
    }

    #[test]
    fn doubling_mlp_halves_off_chip_cpi() {
        let m = figure_1_model();
        assert!((m.cpi_off_chip(2.0) * 2.0 - m.cpi_off_chip(1.0)).abs() < 1e-12);
    }

    #[test]
    fn improvement_pct_is_positive_for_higher_mlp() {
        let m = figure_1_model();
        let imp = m.improvement_pct(1.0, 2.0);
        assert!(imp > 0.0);
        assert!(imp < 200.0);
    }

    #[test]
    fn pct_error_signs() {
        assert!((pct_error(102.0, 100.0) - 2.0).abs() < 1e-12);
        assert!((pct_error(98.0, 100.0) + 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unity_mlp_rejected() {
        figure_1_model().cpi(0.5);
    }
}
