//! Ordered parallel map for the experiment sweep engine.
//!
//! Every figure/table in the paper is a sweep of independent simulator
//! runs, so the parallelism we need is exactly "map a pure function over a
//! job list and keep the order". [`try_par_map`] does that with
//! `std::thread::scope`: workers claim job indices from a shared atomic
//! counter (so long jobs do not convoy short ones) and send
//! `(index, result)` pairs back over a channel; the caller reassembles
//! them in input order. Output is therefore byte-identical to a serial map
//! regardless of scheduling.
//!
//! **Failure containment:** each job runs under `catch_unwind`, so one
//! panicking sweep point cannot take down the batch — [`try_par_map`]
//! returns `Vec<Result<R, JobPanic>>` with every slot present and in
//! input order, a failed slot carrying the job index and panic message.
//! [`par_map`] is the thin infallible wrapper: it re-raises the first
//! failure (after every job has finished) for callers that treat any
//! panic as fatal. The [`mlp_faults::SWEEP_PANIC`] injection site is
//! probed at the start of every job, so fault tests can make an arbitrary
//! sweep job panic deterministically.
//!
//! Thread count: [`set_thread_override`] (used by tests) takes precedence,
//! then the `MLP_THREADS` environment variable, then
//! `std::thread::available_parallelism()`. An invalid `MLP_THREADS` value
//! (zero, negative, non-numeric) is rejected with a one-time stderr
//! warning instead of being silently ignored. With one thread (or one
//! job) the map runs inline on the caller with no thread or channel
//! overhead.
//!
//! Built on the standard library rather than an external pool (e.g. rayon)
//! because the build environment cannot fetch crates; the sweep layer only
//! needs this one primitive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// Programmatic thread-count override; `0` means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Whether the invalid-`MLP_THREADS` warning has already been printed.
static WARNED_BAD_THREADS: AtomicBool = AtomicBool::new(false);

/// Force the worker count (`Some(n)`) or restore automatic selection
/// (`None`). Used by the parallel-equals-serial regression tests; normal
/// callers configure threads with the `MLP_THREADS` environment variable.
pub fn set_thread_override(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Number of worker threads a sweep will use right now.
///
/// Precedence: [`set_thread_override`], then `MLP_THREADS`, then
/// [`available_threads`]. An `MLP_THREADS` value that is not a positive
/// integer is rejected with a one-time stderr warning naming the value
/// and the fallback.
pub fn thread_count() -> usize {
    let forced = OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("MLP_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => {
                if !WARNED_BAD_THREADS.swap(true, Ordering::SeqCst) {
                    eprintln!(
                        "[mlp-par] ignoring invalid MLP_THREADS={v:?} (want a positive \
                         integer); falling back to {} available thread(s)",
                        available_threads()
                    );
                }
            }
        }
    }
    available_threads()
}

/// The host's available parallelism (ignoring overrides).
pub fn available_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A sweep job that panicked instead of returning a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job in the input slice.
    pub index: usize,
    /// The panic payload, stringified (`&str` / `String` payloads are
    /// preserved verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Placeholder message for panic payloads that are not `&str`/`String`.
///
/// `std::panic::panic_any` lets code throw arbitrary types; every
/// containment layer in the workspace funnels such payloads through
/// [`panic_message`], so they all report this exact marker (plus the job
/// index, via [`JobPanic`]'s `Display`) instead of each inventing its own
/// wording.
pub const NON_STRING_PANIC: &str = "<non-string panic>";

/// Stringifies a `catch_unwind` payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        NON_STRING_PANIC.to_string()
    }
}

/// Runs job `i` under `catch_unwind`, probing the `sweep-panic` fault
/// injection site first so injected and organic panics take the same
/// containment path.
fn run_job<T, R, F>(items: &[T], f: &F, i: usize) -> Result<R, JobPanic>
where
    F: Fn(&T) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        mlp_faults::fire(mlp_faults::SWEEP_PANIC);
        f(&items[i])
    }))
    .map_err(|payload| JobPanic {
        index: i,
        message: panic_message(payload),
    })
}

/// Map `f` over `items` in parallel with per-job panic containment,
/// returning one slot per input item, in input order.
///
/// Every slot is always present: a job that panics yields
/// `Err(JobPanic)` in its slot while every other job still runs to
/// completion. `Ok` slots are identical to a serial
/// `items.iter().map(f)` for any pure `f`.
pub fn try_par_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, JobPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 {
        return (0..items.len()).map(|i| run_job(items, &f, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<R, JobPanic>)>();
    let mut slots: Vec<Option<Result<R, JobPanic>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = run_job(items, f, i);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Drain while workers run; ends when the last sender drops.
        // Workers never unwind (jobs are caught), so every claimed index
        // sends exactly one slot.
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });

    slots
        .into_iter()
        .map(|r| r.expect("every job index was claimed exactly once"))
        .collect()
}

/// Map `f` over `items` in parallel, returning results in input order.
///
/// Results are identical to `items.iter().map(f).collect()` for any pure
/// `f`. Thin infallible wrapper over [`try_par_map`]: if any job
/// panicked, the first failure (by job index) is re-raised *after* every
/// job has finished, so one bad sweep point no longer cancels its
/// siblings mid-flight.
///
/// # Panics
///
/// Panics with the original job's panic message if any job panicked.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_par_map(items, f)
        .into_iter()
        .map(|slot| match slot {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        })
        .collect()
}

/// [`par_map`] over an owned `Vec`, consuming the items.
pub fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map(&items, f)
}

/// Outcome of running one closure under [`supervised`].
#[derive(Debug)]
pub enum Supervised<R> {
    /// The closure returned normally.
    Finished(R),
    /// The closure panicked; the payload is stringified with
    /// [`panic_message`].
    Panicked(String),
    /// The closure did not finish within the deadline. Its thread is
    /// *detached*, not killed — safe Rust cannot cancel a running
    /// thread — so the closure may still be executing in the background.
    TimedOut,
}

/// Runs `f` on a fresh thread and waits at most `deadline` for it to
/// finish, containing panics.
///
/// This is the watchdog primitive under `mlp-serve`'s per-job deadline
/// enforcement: the supervising thread blocks on a channel with
/// `recv_timeout`, so a wedged closure costs the caller exactly the
/// deadline and never a hang. On timeout the worker thread is detached
/// (it keeps running until it finishes or the process exits), which is
/// why `f` must own everything it touches (`'static`) — it can outlive
/// the caller's stack frame.
pub fn supervised<R, F>(deadline: Duration, f: F) -> Supervised<R>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<Result<R, String>>();
    let handle = thread::Builder::new()
        .name("mlp-par-supervised".into())
        .spawn(move || {
            let out = catch_unwind(AssertUnwindSafe(f)).map_err(panic_message);
            // The supervisor may have given up already; a dead receiver
            // just means the result is dropped with the thread.
            let _ = tx.send(out);
        })
        .expect("spawning a supervised worker thread");
    match rx.recv_timeout(deadline) {
        Ok(Ok(r)) => {
            let _ = handle.join();
            Supervised::Finished(r)
        }
        Ok(Err(msg)) => {
            let _ = handle.join();
            Supervised::Panicked(msg)
        }
        Err(_) => Supervised::TimedOut,
    }
}

/// Why a deadline-supervised job produced no result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobFailure {
    /// The job panicked (contained, message preserved).
    Panic(JobPanic),
    /// The job exceeded its wall-clock deadline and was abandoned.
    Timeout {
        /// Index of the job in the input slice.
        index: usize,
        /// The deadline it exceeded.
        deadline: Duration,
    },
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Panic(p) => write!(f, "{p}"),
            JobFailure::Timeout { index, deadline } => write!(
                f,
                "sweep job {index} exceeded its {}ms deadline",
                deadline.as_millis()
            ),
        }
    }
}

impl std::error::Error for JobFailure {}

/// [`try_par_map`] with a per-job wall-clock deadline.
///
/// Each job runs on its own [`supervised`] thread: a job that panics
/// yields `Err(JobFailure::Panic)` in its slot, a job that outlives
/// `deadline` yields `Err(JobFailure::Timeout)` and its thread is
/// detached, and every other job still runs to completion, in input
/// order. Because a timed-out job's thread can outlive this call, the
/// items and closure are owned (`Clone`/`'static`) rather than borrowed —
/// the abandoned thread keeps its own copies.
pub fn try_par_map_deadline<T, R, F>(
    items: &[T],
    deadline: Duration,
    f: F,
) -> Vec<Result<R, JobFailure>>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let run = |i: usize, item: T| -> Result<R, JobFailure> {
        let f = Arc::clone(&f);
        match supervised(deadline, move || {
            mlp_faults::fire(mlp_faults::SWEEP_PANIC);
            f(item)
        }) {
            Supervised::Finished(r) => Ok(r),
            Supervised::Panicked(message) => Err(JobFailure::Panic(JobPanic { index: i, message })),
            Supervised::TimedOut => Err(JobFailure::Timeout { index: i, deadline }),
        }
    };

    let threads = thread_count().min(items.len());
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run(i, item.clone()))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<R, JobFailure>)>();
    let mut slots: Vec<Option<Result<R, JobFailure>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let run = &run;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = run(i, items[i].clone());
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });

    slots
        .into_iter()
        .map(|r| r.expect("every job index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The override is process-global and the test harness runs tests
    // concurrently, so serialize every test that touches it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn preserves_order() {
        let _g = lock();
        let items: Vec<u64> = (0..257).collect();
        set_thread_override(Some(8));
        let out = par_map(&items, |&x| x * 3 + 1);
        set_thread_override(None);
        assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let _g = lock();
        let items: Vec<u64> = (0..64).collect();
        set_thread_override(Some(1));
        let serial = par_map(&items, |&x| x.wrapping_mul(0x9e37_79b9));
        set_thread_override(Some(4));
        let parallel = par_map(&items, |&x| x.wrapping_mul(0x9e37_79b9));
        set_thread_override(None);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        // Locked like the rest: even singleton maps probe the global
        // fault-injection site.
        let _g = lock();
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_job_costs_still_ordered() {
        let _g = lock();
        set_thread_override(Some(4));
        let items: Vec<u64> = (0..40).collect();
        let out = par_map(&items, |&x| {
            // Early indices do the most work, inverting completion order.
            let spins = (40 - x) * 10_000;
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        set_thread_override(None);
        assert_eq!(out, items);
    }

    #[test]
    fn worker_panic_propagates() {
        let _g = lock();
        set_thread_override(Some(2));
        let result = std::panic::catch_unwind(|| {
            par_map(&[1u32, 2, 3, 4], |&x| {
                if x == 3 {
                    panic!("boom");
                }
                x
            })
        });
        set_thread_override(None);
        let payload = result.expect_err("panic must propagate through par_map");
        let msg = panic_message(payload);
        assert!(
            msg.contains("boom") && msg.contains("job 2"),
            "re-raised panic must carry the job index and original message, got {msg:?}"
        );
    }

    #[test]
    fn try_par_map_contains_panics_in_their_slots() {
        let _g = lock();
        for threads in [1, 4] {
            set_thread_override(Some(threads));
            let out = try_par_map(&[10u32, 11, 12, 13, 14], |&x| {
                if x % 2 == 1 {
                    panic!("odd input {x}");
                }
                x * 2
            });
            set_thread_override(None);
            assert_eq!(out.len(), 5);
            assert_eq!(out[0], Ok(20));
            assert_eq!(out[2], Ok(24));
            assert_eq!(out[4], Ok(28));
            for (i, x) in [(1usize, 11u32), (3, 13)] {
                let err = out[i].as_ref().expect_err("odd job must fail");
                assert_eq!(err.index, i);
                assert_eq!(err.message, format!("odd input {x}"));
            }
        }
    }

    #[test]
    fn injected_sweep_panic_hits_one_job() {
        let _g = lock();
        set_thread_override(Some(1));
        mlp_faults::set_for_test(Some((mlp_faults::SWEEP_PANIC, 2)));
        let out = try_par_map(&[1u32, 2, 3], |&x| x);
        mlp_faults::set_for_test(None);
        set_thread_override(None);
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[2], Ok(3));
        let err = out[1].as_ref().expect_err("second job must be injected");
        assert!(err.message.contains("injected fault: sweep-panic"));
    }

    #[test]
    fn job_panic_display_and_message_extraction() {
        let p = JobPanic {
            index: 7,
            message: "oops".into(),
        };
        assert_eq!(p.to_string(), "sweep job 7 panicked: oops");
        assert_eq!(panic_message(Box::new("static")), "static");
        assert_eq!(panic_message(Box::new(String::from("owned"))), "owned");
        assert_eq!(panic_message(Box::new(42u32)), NON_STRING_PANIC);
        assert_eq!(panic_message(Box::new(42u32)), "<non-string panic>");
    }

    #[test]
    fn non_string_panic_payload_keeps_marker_and_index() {
        let _g = lock();
        for threads in [1, 4] {
            set_thread_override(Some(threads));
            let out = try_par_map(&[0u32, 1, 2, 3], |&x| {
                if x == 2 {
                    std::panic::panic_any(0xdeadbeefu64);
                }
                x
            });
            set_thread_override(None);
            let err = out[2].as_ref().expect_err("job 2 must fail");
            assert_eq!(err.index, 2);
            assert_eq!(err.message, NON_STRING_PANIC);
            assert_eq!(err.to_string(), "sweep job 2 panicked: <non-string panic>");
            assert_eq!(out[0], Ok(0));
            assert_eq!(out[1], Ok(1));
            assert_eq!(out[3], Ok(3));
        }
    }

    #[test]
    fn supervised_outcomes() {
        let _g = lock();
        match supervised(Duration::from_secs(10), || 41 + 1) {
            Supervised::Finished(42) => {}
            other => panic!("expected Finished(42), got {other:?}"),
        }
        match supervised(Duration::from_secs(10), || -> u32 { panic!("kaput") }) {
            Supervised::Panicked(msg) => assert_eq!(msg, "kaput"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        match supervised(Duration::from_millis(25), || {
            thread::sleep(Duration::from_secs(30));
            0u32
        }) {
            Supervised::TimedOut => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
        match supervised(Duration::from_secs(10), || -> u32 {
            std::panic::panic_any(7i32)
        }) {
            Supervised::Panicked(msg) => assert_eq!(msg, NON_STRING_PANIC),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn deadline_map_contains_timeouts_and_panics_in_their_slots() {
        let _g = lock();
        for threads in [1, 3] {
            set_thread_override(Some(threads));
            let deadline = Duration::from_millis(200);
            let out = try_par_map_deadline(&[0u32, 1, 2, 3, 4], deadline, |x| {
                match x {
                    1 => thread::sleep(Duration::from_secs(30)), // wedged
                    3 => panic!("job three exploded"),
                    _ => {}
                }
                x * 10
            });
            set_thread_override(None);
            assert_eq!(out.len(), 5);
            assert_eq!(out[0], Ok(0));
            assert_eq!(out[2], Ok(20));
            assert_eq!(out[4], Ok(40));
            assert_eq!(out[1], Err(JobFailure::Timeout { index: 1, deadline }));
            assert_eq!(
                out[1].as_ref().unwrap_err().to_string(),
                "sweep job 1 exceeded its 200ms deadline"
            );
            match &out[3] {
                Err(JobFailure::Panic(p)) => {
                    assert_eq!(p.index, 3);
                    assert_eq!(p.message, "job three exploded");
                }
                other => panic!("expected Panic in slot 3, got {other:?}"),
            }
        }
    }
}
