//! Ordered parallel map for the experiment sweep engine.
//!
//! Every figure/table in the paper is a sweep of independent simulator runs,
//! so the parallelism we need is exactly "map a pure function over a job
//! list and keep the order". [`par_map`] does that with `std::thread::scope`:
//! workers claim job indices from a shared atomic counter (so long jobs do
//! not convoy short ones) and send `(index, result)` pairs back over a
//! channel; the caller reassembles them in input order. Output is therefore
//! byte-identical to a serial map regardless of scheduling.
//!
//! Thread count: [`set_thread_override`] (used by tests) takes precedence,
//! then the `MLP_THREADS` environment variable, then
//! `std::thread::available_parallelism()`. With one thread (or one job) the
//! map runs inline on the caller with no thread or channel overhead.
//!
//! Built on the standard library rather than an external pool (e.g. rayon)
//! because the build environment cannot fetch crates; the sweep layer only
//! needs this one primitive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Programmatic thread-count override; `0` means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the worker count (`Some(n)`) or restore automatic selection
/// (`None`). Used by the parallel-equals-serial regression tests; normal
/// callers configure threads with the `MLP_THREADS` environment variable.
pub fn set_thread_override(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Number of worker threads a sweep will use right now.
pub fn thread_count() -> usize {
    let forced = OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("MLP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_threads()
}

/// The host's available parallelism (ignoring overrides).
pub fn available_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Map `f` over `items` in parallel, returning results in input order.
///
/// Results are identical to `items.iter().map(f).collect()` for any pure
/// `f`. A panic in any worker propagates to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Drain while workers run; ends when the last sender drops. If a
        // worker panics its sender drops early and scope exit re-raises.
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });

    slots
        .into_iter()
        .map(|r| r.expect("every job index was claimed exactly once"))
        .collect()
}

/// [`par_map`] over an owned `Vec`, consuming the items.
pub fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map(&items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The override is process-global and the test harness runs tests
    // concurrently, so serialize every test that touches it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn preserves_order() {
        let _g = lock();
        let items: Vec<u64> = (0..257).collect();
        set_thread_override(Some(8));
        let out = par_map(&items, |&x| x * 3 + 1);
        set_thread_override(None);
        assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let _g = lock();
        let items: Vec<u64> = (0..64).collect();
        set_thread_override(Some(1));
        let serial = par_map(&items, |&x| x.wrapping_mul(0x9e37_79b9));
        set_thread_override(Some(4));
        let parallel = par_map(&items, |&x| x.wrapping_mul(0x9e37_79b9));
        set_thread_override(None);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_job_costs_still_ordered() {
        let _g = lock();
        set_thread_override(Some(4));
        let items: Vec<u64> = (0..40).collect();
        let out = par_map(&items, |&x| {
            // Early indices do the most work, inverting completion order.
            let spins = (40 - x) * 10_000;
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        set_thread_override(None);
        assert_eq!(out, items);
    }

    #[test]
    fn worker_panic_propagates() {
        let _g = lock();
        set_thread_override(Some(2));
        let result = std::panic::catch_unwind(|| {
            par_map(&[1u32, 2, 3, 4], |&x| {
                if x == 3 {
                    panic!("boom");
                }
                x
            })
        });
        set_thread_override(None);
        assert!(result.is_err());
    }
}
