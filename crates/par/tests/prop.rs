//! Property tests of panic containment: `try_par_map` must return
//! exactly one slot per input item, in input order, no matter which jobs
//! panic or how many threads run the sweep.

use mlp_par::{set_thread_override, try_par_map};
use proptest::prelude::*;
use std::sync::Mutex;

/// Thread override and panic hook are process-global; serialize the
/// tests in this binary.
static LOCK: Mutex<()> = Mutex::new(());

/// Silences the default panic hook (which would print a backtrace per
/// injected panic — hundreds per proptest run) for the duration of a
/// test, restoring it afterwards.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let saved = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(saved);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomly panicking jobs never lose or reorder slots: every input
    /// index gets exactly one slot, `Ok` slots hold the mapped value and
    /// `Err` slots name their own index and panic message.
    #[test]
    fn panicking_jobs_never_lose_or_reorder_slots(
        panics in proptest::collection::vec(any::<bool>(), 0..48),
        threads in 1usize..6,
    ) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let items: Vec<usize> = (0..panics.len()).collect();
        let out = with_quiet_panics(|| {
            set_thread_override(Some(threads));
            let out = try_par_map(&items, |&i| {
                if panics[i] {
                    panic!("job {i} down");
                }
                i * 10
            });
            set_thread_override(None);
            out
        });

        prop_assert_eq!(out.len(), items.len(), "one slot per input item");
        for (i, slot) in out.iter().enumerate() {
            if panics[i] {
                let err = slot.as_ref().expect_err("panicking job must yield Err");
                prop_assert_eq!(err.index, i);
                let want = format!("job {i} down");
                prop_assert_eq!(err.message.as_str(), want.as_str());
            } else {
                prop_assert_eq!(slot.as_ref().ok().copied(), Some(i * 10));
            }
        }
    }

    /// The infallible wrapper re-raises the first failure by job index.
    #[test]
    fn par_map_reraises_first_failure(fail_at in 0usize..16, len in 16usize..24) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let items: Vec<usize> = (0..len).collect();
        let caught = with_quiet_panics(|| {
            set_thread_override(Some(3));
            let caught = std::panic::catch_unwind(|| {
                mlp_par::par_map(&items, |&i| {
                    if i >= fail_at {
                        panic!("first failing job is {fail_at}");
                    }
                    i
                })
            });
            set_thread_override(None);
            caught
        });
        let msg = mlp_par::panic_message(caught.expect_err("must panic"));
        prop_assert!(
            msg.contains(&format!("sweep job {fail_at} panicked")),
            "expected first failure (job {}) in {:?}", fail_at, msg
        );
    }
}
