//! Chaos suite: arm one deterministic fault inside a real `mlp-serve`
//! process and prove the blast radius is a single job.
//!
//! Each test spawns the actual daemon binary with `MLP_FAULT` set in the
//! child environment (the fault spec is read once per process, so the
//! daemon arms it at startup; this test process stays clean). The
//! invariant under every fault is the same:
//!
//! 1. the faulted job degrades (or retries) into a well-formed response,
//! 2. sibling jobs' responses are **byte-identical** to a fault-free
//!    run of the same experiment (determinism makes this checkable),
//! 3. the daemon is still serving afterwards (`/healthz` answers).

use mlp_serve::http::exchange;
use std::io::Read;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A daemon child reaped (and killed if needed) on drop, so a failing
/// assertion never leaks a listener.
struct Daemon {
    child: Child,
    addr: String,
    scratch: PathBuf,
}

impl Daemon {
    /// Spawns `mlp-serve` with `extra_args`, `MLP_FAULT=fault` when
    /// given, and waits for its port file.
    fn spawn(tag: &str, fault: Option<&str>, extra_args: &[&str]) -> Daemon {
        let scratch =
            std::env::temp_dir().join(format!("mlp-serve-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).expect("scratch dir");
        let port_file = scratch.join("port");
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_mlp-serve"));
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--port-file")
            .arg(&port_file)
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        match fault {
            Some(spec) => cmd.env("MLP_FAULT", spec),
            None => cmd.env_remove("MLP_FAULT"),
        };
        let child = cmd.spawn().expect("spawn mlp-serve");
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                break addr.trim().to_string();
            }
            assert!(
                Instant::now() < deadline,
                "daemon never wrote its port file"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        Daemon {
            child,
            addr,
            scratch,
        }
    }

    fn get(&self, path: &str) -> (u16, String) {
        let (status, body) =
            exchange(&self.addr, "GET", path, b"", Duration::from_secs(60)).expect("GET");
        (status, String::from_utf8_lossy(&body).into_owned())
    }

    fn post(&self, path: &str, body: &str) -> (u16, String) {
        let (status, body) = exchange(
            &self.addr,
            "POST",
            path,
            body.as_bytes(),
            Duration::from_secs(300),
        )
        .expect("POST");
        (status, String::from_utf8_lossy(&body).into_owned())
    }

    fn assert_alive(&self) {
        let (status, body) = self.get("/healthz");
        assert_eq!(
            (status, body.trim()),
            (200, "{\"status\":\"ok\"}"),
            "daemon must still be serving"
        );
    }

    /// Clean shutdown; asserts the process exits on its own.
    fn shutdown(mut self) {
        let (status, _) = self.post("/v1/shutdown", "");
        assert_eq!(status, 200);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("wait") {
                Some(code) => {
                    assert!(code.success(), "daemon exited with {code}");
                    break;
                }
                None => {
                    assert!(
                        Instant::now() < deadline,
                        "daemon did not exit after /v1/shutdown"
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.scratch);
    }
}

/// The bytes `mlp-experiments --json` would write for this experiment at
/// quick scale — the fault-free reference the daemon must match exactly.
fn solo_bytes(name: &str) -> String {
    mlp_experiments::registry::find(name)
        .expect("registered experiment")
        .run(mlp_experiments::RunScale::quick())
        .report
        .to_json()
}

fn run_body(experiment: &str) -> String {
    format!("{{\"experiment\": \"{experiment}\", \"scale\": \"quick\"}}")
}

#[test]
fn hanging_job_degrades_while_sibling_stays_byte_identical() {
    // The armed hang sleeps for an hour, so only the watchdog can save
    // the worker. The deadline must still clear an honest debug-build
    // sibling run (several seconds), hence 20s, not something snappier.
    let d = Daemon::spawn(
        "hang",
        Some("serve-job-hang:1"),
        &["--workers", "2", "--deadline-ms", "20000", "--retries", "0"],
    );

    // Victim first (async): its first dequeue consumes the armed
    // occurrence and wedges its supervised thread.
    let (status, body) = d.post("/v1/jobs", &run_body("l3"));
    assert_eq!(status, 202, "victim admission: {body}");
    let victim_id: u64 = body
        .split("\"job\": ")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .expect("job id");
    // Give the victim time to dequeue so the sibling cannot trip the
    // (single-occurrence) fault instead.
    std::thread::sleep(Duration::from_millis(500));

    // Sibling runs concurrently on the second worker while the victim
    // hangs — and must come back pristine.
    let (status, sibling) = d.post("/v1/run", &run_body("fm"));
    assert_eq!(status, 200);
    assert_eq!(
        sibling,
        solo_bytes("fm"),
        "sibling response must be byte-identical to a solo run"
    );

    // The victim degrades into a failed report naming the deadline.
    let deadline = Instant::now() + Duration::from_secs(60);
    let victim = loop {
        let (status, body) = d.get(&format!("/v1/jobs/{victim_id}"));
        assert_eq!(status, 200);
        if body.contains("\"status\": \"done\"") {
            break body;
        }
        assert!(Instant::now() < deadline, "hung job never degraded: {body}");
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(victim.contains("\"ok\": false"), "victim: {victim}");
    assert!(
        victim.contains("\"status\": \"failed\""),
        "victim report must be degraded: {victim}"
    );
    assert!(
        victim.contains("exceeded its 20000ms deadline"),
        "error must name the deadline: {victim}"
    );

    d.assert_alive();
    d.shutdown();
}

#[test]
fn transient_io_error_is_retried_to_a_pristine_response() {
    let d = Daemon::spawn(
        "ioerr",
        Some("serve-io-error:1"),
        &["--workers", "2", "--retries", "2"],
    );
    let (status, body) = d.post("/v1/run", &run_body("fm"));
    assert_eq!(status, 200);
    assert_eq!(
        body,
        solo_bytes("fm"),
        "retried response must be byte-identical to a solo run"
    );
    let (_, statusz) = d.get("/statusz");
    assert!(
        statusz.contains("\"serve.jobs.retried\": 1"),
        "retry must be counted: {statusz}"
    );
    d.assert_alive();
    d.shutdown();
}

#[test]
fn corrupt_cache_entry_is_evicted_and_regenerated() {
    let scratch =
        std::env::temp_dir().join(format!("mlp-serve-chaos-cachedir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let cache_dir = scratch.join("cache");
    let d = Daemon::spawn(
        "corrupt",
        Some("serve-cache-corrupt:1"),
        &[
            "--workers",
            "2",
            "--retries",
            "0",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ],
    );
    let expected = solo_bytes("fm");

    // First run: the store is fault-torn on disk, but the response body
    // never touches the cache — pristine.
    let (status, first) = d.post("/v1/run", &run_body("fm"));
    assert_eq!(status, 200);
    assert_eq!(first, expected, "response must not depend on cache health");

    // Second run: load detects the torn entry, evicts it, regenerates —
    // still pristine, and the rewritten entry is now valid.
    let (status, second) = d.post("/v1/run", &run_body("fm"));
    assert_eq!(status, 200);
    assert_eq!(second, expected, "regenerated response must be pristine");

    // Third run: served from the healed cache, same bytes.
    let (status, third) = d.post("/v1/run", &run_body("fm"));
    assert_eq!(status, 200);
    assert_eq!(third, expected, "cached response must be byte-identical");
    let (_, statusz) = d.get("/statusz");
    assert!(
        statusz.contains("\"serve.cache.hits\": 1"),
        "healed cache must serve the third run: {statusz}"
    );

    d.assert_alive();
    d.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn full_queue_sheds_with_429_and_daemon_survives() {
    // Queue capacity 0: every submission sheds deterministically.
    let d = Daemon::spawn("shed", None, &["--workers", "1", "--queue", "0"]);
    let (status, body) = d.post("/v1/run", &run_body("fm"));
    assert_eq!(status, 429, "admission must shed: {body}");
    assert!(body.contains("queue full"), "shed body: {body}");
    let (_, statusz) = d.get("/statusz");
    assert!(
        statusz.contains("\"serve.jobs.shed\": 1"),
        "shed must be counted: {statusz}"
    );
    d.assert_alive();
    d.shutdown();
}

/// Forced surrogate fallback: with the `surrogate-uncertain` site armed,
/// the first surrogate-tier request must come back as a real simulation
/// (`"fallback": true`, CPI byte-identical to pricing the point
/// directly), later surrogate requests take the fast path again, and
/// sibling experiment jobs are untouched. Release-gated: the tier trains
/// its model by running the `sweep1000` active-sampling loop, which is
/// interactive only in release builds.
#[cfg(not(debug_assertions))]
#[test]
fn forced_surrogate_fallback_simulates_while_siblings_stay_pristine() {
    use mlp_experiments::exp::sweep1000;
    let d = Daemon::spawn(
        "surrogate",
        Some("surrogate-uncertain:1"),
        &["--workers", "2"],
    );
    let point = "{\"tier\": \"surrogate\", \"benchmark\": \"Database\", \"window\": 64, \
                 \"mshrs\": 4, \"latency\": 500, \"l2_kb\": 1024}";

    // First surrogate request trips the armed fault and falls back.
    let (status, body) = d.post("/v1/run", point);
    assert_eq!(status, 200, "fallback response: {body}");
    assert!(body.contains("\"tier\": \"simulated\""), "body: {body}");
    assert!(body.contains("\"fallback\": true"), "body: {body}");
    let expected = sweep1000::simulate_point(
        &mlp_surrogate::ConfigPoint {
            workload: 0,
            window: 64,
            mshrs: 4,
            latency: 500,
            l2_kb: 1024,
        },
        mlp_experiments::RunScale::quick(),
    );
    assert!(
        body.contains(&format!("\"cpi\": {expected}")),
        "fallback CPI must be the real simulation's ({expected}): {body}"
    );

    // Second request: the single-occurrence fault is spent; fast path.
    let (status, body) = d.post("/v1/run", point);
    assert_eq!(status, 200);
    assert!(body.contains("\"tier\": \"surrogate\""), "body: {body}");
    assert!(body.contains("\"fallback\": false"), "body: {body}");

    // The tier is synchronous only.
    let (status, body) = d.post("/v1/jobs", point);
    assert_eq!(status, 400, "async surrogate must be rejected: {body}");

    // Sibling experiment jobs are untouched by the tier.
    let (status, sibling) = d.post("/v1/run", &run_body("fm"));
    assert_eq!(status, 200);
    assert_eq!(
        sibling,
        solo_bytes("fm"),
        "sibling response must be byte-identical to a solo run"
    );

    let (_, statusz) = d.get("/statusz");
    for needle in [
        "\"serve.surrogate.requests\": 2",
        "\"serve.surrogate.trained\": 1",
        "\"serve.surrogate.hits\": 1",
        "\"serve.surrogate.fallback\": 1",
    ] {
        assert!(statusz.contains(needle), "missing {needle}: {statusz}");
    }
    d.assert_alive();
    d.shutdown();
}

/// Stderr of a dying daemon is part of the debugging contract; make sure
/// the compact panic hook line (not a backtrace storm) is what an
/// injected panic produces.
#[test]
fn injected_panic_is_one_compact_stderr_line() {
    let mut d = Daemon::spawn(
        "stderr",
        Some("serve-io-error:1"),
        &["--workers", "1", "--retries", "0"],
    );
    let (status, body) = d.post("/v1/run", &run_body("fm"));
    assert_eq!(status, 200);
    assert!(
        body.contains("\"status\": \"failed\""),
        "zero retries: the injected panic must degrade the job: {body}"
    );
    assert!(body.contains("injected fault: serve-io-error"));
    let (s, _) = d.post("/v1/shutdown", "");
    assert_eq!(s, 200);
    let _ = d.child.wait();
    let mut stderr = String::new();
    if let Some(mut pipe) = d.child.stderr.take() {
        let _ = pipe.read_to_string(&mut stderr);
    }
    assert!(
        stderr.contains("injected fault: serve-io-error"),
        "compact panic line expected on stderr: {stderr}"
    );
    assert!(
        !stderr.contains("stack backtrace"),
        "panic hook must suppress backtraces: {stderr}"
    );
}
