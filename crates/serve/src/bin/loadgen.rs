//! `mlp-loadgen` — first-party HTTP client and load generator for
//! `mlp-serve` (the build is offline: no curl, no hyper).
//!
//! ```text
//! mlp-loadgen get <addr> <path>
//! mlp-loadgen run <addr> <experiment> [scale] [priority]
//! mlp-loadgen bench <addr> [--clients N] [--requests N]
//!                   [--experiment name] [--scale name] [--out path]
//! ```
//!
//! `get`/`run` are one-shot exchanges printing the response body —
//! `scripts/check.sh` drives its smoke test with them. `bench` is the
//! recorded harness: `--clients` threads each issue `--requests`
//! synchronous `POST /v1/run` jobs, client-observed latencies are
//! aggregated into p50/p99, and the `serve.*` counter deltas (shed,
//! retried, degraded, deduped, cache hits) are read from `/statusz`
//! around the burst. Results land in `--out` (default
//! `results/BENCH_serve.json`) under the repo's 3x-regression guard:
//! an existing baseline is compared against, not overwritten, unless
//! `MLP_BENCH_GUARD=off` re-blesses it.
//!
//! Exit codes: `0` ok, `1` guard violation or I/O error, `2` usage.

use mlp_serve::http::exchange;
use std::time::{Duration, Instant};

const DEFAULT_OUT: &str = "results/BENCH_serve.json";
const GUARD_FACTOR: f64 = 3.0;

fn usage() -> ! {
    eprintln!(
        "usage: mlp-loadgen get <addr> <path>\n\
         \u{20}      mlp-loadgen run <addr> <experiment> [scale] [priority]\n\
         \u{20}      mlp-loadgen bench <addr> [--clients N] [--requests N] \
         [--experiment name] [--scale name] [--out path]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("get") => cmd_get(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        _ => usage(),
    };
    std::process::exit(code);
}

fn cmd_get(args: &[String]) -> i32 {
    let [addr, path] = args else { usage() };
    match exchange(addr, "GET", path, b"", Duration::from_secs(120)) {
        Ok((status, body)) => {
            print!("{}", String::from_utf8_lossy(&body));
            i32::from(status >= 400)
        }
        Err(e) => {
            eprintln!("mlp-loadgen: {e}");
            1
        }
    }
}

fn job_body(experiment: &str, scale: &str, priority: &str) -> String {
    format!(
        "{{\"experiment\": \"{experiment}\", \"scale\": \"{scale}\", \"priority\": \"{priority}\"}}"
    )
}

fn cmd_run(args: &[String]) -> i32 {
    let (addr, experiment) = match args {
        [a, e, ..] => (a, e),
        _ => usage(),
    };
    let scale = args.get(2).map(String::as_str).unwrap_or("quick");
    let priority = args.get(3).map(String::as_str).unwrap_or("normal");
    let body = job_body(experiment, scale, priority);
    match exchange(
        addr,
        "POST",
        "/v1/run",
        body.as_bytes(),
        Duration::from_secs(600),
    ) {
        Ok((status, body)) => {
            print!("{}", String::from_utf8_lossy(&body));
            i32::from(status >= 400)
        }
        Err(e) => {
            eprintln!("mlp-loadgen: {e}");
            1
        }
    }
}

/// The `serve.*` counters the bench reports, read from `/statusz`.
#[derive(Default, Clone, Copy)]
struct ServeCounters {
    ok: u64,
    shed: u64,
    retried: u64,
    degraded: u64,
    deduped: u64,
    cache_hits: u64,
}

fn read_counters(addr: &str) -> Option<ServeCounters> {
    let (status, body) = exchange(addr, "GET", "/statusz", b"", Duration::from_secs(30)).ok()?;
    if status != 200 {
        return None;
    }
    let json = mlp_stats::json::parse(std::str::from_utf8(&body).ok()?).ok()?;
    let counters = json.get("counters")?;
    let get = |name: &str| counters.get(name).and_then(|v| v.as_u64()).unwrap_or(0);
    Some(ServeCounters {
        ok: get("serve.jobs.ok"),
        shed: get("serve.jobs.shed"),
        retried: get("serve.jobs.retried"),
        degraded: get("serve.jobs.degraded"),
        deduped: get("serve.jobs.deduped"),
        cache_hits: get("serve.cache.hits"),
    })
}

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn cmd_bench(args: &[String]) -> i32 {
    let Some(addr) = args.first().cloned() else {
        usage()
    };
    let mut clients = 4usize;
    let mut requests = 8usize;
    let mut experiment = "fm".to_string();
    let mut scale = "quick".to_string();
    let mut out = DEFAULT_OUT.to_string();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--clients" => clients = value("--clients").parse().unwrap_or_else(|_| usage()),
            "--requests" => requests = value("--requests").parse().unwrap_or_else(|_| usage()),
            "--experiment" => experiment = value("--experiment"),
            "--scale" => scale = value("--scale"),
            "--out" => out = value("--out"),
            _ => usage(),
        }
    }

    let before = read_counters(&addr).unwrap_or_default();
    let body = job_body(&experiment, &scale, "normal");
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(clients * requests);
    let mut failures = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = &addr;
                let body = &body;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(requests);
                    let mut failed = 0u64;
                    for _ in 0..requests {
                        let t0 = Instant::now();
                        match exchange(
                            addr,
                            "POST",
                            "/v1/run",
                            body.as_bytes(),
                            Duration::from_secs(600),
                        ) {
                            // 429 shed is a valid admission outcome, not
                            // a failure — it still gets a latency sample.
                            Ok((status, _)) if status == 200 || status == 429 => {
                                lat.push(t0.elapsed().as_secs_f64() * 1e3)
                            }
                            _ => failed += 1,
                        }
                    }
                    (lat, failed)
                })
            })
            .collect();
        for h in handles {
            let (lat, failed) = h.join().unwrap_or((Vec::new(), u64::MAX));
            latencies_ms.extend(lat);
            failures = failures.saturating_add(failed);
        }
    });
    let after = read_counters(&addr).unwrap_or_default();

    if failures > 0 || latencies_ms.is_empty() {
        eprintln!("mlp-loadgen: {failures} request(s) failed outright");
        return 1;
    }
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let p50 = quantile(&latencies_ms, 0.5);
    let p99 = quantile(&latencies_ms, 0.99);
    let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
    let max = *latencies_ms.last().unwrap();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let report = format!(
        "{{\n  \"bench\": \"serve\",\n  \"clients\": {clients},\n  \"requests\": {},\n  \
         \"experiment\": \"{experiment}\",\n  \"scale\": \"{scale}\",\n  \
         \"latency_ms\": {{\"p50\": {p50:.3}, \"p99\": {p99:.3}, \"mean\": {mean:.3}, \"max\": {max:.3}}},\n  \
         \"counters\": {{\"ok\": {}, \"shed\": {}, \"retried\": {}, \"degraded\": {}, \"deduped\": {}, \"cache_hits\": {}}},\n  \
         \"host_cores\": {host_cores}\n}}\n",
        clients * requests,
        after.ok.saturating_sub(before.ok),
        after.shed.saturating_sub(before.shed),
        after.retried.saturating_sub(before.retried),
        after.degraded.saturating_sub(before.degraded),
        after.deduped.saturating_sub(before.deduped),
        after.cache_hits.saturating_sub(before.cache_hits),
    );
    println!("{report}");

    let guard_off = std::env::var("MLP_BENCH_GUARD").is_ok_and(|v| v == "off");
    let baseline = std::fs::read_to_string(&out).ok();
    match baseline {
        Some(base) if !guard_off => {
            // Guard, don't overwrite: the recorded baseline is the
            // blessed number; fail if we regressed past the 3x band.
            let base_p50 = mlp_stats::json::parse(&base)
                .ok()
                .and_then(|j| j.get("latency_ms")?.get("p50")?.as_f64());
            match base_p50 {
                Some(b) if b > 0.0 && p50 > b * GUARD_FACTOR => {
                    eprintln!(
                        "mlp-loadgen: p50 {p50:.3}ms regressed past {GUARD_FACTOR}x baseline \
                         {b:.3}ms (set MLP_BENCH_GUARD=off to re-bless)"
                    );
                    1
                }
                Some(b) => {
                    eprintln!("[bench guard ok: p50 {p50:.3}ms vs baseline {b:.3}ms]");
                    0
                }
                None => {
                    eprintln!("mlp-loadgen: baseline '{out}' unreadable; re-bless with MLP_BENCH_GUARD=off");
                    1
                }
            }
        }
        _ => {
            if let Some(dir) = std::path::Path::new(&out).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&out, &report) {
                Ok(()) => {
                    eprintln!("[bench baseline -> {out}]");
                    0
                }
                Err(e) => {
                    eprintln!("mlp-loadgen: cannot write '{out}': {e}");
                    1
                }
            }
        }
    }
}
