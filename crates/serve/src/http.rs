//! Minimal first-party HTTP/1.1: enough protocol for a localhost job
//! daemon, and nothing more.
//!
//! The workspace builds offline, so like `mlp-stats`' JSON parser this
//! is a deliberate subset rather than a dependency: request line +
//! headers + optional `Content-Length` body in, one `Connection: close`
//! response out. Every connection serves exactly one request — job
//! submissions are long-lived server-side anyway, so keep-alive would
//! buy nothing and cost connection-state bookkeeping.
//!
//! Hostile-input posture: header section capped at 16 KiB, bodies capped
//! at 1 MiB, ASCII-validated request line, and a read timeout installed
//! by the caller — a slow or malformed client costs one bounded thread,
//! never a wedged acceptor.

use std::io::{BufRead, Write};

/// Largest accepted header section (request line + headers), bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Largest accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the client already; not folded).
    pub method: String,
    /// The request target, e.g. `/v1/run` (query strings are kept as-is).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (lowercase `name`), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. Rendered as a 400 by the server.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket error (including read timeouts).
    Io(std::io::Error),
    /// Protocol violation; the message names it.
    Malformed(&'static str),
    /// The request exceeded a size cap.
    TooLarge(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads one line (terminated by `\n`, `\r` trimmed), charging its bytes
/// against `budget`.
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = std::io::Read::read(r, &mut byte)?;
        if n == 0 {
            if line.is_empty() {
                return Err(HttpError::Malformed("connection closed before request"));
            }
            break;
        }
        *budget = budget
            .checked_sub(1)
            .ok_or(HttpError::TooLarge("header section"))?;
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed("non-utf8 header line"))
}

/// Parses one request from the stream, honouring the size caps.
pub fn read_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let request_line = read_line(r, &mut budget)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(HttpError::Malformed("request method"))?
        .to_string();
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or(HttpError::Malformed("request target"))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("http version")),
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(r, &mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// A response ready to serialize.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (always sent with an exact `Content-Length`).
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// Canonical reason phrase for the status codes this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes the response (status line, headers, body) and flushes.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// One blocking HTTP exchange against `addr` (`host:port`): sends
/// `method path` with `body`, returns `(status, body)`. The shared
/// client side of `mlp-loadgen`, `scripts/check.sh` smoke and the chaos
/// tests — no curl required.
pub fn exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: std::time::Duration,
) -> std::io::Result<(u16, Vec<u8>)> {
    use std::io::{BufReader, Read};
    let stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut w = stream.try_clone()?;
    write!(
        w,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()?;

    let mut r = BufReader::new(stream);
    let mut budget = MAX_HEADER_BYTES;
    let status_line = read_line(&mut r, &mut budget)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let line = read_line(&mut r, &mut budget)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            r.read_exact(&mut body)?;
        }
        None => {
            r.read_to_end(&mut body)?;
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse(raw).expect("well-formed");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/run");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_bodyless_get_with_bare_lf() {
        let raw = b"GET /healthz HTTP/1.0\nX-Custom: v\n\n";
        let req = parse(raw).expect("lenient on line endings");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("x-custom"), Some("v"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            parse(b"bogus\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET nopath HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(parse(b""), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn enforces_size_caps() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(
            format!("X-Big: {}\r\n\r\n", "a".repeat(MAX_HEADER_BYTES)).as_bytes(),
        );
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge(_))));
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(raw.as_bytes()), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn response_serializes_with_exact_length() {
        let mut out = Vec::new();
        Response::json(429, "{\"error\":\"shed\"}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"shed\"}"));
    }
}
