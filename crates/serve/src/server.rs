//! The HTTP front end: routing, admission responses, and introspection.
//!
//! Endpoints:
//!
//! | method/path        | behaviour |
//! |--------------------|-----------|
//! | `GET /healthz`     | liveness: `{"status":"ok"}` while the accept loop runs |
//! | `GET /statusz`     | queue gauges + `serve.*` counters + latency quantiles |
//! | `POST /v1/run`     | submit and wait; 200 with report bytes (even degraded), 429 shed; `"tier": "surrogate"` bodies answer from the fitted CPI model instead (see [`crate::surrogate`]) |
//! | `POST /v1/jobs`    | submit async; 202 with a job id |
//! | `GET /v1/jobs/<id>`| job status; embeds the report once done |
//! | `POST /v1/shutdown`| drain and stop (used by tests and `scripts/check.sh`) |
//!
//! On success `POST /v1/run` returns the experiment's report JSON
//! **byte-identical** to the file `mlp-experiments --json` writes for the
//! same experiment and scale: the daemon never attaches live metrics to
//! a report (`set_metrics` would embed run-dependent timings), so the
//! bytes depend only on `(experiment, scale, SEED)`.

use crate::http::{self, Request, Response};
use crate::jobs::{Priority, Scheduler, SubmitError, Submitted};
use mlp_experiments::registry;
use mlp_experiments::RunScale;
use mlp_obs::{Counter, Histogram};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static REQUESTS: Counter = Counter::new("serve.requests");
static REQUESTS_BAD: Counter = Counter::new("serve.requests.bad");
static REQUEST_LATENCY_MS: Histogram = Histogram::new("serve.request.latency_ms");

/// Per-connection socket read/write budget; a stalled client costs one
/// bounded thread.
const CONN_TIMEOUT: Duration = Duration::from_secs(10);

/// A running daemon bound to one listener.
pub struct Server {
    listener: TcpListener,
    sched: Arc<Scheduler>,
    stopping: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) in front
    /// of `sched`. Counters are enabled so `/statusz` always has data,
    /// whatever `MLP_OBS` says.
    pub fn bind(addr: &str, sched: Scheduler) -> std::io::Result<Server> {
        mlp_obs::enable_counters();
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            sched: Arc::new(sched),
            stopping: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a shutdown request arrives, then drains the
    /// scheduler and returns. Each connection gets its own thread; a
    /// connection thread panicking (it should not — handlers contain
    /// errors) kills that connection only.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        for stream in self.listener.incoming() {
            if self.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let sched = self.sched.clone();
            let stopping = self.stopping.clone();
            let _ = std::thread::Builder::new()
                .name("mlp-serve-conn".to_string())
                .spawn(move || {
                    if handle_connection(stream, &sched, &stopping) {
                        // Shutdown requested: poke the accept loop so it
                        // re-checks the flag instead of blocking forever.
                        let _ = TcpStream::connect(addr);
                    }
                });
        }
        self.sched.shutdown();
        Ok(())
    }
}

/// Serves one request; returns true when it was a shutdown request.
fn handle_connection(stream: TcpStream, sched: &Scheduler, stopping: &AtomicBool) -> bool {
    let t0 = Instant::now();
    let _ = stream.set_read_timeout(Some(CONN_TIMEOUT));
    let _ = stream.set_write_timeout(Some(CONN_TIMEOUT));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    let mut reader = BufReader::new(stream);
    REQUESTS.inc();
    let (response, is_shutdown) = match http::read_request(&mut reader) {
        Ok(req) => route(&req, sched, stopping),
        Err(e) => {
            REQUESTS_BAD.inc();
            let status = match e {
                http::HttpError::TooLarge(_) => 413,
                _ => 400,
            };
            (error_response(status, &e.to_string()), false)
        }
    };
    let _ = response.write_to(&mut writer);
    REQUEST_LATENCY_MS.record(t0.elapsed().as_millis() as u64);
    is_shutdown
}

fn route(req: &Request, sched: &Scheduler, stopping: &AtomicBool) -> (Response, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (Response::json(200, "{\"status\":\"ok\"}\n"), false),
        ("GET", "/statusz") => (statusz(sched), false),
        ("POST", "/v1/run") => (run_sync(req, sched), false),
        ("POST", "/v1/jobs") => (submit_async(req, sched), false),
        ("GET", path) if path.starts_with("/v1/jobs/") => (job_status(path, sched), false),
        ("POST", "/v1/shutdown") => {
            stopping.store(true, Ordering::SeqCst);
            (
                Response::json(200, "{\"status\":\"shutting-down\"}\n"),
                true,
            )
        }
        ("GET" | "POST", _) => (error_response(404, "no such endpoint"), false),
        _ => (error_response(405, "method not allowed"), false),
    }
}

/// What a job-submission body must say. `scale` and `priority` are
/// optional (`quick`, `normal`).
struct JobRequest {
    experiment: &'static dyn registry::Experiment,
    scale: RunScale,
    priority: Priority,
}

fn parse_body(body: &[u8]) -> Result<mlp_stats::json::Json, Response> {
    let text = std::str::from_utf8(body).map_err(|_| error_response(400, "body is not utf-8"))?;
    mlp_stats::json::parse(text).map_err(|e| error_response(400, &format!("body is not JSON: {e}")))
}

fn parse_job_request(json: &mlp_stats::json::Json) -> Result<JobRequest, Response> {
    if let Some(tier) = json.get("tier").and_then(|v| v.as_str()) {
        // "surrogate" is routed before this parser; anything else is a
        // typo, not an experiment job.
        return Err(error_response(400, &format!("unknown tier '{tier}'")));
    }
    let name = json
        .get("experiment")
        .and_then(|v| v.as_str())
        .ok_or_else(|| error_response(400, "missing \"experiment\" field"))?;
    let experiment = registry::find(name)
        .ok_or_else(|| error_response(404, &format!("unknown experiment '{name}'")))?;
    let scale = match json.get("scale").and_then(|v| v.as_str()) {
        None => RunScale::quick(),
        Some(s) => RunScale::parse(s)
            .ok_or_else(|| error_response(400, &format!("unknown scale '{s}'")))?,
    };
    let priority = match json.get("priority").and_then(|v| v.as_str()) {
        None => Priority::Normal,
        Some(p) => Priority::parse(p)
            .ok_or_else(|| error_response(400, &format!("unknown priority '{p}'")))?,
    };
    Ok(JobRequest {
        experiment,
        scale,
        priority,
    })
}

fn run_sync(req: &Request, sched: &Scheduler) -> Response {
    let json = match parse_body(&req.body) {
        Ok(j) => j,
        Err(resp) => return resp,
    };
    if crate::surrogate::is_surrogate_tier(&json) {
        return crate::surrogate::run_sync(&json);
    }
    let job = match parse_job_request(&json) {
        Ok(j) => j,
        Err(resp) => return resp,
    };
    match sched.submit(job.experiment, job.scale, job.priority) {
        Ok(sub) => {
            let out = sub.cell().wait();
            // Degraded reports are still 200: the job was served and the
            // body says `status:"failed"` — admission failures are the
            // only non-200 submission outcomes.
            Response::json(200, out.body.clone())
        }
        Err(e) => admission_error(e),
    }
}

fn submit_async(req: &Request, sched: &Scheduler) -> Response {
    let json = match parse_body(&req.body) {
        Ok(j) => j,
        Err(resp) => return resp,
    };
    if crate::surrogate::is_surrogate_tier(&json) {
        // Prediction is cheaper than queueing; there is nothing to poll.
        return error_response(400, "the surrogate tier is synchronous; use POST /v1/run");
    }
    let job = match parse_job_request(&json) {
        Ok(j) => j,
        Err(resp) => return resp,
    };
    match sched.submit(job.experiment, job.scale, job.priority) {
        Ok(sub) => {
            let joined = matches!(sub, Submitted::Joined(_));
            let cell = sub.cell();
            Response::json(
                202,
                format!(
                    "{{\"job\": {}, \"status\": \"{}\", \"joined\": {}}}\n",
                    cell.id,
                    cell.state_name(),
                    joined
                ),
            )
        }
        Err(e) => admission_error(e),
    }
}

fn job_status(path: &str, sched: &Scheduler) -> Response {
    let id: u64 = match path["/v1/jobs/".len()..].parse() {
        Ok(id) => id,
        Err(_) => return error_response(400, "job id must be a number"),
    };
    let cell = match sched.job(id) {
        Some(c) => c,
        None => return error_response(404, "no such job"),
    };
    match cell.poll() {
        None => Response::json(
            200,
            format!(
                "{{\"job\": {}, \"status\": \"{}\"}}\n",
                cell.id,
                cell.state_name()
            ),
        ),
        Some(out) => {
            let mut body = format!(
                "{{\"job\": {}, \"status\": \"done\", \"ok\": {}, \"from_cache\": {}, \"retries_used\": {}, \"report\": ",
                cell.id, out.ok, out.from_cache, out.retries_used
            );
            body.push_str(std::str::from_utf8(&out.body).unwrap_or("null"));
            body.push_str("}\n");
            Response::json(200, body)
        }
    }
}

fn admission_error(e: SubmitError) -> Response {
    match e {
        SubmitError::Shed { queued } => error_response(
            429,
            &format!("admission queue full ({queued} queued); retry later"),
        ),
        SubmitError::ShuttingDown => error_response(503, "daemon is shutting down"),
    }
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, format!("{{\"error\": {}}}\n", json_string(message)))
}

/// Live introspection: queue gauges plus every nonzero `serve.*` counter
/// and the p50/p99 of the job and request latency histograms. Reads are
/// non-draining ([`mlp_obs::snapshot`]), so probing never perturbs the
/// numbers it reports.
fn statusz(sched: &Scheduler) -> Response {
    let depths = sched.depths();
    let snap = mlp_obs::snapshot();
    let mut body = String::with_capacity(512);
    body.push_str("{\n");
    body.push_str(&format!("  \"queued\": {},\n", depths.queued));
    body.push_str(&format!("  \"running\": {},\n", depths.running));
    body.push_str("  \"counters\": {");
    let mut first = true;
    for c in snap
        .counters
        .iter()
        .filter(|c| c.name.starts_with("serve."))
    {
        if !first {
            body.push(',');
        }
        first = false;
        body.push_str(&format!("\n    \"{}\": {}", c.name, c.value));
    }
    body.push_str("\n  },\n");
    body.push_str("  \"latency_ms\": {");
    let mut first = true;
    for h in snap
        .histograms
        .iter()
        .filter(|h| h.name.starts_with("serve."))
    {
        if !first {
            body.push(',');
        }
        first = false;
        body.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
            h.name,
            h.count,
            h.quantile(0.5),
            h.quantile(0.99),
            h.max
        ));
    }
    body.push_str("\n  }\n}\n");
    Response::json(200, body)
}

/// Minimal JSON string escaping for error messages.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::SchedConfig;

    fn start_server(queue_cap: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let sched = Scheduler::start(SchedConfig {
            workers: 2,
            queue_cap,
            deadline: Duration::from_secs(300),
            retries: 1,
            cache: None,
        });
        let server = Server::bind("127.0.0.1:0", sched).expect("bind ephemeral");
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            server.run().expect("serve");
        });
        (addr, handle)
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
        let (status, body) =
            http::exchange(&addr.to_string(), "GET", path, b"", Duration::from_secs(30))
                .expect("exchange");
        (status, String::from_utf8(body).unwrap())
    }

    fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
        let (status, body) = http::exchange(
            &addr.to_string(),
            "POST",
            path,
            body.as_bytes(),
            Duration::from_secs(120),
        )
        .expect("exchange");
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn end_to_end_run_matches_cli_bytes() {
        let _g = crate::test_guard();
        let (addr, handle) = start_server(8);
        let (status, health) = get(addr, "/healthz");
        assert_eq!((status, health.trim()), (200, "{\"status\":\"ok\"}"));

        let (status, body) = post(addr, "/v1/run", "{\"experiment\": \"fm\"}");
        assert_eq!(status, 200);
        let direct = registry::find("fm")
            .unwrap()
            .run(RunScale::quick())
            .report
            .to_json();
        assert_eq!(body, direct, "served bytes must match the CLI artifact");

        let (status, statusz) = get(addr, "/statusz");
        assert_eq!(status, 200);
        assert!(statusz.contains("\"serve.jobs.ok\": 1") || statusz.contains("serve.jobs.ok"));
        assert!(statusz.contains("\"queued\""));

        let (status, _) = post(addr, "/v1/shutdown", "");
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    #[test]
    fn bad_requests_get_4xx_not_a_dead_daemon() {
        let _g = crate::test_guard();
        let (addr, handle) = start_server(8);
        assert_eq!(post(addr, "/v1/run", "not json").0, 400);
        assert_eq!(post(addr, "/v1/run", "{\"experiment\": \"nope\"}").0, 404);
        assert_eq!(
            post(
                addr,
                "/v1/run",
                "{\"experiment\": \"fm\", \"scale\": \"galactic\"}"
            )
            .0,
            400
        );
        assert_eq!(get(addr, "/v1/jobs/999999").0, 404);
        assert_eq!(get(addr, "/nope").0, 404);
        // Still alive after all that abuse.
        assert_eq!(get(addr, "/healthz").0, 200);
        let (status, _) = post(addr, "/v1/shutdown", "");
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    #[test]
    fn async_jobs_are_pollable() {
        let _g = crate::test_guard();
        let (addr, handle) = start_server(8);
        let (status, body) = post(addr, "/v1/jobs", "{\"experiment\": \"fm\"}");
        assert_eq!(status, 202);
        let id: u64 = body
            .split("\"job\": ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("job id in response");
        // Poll until done (bounded).
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (status, body) = get(addr, &format!("/v1/jobs/{id}"));
            assert_eq!(status, 200);
            if body.contains("\"status\": \"done\"") {
                assert!(body.contains("\"ok\": true"));
                assert!(body.contains("\"report\": {"));
                break;
            }
            assert!(Instant::now() < deadline, "job never finished");
            std::thread::sleep(Duration::from_millis(50));
        }
        let (status, _) = post(addr, "/v1/shutdown", "");
        assert_eq!(status, 200);
        handle.join().unwrap();
    }
}
