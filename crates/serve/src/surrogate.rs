//! The surrogate fast-path tier: answer CPI queries from the fitted
//! `mlp-surrogate` model in microseconds instead of simulating.
//!
//! A `POST /v1/run` body carrying `"tier": "surrogate"` plus a config
//! point (`benchmark`, `window`, `mshrs`, `latency`, `l2_kb`) skips the
//! job scheduler entirely. The first such request trains the model once
//! — the `sweep1000` active-sampling loop at quick scale, a few seconds
//! — and every later request is a pure in-memory prediction. Each
//! response carries the predicted CPI and the ensemble uncertainty; when
//! the uncertainty exceeds the pinned [`UNCERTAINTY_BOUND_PCT`] (or the
//! [`mlp_faults::SURROGATE_UNCERTAIN`] site is armed and trips), the
//! daemon falls back to pricing the point with a real simulation and
//! says so (`"tier": "simulated"`, `"fallback": true`).
//!
//! Axes are bounds-checked against the `sweep1000` sweep values — the
//! model's cross-validated tolerance only holds on the grid it was
//! validated over, so off-grid points are a 400, not a silently wrong
//! prediction. The tier is synchronous only: `POST /v1/jobs` rejects it
//! (there is nothing to queue — prediction is cheaper than the queueing).
//!
//! Counters: `serve.surrogate.requests` (tier requests parsed),
//! `serve.surrogate.trained` (model fits; 1 after first use),
//! `serve.surrogate.hits` (answered from the model),
//! `serve.surrogate.fallback` (real simulations forced by uncertainty or
//! fault injection).

use crate::http::Response;
use mlp_experiments::exp::sweep1000;
use mlp_experiments::RunScale;
use mlp_obs::Counter;
use mlp_stats::json::Json;
use mlp_surrogate::{workload_index, ConfigPoint, Surrogate};
use std::sync::OnceLock;

static REQUESTS: Counter = Counter::new("serve.surrogate.requests");
static TRAINED: Counter = Counter::new("serve.surrogate.trained");
static HITS: Counter = Counter::new("serve.surrogate.hits");
static FALLBACK: Counter = Counter::new("serve.surrogate.fallback");

/// Predictions whose ensemble uncertainty exceeds this bound (percent)
/// are not trusted: the request falls back to a real simulation. The
/// fitted model's uncertainty stays well under 1% across the whole
/// `sweep1000` grid, so ordinary in-grid requests always take the fast
/// path; the bound is the safety net for a model trained from a
/// degenerate corpus.
pub const UNCERTAINTY_BOUND_PCT: f64 = 2.0;

/// The scale the lazily trained model (and any fallback simulation)
/// runs at. Quick keeps first-request training in whole-seconds
/// territory and matches the scale the golden corpus pins.
fn tier_scale() -> RunScale {
    RunScale::quick()
}

fn model() -> &'static Surrogate {
    static MODEL: OnceLock<Surrogate> = OnceLock::new();
    MODEL.get_or_init(|| {
        TRAINED.inc();
        sweep1000::run(tier_scale()).explored.surrogate
    })
}

/// Whether a parsed request body selects the surrogate tier.
pub fn is_surrogate_tier(json: &Json) -> bool {
    json.get("tier").and_then(Json::as_str) == Some("surrogate")
}

fn bad_request(message: &str) -> Response {
    Response::json(
        400,
        format!("{{\"error\": \"{}\"}}\n", message.replace('"', "'")),
    )
}

/// Parses and bounds-checks the config point of a surrogate-tier body.
fn parse_point(json: &Json) -> Result<ConfigPoint, Response> {
    let benchmark = json
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or_else(|| bad_request("missing \"benchmark\" field"))?;
    let workload = workload_index(benchmark)
        .ok_or_else(|| bad_request(&format!("unknown benchmark '{benchmark}'")))?;
    let axis = |name: &str, swept: &[u32]| -> Result<u32, Response> {
        let v = json
            .get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| bad_request(&format!("missing or non-integer \"{name}\" field")))?;
        let v = u32::try_from(v).map_err(|_| bad_request(&format!("\"{name}\" out of range")))?;
        if swept.contains(&v) {
            Ok(v)
        } else {
            Err(bad_request(&format!(
                "\"{name}\": {v} is outside the sweep1000 grid {swept:?}"
            )))
        }
    };
    Ok(ConfigPoint {
        workload,
        window: axis("window", &sweep1000::WINDOWS)?,
        mshrs: axis("mshrs", &sweep1000::MSHRS)?,
        latency: axis("latency", &sweep1000::LATENCIES)?,
        l2_kb: axis("l2_kb", &sweep1000::L2_KB)?,
    })
}

/// Serves one surrogate-tier request (already routed by
/// [`is_surrogate_tier`]).
pub fn run_sync(json: &Json) -> Response {
    REQUESTS.inc();
    let point = match parse_point(json) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let model = model();
    let predicted = model.predict(&point);
    let uncertainty = model.uncertainty_pct(&point);
    let forced = mlp_faults::trip(mlp_faults::SURROGATE_UNCERTAIN);
    let mut body = format!(
        "{{\"benchmark\": \"{}\", \"window\": {}, \"mshrs\": {}, \"latency\": {}, \"l2_kb\": {}, \
         \"predicted_cpi\": {predicted}, \"uncertainty_pct\": {uncertainty}",
        point.workload_name(),
        point.window,
        point.mshrs,
        point.latency,
        point.l2_kb
    );
    if forced || uncertainty > UNCERTAINTY_BOUND_PCT {
        FALLBACK.inc();
        let cpi = sweep1000::simulate_point(&point, tier_scale());
        body.push_str(&format!(
            ", \"tier\": \"simulated\", \"fallback\": true, \"cpi\": {cpi}}}\n"
        ));
    } else {
        HITS.inc();
        body.push_str(", \"tier\": \"surrogate\", \"fallback\": false}\n");
    }
    Response::json(200, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Json {
        mlp_stats::json::parse(body).expect("valid json")
    }

    #[test]
    fn tier_detection_reads_the_tier_field() {
        assert!(is_surrogate_tier(&parse("{\"tier\": \"surrogate\"}")));
        assert!(!is_surrogate_tier(&parse("{\"tier\": \"other\"}")));
        assert!(!is_surrogate_tier(&parse("{\"experiment\": \"fm\"}")));
    }

    #[test]
    fn off_grid_and_malformed_points_are_rejected() {
        let _g = crate::test_guard();
        // No benchmark.
        assert_eq!(run_sync(&parse("{\"tier\": \"surrogate\"}")).status, 400);
        // Unknown benchmark.
        let body = "{\"tier\": \"surrogate\", \"benchmark\": \"nope\", \"window\": 64, \
                    \"mshrs\": 4, \"latency\": 500, \"l2_kb\": 1024}";
        assert_eq!(run_sync(&parse(body)).status, 400);
        // Off-grid window.
        let body = "{\"tier\": \"surrogate\", \"benchmark\": \"Database\", \"window\": 48, \
                    \"mshrs\": 4, \"latency\": 500, \"l2_kb\": 1024}";
        let resp = run_sync(&parse(body));
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8_lossy(&resp.body).contains("outside the sweep1000 grid"));
    }
}
