//! Supervised job scheduling: priority admission queues, in-flight
//! dedup, per-job deadlines, retry with capped backoff, and degraded
//! reports for everything that still fails.
//!
//! The containment ladder, innermost out:
//!
//! 1. `mlp_experiments::exec::run_isolated` — `catch_unwind` around the
//!    experiment body, so a panic becomes an error string.
//! 2. [`mlp_par::supervised`] — the run happens on its own watchdogged
//!    thread with a wall-clock deadline; a *hang* (which `catch_unwind`
//!    cannot help with) costs one detached thread, never a wedged
//!    worker.
//! 3. This module — transient failures retried with exponential backoff
//!    under the same deadline; exhausted or timed-out jobs degrade into
//!    a `status:"failed"` [`Report`] exactly like the CLI's, so clients
//!    always get a machine-readable body.
//!
//! The deadline clock starts when a job is first dequeued and spans all
//! retry attempts: retrying cannot extend a job's wall-clock budget.

use crate::cache::{fnv1a64, ResultCache};
use mlp_experiments::exec;
use mlp_experiments::registry::Experiment;
use mlp_experiments::report::Report;
use mlp_experiments::RunScale;
use mlp_obs::{Counter, Histogram};
use mlp_par::Supervised;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static JOBS_SUBMITTED: Counter = Counter::new("serve.jobs.submitted");
static JOBS_DEDUPED: Counter = Counter::new("serve.jobs.deduped");
static JOBS_SHED: Counter = Counter::new("serve.jobs.shed");
static JOBS_OK: Counter = Counter::new("serve.jobs.ok");
static JOBS_DEGRADED: Counter = Counter::new("serve.jobs.degraded");
static JOBS_RETRIED: Counter = Counter::new("serve.jobs.retried");
static CACHE_HITS: Counter = Counter::new("serve.cache.hits");
static CACHE_STORE_ERRORS: Counter = Counter::new("serve.cache.store_errors");
static JOB_LATENCY_MS: Histogram = Histogram::new("serve.job.latency_ms");

/// Completed (ok or degraded) jobs kept addressable by id after they
/// leave the dedup map; older ones are forgotten.
const DONE_RING: usize = 256;

/// Retry backoff: `50ms << attempt`, capped.
const BACKOFF_BASE: Duration = Duration::from_millis(50);
const BACKOFF_CAP: Duration = Duration::from_secs(1);
const BACKOFF_JITTER_MS: u64 = 25;

/// Admission priority; lower index drains first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    High = 0,
    Normal = 1,
    Low = 2,
}

impl Priority {
    /// Parses a request's priority field.
    pub fn parse(name: &str) -> Option<Priority> {
        match name {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// The dedup identity of a job: same experiment at the same scale is
/// the same work (all runs are deterministic, see `runner::SEED`).
type JobKey = (&'static str, &'static str);

/// Where a job is in its life.
enum JobState {
    Queued,
    Running,
    Done(Arc<JobOutcome>),
}

/// The terminal result of a job.
pub struct JobOutcome {
    /// Report JSON — on success byte-identical to what
    /// `mlp-experiments --json` writes for the same experiment/scale; on
    /// failure a `status:"failed"` degraded report.
    pub body: Vec<u8>,
    /// Whether the report is a successful one.
    pub ok: bool,
    /// Whether the body came from the result cache.
    pub from_cache: bool,
    /// Retries consumed before the terminal outcome.
    pub retries_used: u32,
}

/// One submitted job. Shared between the submitter (waiting) and the
/// worker (running); dedup hands the same cell to every joiner.
pub struct JobCell {
    /// Monotonic job id, for the async status endpoint.
    pub id: u64,
    /// The experiment to run.
    pub experiment: &'static dyn Experiment,
    /// The scale to run it at.
    pub scale: RunScale,
    /// Admission priority.
    pub priority: Priority,
    state: Mutex<JobState>,
    done: Condvar,
}

impl JobCell {
    /// `queued` / `running` / `done`, for status reporting.
    pub fn state_name(&self) -> &'static str {
        match *self.lock_state() {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
        }
    }

    /// The outcome, if the job has finished.
    pub fn poll(&self) -> Option<Arc<JobOutcome>> {
        match &*self.lock_state() {
            JobState::Done(out) => Some(out.clone()),
            _ => None,
        }
    }

    /// Blocks until the job finishes.
    pub fn wait(&self) -> Arc<JobOutcome> {
        let mut st = self.lock_state();
        loop {
            if let JobState::Done(out) = &*st {
                return out.clone();
            }
            st = self.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, JobState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn finish(&self, outcome: Arc<JobOutcome>) {
        *self.lock_state() = JobState::Done(outcome);
        self.done.notify_all();
    }
}

/// Scheduler tuning.
pub struct SchedConfig {
    /// Worker threads (min 1).
    pub workers: usize,
    /// Max queued (not yet running) jobs before submissions shed.
    pub queue_cap: usize,
    /// Per-job wall-clock deadline, spanning all retries.
    pub deadline: Duration,
    /// Max retries for transient failures.
    pub retries: u32,
    /// Result cache; `None` disables caching.
    pub cache: Option<ResultCache>,
}

struct SchedState {
    queues: [VecDeque<Arc<JobCell>>; 3],
    /// Queued or running jobs by key — the dedup map.
    inflight: HashMap<JobKey, Arc<JobCell>>,
    /// Every addressable job by id (bounded by `DONE_RING` for done ones).
    jobs: HashMap<u64, Arc<JobCell>>,
    done_order: VecDeque<u64>,
    next_id: u64,
    shutdown: bool,
}

struct Inner {
    deadline: Duration,
    retries: u32,
    queue_cap: usize,
    cache: Option<ResultCache>,
    state: Mutex<SchedState>,
    work: Condvar,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// How a submission was admitted.
pub enum Submitted {
    /// A fresh job was queued.
    New(Arc<JobCell>),
    /// An identical job was already in flight; joined to it.
    Joined(Arc<JobCell>),
}

impl Submitted {
    /// The cell either way.
    pub fn cell(&self) -> &Arc<JobCell> {
        match self {
            Submitted::New(c) | Submitted::Joined(c) => c,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full — shed (429).
    Shed {
        /// Jobs queued at refusal time.
        queued: usize,
    },
    /// The daemon is shutting down (503).
    ShuttingDown,
}

/// Queue gauges for `/statusz`.
pub struct Depths {
    /// Jobs admitted but not yet dequeued.
    pub queued: usize,
    /// Jobs currently running on workers.
    pub running: usize,
}

/// The supervised worker pool.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts the worker pool.
    pub fn start(cfg: SchedConfig) -> Scheduler {
        let inner = Arc::new(Inner {
            deadline: cfg.deadline,
            retries: cfg.retries,
            queue_cap: cfg.queue_cap,
            cache: cfg.cache,
            state: Mutex::new(SchedState {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                inflight: HashMap::new(),
                jobs: HashMap::new(),
                done_order: VecDeque::new(),
                next_id: 1,
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("mlp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Admits a job, joining an identical in-flight one when possible
    /// and shedding when the queue is full.
    pub fn submit(
        &self,
        experiment: &'static dyn Experiment,
        scale: RunScale,
        priority: Priority,
    ) -> Result<Submitted, SubmitError> {
        let key: JobKey = (experiment.name(), scale.label());
        let mut st = self.inner.lock();
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if let Some(cell) = st.inflight.get(&key) {
            JOBS_DEDUPED.inc();
            return Ok(Submitted::Joined(cell.clone()));
        }
        let queued: usize = st.queues.iter().map(VecDeque::len).sum();
        if queued >= self.inner.queue_cap {
            JOBS_SHED.inc();
            return Err(SubmitError::Shed { queued });
        }
        let id = st.next_id;
        st.next_id += 1;
        let cell = Arc::new(JobCell {
            id,
            experiment,
            scale,
            priority,
            state: Mutex::new(JobState::Queued),
            done: Condvar::new(),
        });
        st.queues[priority as usize].push_back(cell.clone());
        st.inflight.insert(key, cell.clone());
        st.jobs.insert(id, cell.clone());
        JOBS_SUBMITTED.inc();
        drop(st);
        self.inner.work.notify_one();
        Ok(Submitted::New(cell))
    }

    /// The job with `id`, if still addressable.
    pub fn job(&self, id: u64) -> Option<Arc<JobCell>> {
        self.inner.lock().jobs.get(&id).cloned()
    }

    /// Queue gauges.
    pub fn depths(&self) -> Depths {
        let st = self.inner.lock();
        let queued: usize = st.queues.iter().map(VecDeque::len).sum();
        Depths {
            queued,
            running: st.inflight.len() - queued,
        }
    }

    /// Stops admitting, drains the queues, and joins the workers.
    /// Detached (timed-out) job threads are left to the OS — that is
    /// the point of the watchdog.
    pub fn shutdown(&self) {
        self.inner.lock().shutdown = true;
        self.inner.work.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let cell = {
            let mut st = inner.lock();
            loop {
                if let Some(cell) = st.queues.iter_mut().find_map(|q| q.pop_front()) {
                    break cell;
                }
                if st.shutdown {
                    return;
                }
                st = inner.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        *cell.lock_state() = JobState::Running;
        let outcome = Arc::new(run_job(inner, &cell));
        // Retire the dedup key BEFORE publishing the outcome: once a
        // waiter observes Done, a fresh identical submission must start
        // a new job (e.g. to re-check the cache), not join this one.
        {
            let mut st = inner.lock();
            st.inflight
                .remove(&(cell.experiment.name(), cell.scale.label()));
            st.done_order.push_back(cell.id);
            while st.done_order.len() > DONE_RING {
                if let Some(old) = st.done_order.pop_front() {
                    st.jobs.remove(&old);
                }
            }
        }
        cell.finish(outcome);
    }
}

/// Runs one job to its terminal outcome. The deadline clock starts here
/// — at first dequeue — and is shared by every retry attempt.
fn run_job(inner: &Inner, cell: &JobCell) -> JobOutcome {
    let exp = cell.experiment;
    let scale = cell.scale;
    let t0 = Instant::now();

    if let Some(cache) = &inner.cache {
        if let Some(body) = cache.load(exp.name(), scale.label()) {
            CACHE_HITS.inc();
            JOBS_OK.inc();
            JOB_LATENCY_MS.record(t0.elapsed().as_millis() as u64);
            return JobOutcome {
                body,
                ok: true,
                from_cache: true,
                retries_used: 0,
            };
        }
    }

    let mut attempt: u32 = 0;
    loop {
        let remaining = inner.deadline.saturating_sub(t0.elapsed());
        if remaining.is_zero() {
            return degraded(exp, scale, deadline_error(inner.deadline), t0, attempt);
        }
        // The probes live OUTSIDE run_isolated's catch_unwind but INSIDE
        // the supervised thread: a hang is contained by the watchdog, an
        // IO-error panic by supervised's own catch_unwind.
        let supervised_run = mlp_par::supervised(remaining, move || {
            if mlp_faults::trip(mlp_faults::SERVE_JOB_HANG) {
                std::thread::sleep(Duration::from_secs(3600));
            }
            if mlp_faults::trip(mlp_faults::SERVE_IO_ERROR) {
                panic!("injected fault: serve-io-error (transient)");
            }
            exec::run_isolated(exp, scale).outcome
        });
        let error = match supervised_run {
            Supervised::Finished(Ok(run)) => {
                let body = run.report.to_json().into_bytes();
                if let Some(cache) = &inner.cache {
                    if cache.store(exp.name(), scale.label(), &body).is_err() {
                        CACHE_STORE_ERRORS.inc();
                    }
                }
                JOBS_OK.inc();
                JOB_LATENCY_MS.record(t0.elapsed().as_millis() as u64);
                return JobOutcome {
                    body,
                    ok: true,
                    from_cache: false,
                    retries_used: attempt,
                };
            }
            Supervised::Finished(Err(msg)) | Supervised::Panicked(msg) => msg,
            Supervised::TimedOut => {
                return degraded(exp, scale, deadline_error(inner.deadline), t0, attempt)
            }
        };
        if is_transient(&error) && attempt < inner.retries {
            JOBS_RETRIED.inc();
            let pause =
                backoff(exp.name(), attempt).min(inner.deadline.saturating_sub(t0.elapsed()));
            std::thread::sleep(pause);
            attempt += 1;
            continue;
        }
        return degraded(exp, scale, error, t0, attempt);
    }
}

fn deadline_error(deadline: Duration) -> String {
    format!("job exceeded its {}ms deadline", deadline.as_millis())
}

/// Failures worth retrying: injected transient faults and the I/O-flavored
/// panics the trace tier emits under disk pressure. Everything else
/// (wrong config, logic bugs) would fail identically on retry.
fn is_transient(error: &str) -> bool {
    error.contains("injected fault: serve-io-error")
        || error.contains("trace cache")
        || error.contains("spill")
}

/// Exponential backoff with deterministic per-(job, attempt) jitter so
/// deduped retry storms don't re-synchronize.
fn backoff(name: &str, attempt: u32) -> Duration {
    let exp = BACKOFF_BASE
        .saturating_mul(1u32 << attempt.min(10))
        .min(BACKOFF_CAP);
    let mut key = name.as_bytes().to_vec();
    key.extend_from_slice(&attempt.to_le_bytes());
    exp + Duration::from_millis(fnv1a64(&key) % BACKOFF_JITTER_MS)
}

/// A `status:"failed"` degraded report, same shape the CLI writes.
fn degraded(
    exp: &'static dyn Experiment,
    scale: RunScale,
    error: String,
    t0: Instant,
    attempt: u32,
) -> JobOutcome {
    let report = Report::failed(
        exp.name(),
        exp.description(),
        exp.section(),
        scale,
        error,
        t0.elapsed().as_millis() as u64,
    );
    JOBS_DEGRADED.inc();
    JOB_LATENCY_MS.record(t0.elapsed().as_millis() as u64);
    JobOutcome {
        body: report.to_json().into_bytes(),
        ok: false,
        from_cache: false,
        retries_used: attempt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_experiments::registry;

    fn sched(workers: usize, queue_cap: usize, deadline_ms: u64, retries: u32) -> Scheduler {
        Scheduler::start(SchedConfig {
            workers,
            queue_cap,
            deadline: Duration::from_millis(deadline_ms),
            retries,
            cache: None,
        })
    }

    #[test]
    fn job_body_matches_direct_run() {
        let _g = crate::test_guard();
        let s = sched(1, 8, 300_000, 0);
        let e = registry::find("fm").expect("fm registered");
        let sub = s.submit(e, RunScale::quick(), Priority::Normal).unwrap();
        let out = sub.cell().wait();
        assert!(out.ok);
        assert!(!out.from_cache);
        let direct = e.run(RunScale::quick()).report.to_json();
        assert_eq!(out.body, direct.as_bytes());
        s.shutdown();
    }

    #[test]
    fn identical_jobs_dedupe_and_distinct_scales_do_not() {
        let _g = crate::test_guard();
        // Dedup is checked before the queue cap, so with cap 1 an
        // identical submission joins while a distinct one sheds.
        let s = sched(1, 1, 300_000, 0);
        let e = registry::find("fm").expect("fm registered");
        let l3 = registry::find("l3").expect("l3 registered");
        // Block the lone worker with a deliberately slow-but-bounded job
        // first so admission state is observable.
        let first = s.submit(e, RunScale::quick(), Priority::Normal).unwrap();
        assert!(matches!(first, Submitted::New(_)));
        // While the first may or may not have been dequeued yet, an
        // identical submission must always join, never double-run.
        let second = s.submit(e, RunScale::quick(), Priority::Normal).unwrap();
        assert!(matches!(second, Submitted::Joined(_)));
        assert_eq!(first.cell().id, second.cell().id);
        // A different experiment is a different key: it either queues
        // (if fm was already dequeued) or sheds (queue full) — but must
        // never join fm's cell.
        match s.submit(l3, RunScale::quick(), Priority::Normal) {
            Ok(sub) => assert_ne!(sub.cell().id, first.cell().id),
            Err(SubmitError::Shed { .. }) => {}
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
        let out = first.cell().wait();
        assert!(out.ok);
        s.shutdown();
    }

    #[test]
    fn timed_out_job_degrades_with_deadline_in_error() {
        let _g = crate::test_guard();
        mlp_faults::set_for_test(Some((mlp_faults::SERVE_JOB_HANG, 1)));
        let s = sched(1, 8, 200, 0);
        let e = registry::find("fm").expect("fm registered");
        let sub = s.submit(e, RunScale::quick(), Priority::Normal).unwrap();
        let out = sub.cell().wait();
        mlp_faults::set_for_test(None);
        assert!(!out.ok, "hung job must degrade, not hang the waiter");
        let body = String::from_utf8(out.body.clone()).unwrap();
        assert!(
            body.contains("\"status\": \"failed\""),
            "degraded report expected, got: {body}"
        );
        assert!(
            body.contains("exceeded its 200ms deadline"),
            "error must name the deadline, got: {body}"
        );
        s.shutdown();
    }

    #[test]
    fn transient_failure_is_retried_to_success() {
        let _g = crate::test_guard();
        mlp_faults::set_for_test(Some((mlp_faults::SERVE_IO_ERROR, 1)));
        let s = sched(1, 8, 300_000, 2);
        let e = registry::find("fm").expect("fm registered");
        let sub = s.submit(e, RunScale::quick(), Priority::Normal).unwrap();
        let out = sub.cell().wait();
        mlp_faults::set_for_test(None);
        assert!(
            out.ok,
            "one transient fault within retry budget must succeed"
        );
        assert_eq!(out.retries_used, 1);
        let direct = e.run(RunScale::quick()).report.to_json();
        assert_eq!(out.body, direct.as_bytes(), "retried body must be pristine");
        s.shutdown();
    }

    #[test]
    fn exhausted_retries_degrade() {
        let _g = crate::test_guard();
        // Arm occurrence 1 with zero retries: the first attempt panics
        // and there is no budget to retry into.
        mlp_faults::set_for_test(Some((mlp_faults::SERVE_IO_ERROR, 1)));
        let s = sched(1, 8, 300_000, 0);
        let e = registry::find("fm").expect("fm registered");
        let sub = s.submit(e, RunScale::quick(), Priority::Normal).unwrap();
        let out = sub.cell().wait();
        mlp_faults::set_for_test(None);
        assert!(!out.ok);
        let body = String::from_utf8(out.body.clone()).unwrap();
        assert!(body.contains("injected fault: serve-io-error"));
        s.shutdown();
    }

    #[test]
    fn cache_serves_second_request_and_heals_corruption() {
        let _g = crate::test_guard();
        let dir = std::env::temp_dir().join(format!("mlp-serve-jobs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = Scheduler::start(SchedConfig {
            workers: 1,
            queue_cap: 8,
            deadline: Duration::from_secs(300),
            retries: 0,
            cache: Some(ResultCache::new(&dir)),
        });
        let e = registry::find("fm").expect("fm registered");
        let first = s
            .submit(e, RunScale::quick(), Priority::Normal)
            .unwrap()
            .cell()
            .wait();
        assert!(first.ok && !first.from_cache);
        let second = s
            .submit(e, RunScale::quick(), Priority::Normal)
            .unwrap()
            .cell()
            .wait();
        assert!(second.ok && second.from_cache, "second run must hit cache");
        assert_eq!(first.body, second.body);
        // Corrupt the entry on disk: the next job detects it, evicts,
        // regenerates, and the body is still byte-identical.
        let cache = ResultCache::new(&dir);
        let path = cache.entry_path("fm", "quick");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let third = s
            .submit(e, RunScale::quick(), Priority::Normal)
            .unwrap()
            .cell()
            .wait();
        assert!(
            third.ok && !third.from_cache,
            "corrupt entry must regenerate"
        );
        assert_eq!(first.body, third.body);
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let _g = crate::test_guard();
        let s = sched(2, 8, 300_000, 0);
        let e = registry::find("fm").expect("fm registered");
        let sub = s.submit(e, RunScale::quick(), Priority::Low).unwrap();
        s.shutdown();
        // Workers drain before exiting, so the waiter never hangs.
        assert!(sub.cell().poll().is_some(), "job must finish before join");
        assert!(matches!(
            s.submit(e, RunScale::quick(), Priority::Normal),
            Err(SubmitError::ShuttingDown)
        ));
    }
}
