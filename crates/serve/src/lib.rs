//! `mlp-serve`: a fault-isolated simulation daemon over the
//! `mlp-experiments` registry.
//!
//! Batch CLIs rerun everything on every invocation and die with their
//! worst job. This crate turns the experiment registry into a long-lived
//! service with the opposite posture: **any single job may panic, hang,
//! fail its I/O or corrupt its cache entry, and the daemon keeps serving
//! every other job, byte-identically**.
//!
//! The pieces, one module each:
//!
//! - [`http`] — hand-rolled HTTP/1.1 subset (the workspace builds
//!   offline; no hyper, no serde).
//! - [`jobs`] — supervised worker pool: priority admission queues with
//!   load shedding, in-flight dedup of identical `(experiment, scale)`
//!   jobs, per-job wall-clock deadlines enforced by a watchdog
//!   ([`mlp_par::supervised`]), capped exponential backoff with
//!   deterministic jitter for transient failures, and degraded
//!   `status:"failed"` reports for everything that still fails.
//! - [`cache`] — crash-safe on-disk result cache (atomic temp+rename
//!   writes, corrupt entries detected, evicted and regenerated).
//! - [`server`] — routing and introspection (`/healthz`, `/statusz`).
//! - [`surrogate`] — the fast-path tier: `"tier": "surrogate"` requests
//!   answered from the fitted `mlp-surrogate` CPI model in microseconds,
//!   with a real-simulation fallback when the prediction's uncertainty
//!   exceeds the pinned bound.
//!
//! Failure model (what a client sees):
//!
//! | fault inside a job        | contained by            | response |
//! |---------------------------|-------------------------|----------|
//! | panic                     | `catch_unwind` ladder   | 200, `status:"failed"` report naming the panic |
//! | hang                      | watchdog deadline       | 200, `status:"failed"` report naming the deadline |
//! | transient I/O error       | retry + backoff         | 200, pristine report (retried) |
//! | corrupt cache entry       | load-time validation    | 200, pristine report (regenerated) |
//! | queue full                | admission control       | 429, retry later |
//!
//! Determinism makes the strong guarantee testable: every experiment is
//! seeded, so a response body is a pure function of
//! `(experiment, scale)` — the chaos suite (`tests/chaos.rs`) asserts
//! sibling responses are *byte-identical* to solo runs while a fault
//! rampages next to them.

pub mod cache;
pub mod http;
pub mod jobs;
pub mod server;
pub mod surrogate;

/// Serializes unit tests that touch process-global state (the armed
/// fault slot, obs counters): `mlp_faults::set_for_test` is one slot per
/// process, and a concurrent test storing through the result cache
/// would consume another test's armed occurrence.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
