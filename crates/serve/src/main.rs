//! `mlp-serve` — the fault-isolated simulation daemon.
//!
//! Usage:
//!
//! ```text
//! mlp-serve [--addr host:port] [--port-file <path>] [--workers N]
//!           [--queue N] [--deadline-ms N] [--retries N]
//!           [--cache-dir <dir>] [--trace-cache <dir>]
//! ```
//!
//! Binds `--addr` (default `127.0.0.1:0`, an ephemeral port) and serves
//! experiment jobs until `POST /v1/shutdown`. `--port-file` writes the
//! bound `host:port` to a file once listening — `scripts/check.sh` and
//! the chaos tests use it instead of racing log output. Jobs run on
//! `--workers` supervised threads behind a `--queue`-bounded admission
//! queue; each gets `--deadline-ms` of wall clock spanning up to
//! `--retries` retries of transient failures. `--cache-dir` enables the
//! crash-safe result cache; `--trace-cache` pins the workload spill
//! directory exactly like `mlp-experiments --trace-cache` (the warm
//! in-memory [`mlp_workloads::TraceStore`] is process-global either way,
//! so repeated jobs share materialized traces).
//!
//! Exit codes: `0` on clean shutdown, `1` on serve errors, `2` for
//! usage errors.

use mlp_serve::cache::ResultCache;
use mlp_serve::jobs::{SchedConfig, Scheduler};
use mlp_serve::server::Server;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: mlp-serve [--addr host:port] [--port-file <path>] [--workers N] \
         [--queue N] [--deadline-ms N] [--retries N] [--cache-dir <dir>] \
         [--trace-cache <dir>]"
    );
    std::process::exit(2);
}

struct Cli {
    addr: String,
    port_file: Option<String>,
    workers: usize,
    queue: usize,
    deadline_ms: u64,
    retries: u32,
    cache_dir: Option<String>,
    trace_cache: Option<String>,
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli = Cli {
        addr: "127.0.0.1:0".to_string(),
        port_file: None,
        workers: 2,
        queue: 16,
        deadline_ms: 300_000,
        retries: 2,
        cache_dir: None,
        trace_cache: None,
    };
    fn value<'a>(flag: &str, it: &mut impl Iterator<Item = &'a String>) -> &'a String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    }
    fn number<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("{flag} needs a number, got '{raw}'");
            usage()
        })
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cli.addr = value("--addr", &mut it).clone(),
            "--port-file" => cli.port_file = Some(value("--port-file", &mut it).clone()),
            "--workers" => cli.workers = number("--workers", value("--workers", &mut it)),
            "--queue" => cli.queue = number("--queue", value("--queue", &mut it)),
            "--deadline-ms" => {
                cli.deadline_ms = number("--deadline-ms", value("--deadline-ms", &mut it))
            }
            "--retries" => cli.retries = number("--retries", value("--retries", &mut it)),
            "--cache-dir" => cli.cache_dir = Some(value("--cache-dir", &mut it).clone()),
            "--trace-cache" => cli.trace_cache = Some(value("--trace-cache", &mut it).clone()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    cli
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args);

    // Same compact containment as the CLI: a contained job panic is one
    // stderr line, not a backtrace storm.
    mlp_experiments::exec::install_compact_panic_hook();

    if let Some(dir) = &cli.trace_cache {
        mlp_workloads::TraceStore::global().set_cache_dir(dir);
    }

    let sched = Scheduler::start(SchedConfig {
        workers: cli.workers,
        queue_cap: cli.queue,
        deadline: Duration::from_millis(cli.deadline_ms),
        retries: cli.retries,
        cache: cli.cache_dir.as_ref().map(ResultCache::new),
    });

    let server = match Server::bind(&cli.addr, sched) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mlp-serve: cannot bind {}: {e}", cli.addr);
            std::process::exit(1);
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mlp-serve: no local address: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &cli.port_file {
        // Written atomically so a watching script never reads a torn
        // half-written address.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, format!("{addr}\n"))
            .and_then(|()| std::fs::rename(&tmp, path))
            .is_err()
        {
            eprintln!("mlp-serve: cannot write port file '{path}'");
            std::process::exit(1);
        }
    }
    eprintln!(
        "[mlp-serve listening on {addr}: {} workers, queue {}, deadline {}ms, retries {}, cache {}]",
        cli.workers,
        cli.queue,
        cli.deadline_ms,
        cli.retries,
        cli.cache_dir.as_deref().unwrap_or("off"),
    );

    match server.run() {
        Ok(()) => eprintln!("[mlp-serve drained and stopped]"),
        Err(e) => {
            eprintln!("mlp-serve: serve error: {e}");
            std::process::exit(1);
        }
    }
}
