//! Crash-safe on-disk result cache.
//!
//! Completed successful reports are written `temp + rename` so a crash
//! mid-write can never leave a half-written entry under the final name.
//! Loads re-validate the entry before serving it: the bytes must parse
//! as JSON, carry an `mlp-experiments.report/*` schema tag, claim
//! `status:"ok"` and name the experiment the key says it holds. Anything
//! else — truncation, bit rot, an injected `serve-cache-corrupt` fault —
//! is treated as a miss: the entry is deleted and the job regenerates it.
//!
//! Entries are keyed `<experiment>.<hash16>.json` where `hash16` is the
//! FNV-1a-64 of `experiment\0scale`, so distinct scales of the same
//! experiment coexist and the filename stays greppable by experiment.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit. Used for cache filenames and (in `jobs`) deterministic
/// backoff jitter; stable across runs by construction.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The on-disk result cache rooted at one directory.
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache { dir: dir.into() }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for `(experiment, scale)`.
    pub fn entry_path(&self, experiment: &str, scale: &str) -> PathBuf {
        let mut key = Vec::with_capacity(experiment.len() + 1 + scale.len());
        key.extend_from_slice(experiment.as_bytes());
        key.push(0);
        key.extend_from_slice(scale.as_bytes());
        self.dir
            .join(format!("{experiment}.{:016x}.json", fnv1a64(&key)))
    }

    /// Returns the cached report bytes for `(experiment, scale)` if a
    /// valid entry exists. A present-but-invalid entry is removed and
    /// reported as a miss, so corruption costs one regeneration, never a
    /// poisoned response.
    pub fn load(&self, experiment: &str, scale: &str) -> Option<Vec<u8>> {
        let path = self.entry_path(experiment, scale);
        let bytes = fs::read(&path).ok()?;
        if entry_is_valid(&bytes, experiment) {
            return Some(bytes);
        }
        // Corrupt or foreign: evict so the next run rewrites it.
        let _ = fs::remove_file(&path);
        None
    }

    /// Stores `report_bytes` for `(experiment, scale)` atomically
    /// (unique temp file in the same directory, then rename). Errors are
    /// returned, not panicked: a read-only cache dir degrades the daemon
    /// to cache-off, it does not kill jobs.
    ///
    /// Fault site `serve-cache-corrupt` truncates the bytes mid-entry
    /// before the write, modelling torn storage underneath the rename.
    pub fn store(&self, experiment: &str, scale: &str, report_bytes: &[u8]) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(experiment, scale);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let mut bytes = report_bytes;
        if mlp_faults::trip(mlp_faults::SERVE_CACHE_CORRUPT) {
            bytes = &report_bytes[..report_bytes.len() / 2];
        }
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// A cache entry is served only if it parses and its identity fields
/// match what the key promises.
fn entry_is_valid(bytes: &[u8], experiment: &str) -> bool {
    let text = match std::str::from_utf8(bytes) {
        Ok(t) => t,
        Err(_) => return false,
    };
    let json = match mlp_stats::json::parse(text) {
        Ok(j) => j,
        Err(_) => return false,
    };
    let schema_ok = json
        .get("schema")
        .and_then(|s| s.as_str())
        .is_some_and(|s| s.starts_with("mlp-experiments.report/"));
    let status_ok = json
        .get("status")
        .and_then(|s| s.as_str())
        .is_some_and(|s| s == "ok");
    let name_ok = json
        .get("experiment")
        .and_then(|s| s.as_str())
        .is_some_and(|s| s == experiment);
    schema_ok && status_ok && name_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mlp-serve-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    const GOOD: &str = r#"{
  "schema": "mlp-experiments.report/v2",
  "experiment": "fm",
  "status": "ok",
  "rows": []
}"#;

    #[test]
    fn round_trips_a_valid_entry() {
        let cache = ResultCache::new(temp_dir("roundtrip"));
        cache.store("fm", "quick", GOOD.as_bytes()).unwrap();
        assert_eq!(cache.load("fm", "quick").as_deref(), Some(GOOD.as_bytes()));
        // Different scale: distinct entry, so a miss.
        assert!(cache.load("fm", "standard").is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_are_evicted_not_served() {
        let cache = ResultCache::new(temp_dir("corrupt"));
        cache.store("fm", "quick", GOOD.as_bytes()).unwrap();
        let path = cache.entry_path("fm", "quick");
        fs::write(&path, &GOOD.as_bytes()[..GOOD.len() / 2]).unwrap();
        assert!(
            cache.load("fm", "quick").is_none(),
            "truncated entry served"
        );
        assert!(!path.exists(), "corrupt entry must be evicted");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn mismatched_or_failed_entries_are_misses() {
        let cache = ResultCache::new(temp_dir("mismatch"));
        // Entry claims a different experiment than its key.
        cache.store("l3", "quick", GOOD.as_bytes()).unwrap();
        assert!(cache.load("l3", "quick").is_none());
        // A failed report is never served from cache.
        let failed = GOOD.replace("\"ok\"", "\"failed\"");
        cache.store("fm", "quick", failed.as_bytes()).unwrap();
        assert!(cache.load("fm", "quick").is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn injected_corruption_is_detected_on_load() {
        let cache = ResultCache::new(temp_dir("fault"));
        mlp_faults::set_for_test(Some((mlp_faults::SERVE_CACHE_CORRUPT, 1)));
        cache.store("fm", "quick", GOOD.as_bytes()).unwrap();
        mlp_faults::set_for_test(None);
        assert!(
            cache.load("fm", "quick").is_none(),
            "fault-torn entry must read as a miss"
        );
        // The next store heals the entry.
        cache.store("fm", "quick", GOOD.as_bytes()).unwrap();
        assert_eq!(cache.load("fm", "quick").as_deref(), Some(GOOD.as_bytes()));
        let _ = fs::remove_dir_all(cache.dir());
    }
}
