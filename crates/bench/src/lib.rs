//! Benchmark harness for the MLP workspace.
//!
//! This crate carries no library code: everything lives in `benches/` —
//! Criterion micro-benchmarks (`micro`) and one `harness = false` target
//! per paper table/figure (`table1` … `figure11`), each of which prints
//! the regenerated result. Scale the experiment benches with
//! `MLP_BENCH_SCALE=quick|standard|full`.
