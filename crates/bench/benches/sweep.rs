//! Benchmarks the parallel sweep engine and the shared trace store, and
//! records the results in `results/BENCH_sweep.json`.
//!
//! Two comparisons:
//!
//! * **serial vs parallel** — one full Figure 5 sweep run with a single
//!   worker thread and again with every available core (both on a warm
//!   trace cache, so only the threading differs);
//! * **cold vs cached** — materializing every workload trace from
//!   scratch vs re-opening cursors on the already-materialized store.
//!
//! Scale via `MLP_BENCH_SCALE=quick|standard|full` (default: quick).
//!
//! Before overwriting `results/BENCH_sweep.json`, the previous file is
//! read back as a **performance guard**: if it was recorded at the same
//! scale and the new serial sweep is more than [`GUARD_FACTOR`]× slower,
//! the bench fails instead of silently blessing the regression (the
//! guard exists to catch accidental hot-path cost, e.g. observability
//! probes that stopped being free). `MLP_BENCH_GUARD=off` skips it —
//! for legitimately slower hosts or intentional trade-offs.

use mlp_experiments::{exp, runner, RunScale};
use mlp_workloads::{TraceStore, WorkloadKind};
use std::fmt::Write as _;
use std::time::Instant;

/// Maximum tolerated slowdown of `serial_secs` vs the recorded baseline
/// at the same scale. Generous on purpose: wall-clock on shared hosts is
/// noisy and the guard should only trip on structural regressions.
const GUARD_FACTOR: f64 = 3.0;

/// Pulls `"key": <number>` or `"key": "<string>"` out of the flat
/// baseline JSON without a parser dependency.
fn scan_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &json[json.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let end = rest.find([',', '\n', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// Fails (panics) if the previous baseline at the same scale is more
/// than [`GUARD_FACTOR`]× faster than this run's serial sweep.
fn guard_against_regression(baseline_path: &str, scale_label: &str, serial_secs: f64) {
    if std::env::var("MLP_BENCH_GUARD").as_deref() == Ok("off") {
        eprintln!("[bench guard disabled via MLP_BENCH_GUARD=off]");
        return;
    }
    let Ok(old) = std::fs::read_to_string(baseline_path) else {
        return; // first run: nothing to compare against
    };
    let (Some(old_scale), Some(old_secs)) = (
        scan_field(&old, "scale"),
        scan_field(&old, "serial_secs").and_then(|v| v.parse::<f64>().ok()),
    ) else {
        return; // unreadable baseline: overwrite rather than block
    };
    if old_scale != scale_label || old_secs <= 0.0 {
        return; // different scale: times are not comparable
    }
    assert!(
        serial_secs <= old_secs * GUARD_FACTOR,
        "serial sweep regressed: {serial_secs:.3}s vs {old_secs:.3}s baseline \
         (> {GUARD_FACTOR}x, scale {scale_label}); fix the regression or rerun \
         with MLP_BENCH_GUARD=off to re-bless"
    );
    eprintln!(
        "[bench guard: serial {serial_secs:.3}s vs baseline {old_secs:.3}s at \
         {scale_label} scale — within {GUARD_FACTOR}x]"
    );
}

fn main() {
    let (scale, scale_label) = match std::env::var("MLP_BENCH_SCALE") {
        Ok(s) => (
            RunScale::parse(&s).unwrap_or_else(RunScale::quick),
            s.clone(),
        ),
        Err(_) => (RunScale::quick(), "quick".to_string()),
    };
    let host_cores = mlp_par::available_threads();

    // Warm up once, untimed: the very first workload construction in a
    // process pays one-time init far larger than steady-state generation.
    let insts = scale.warmup + scale.measure;
    let store = TraceStore::global();
    for kind in WorkloadKind::ALL {
        let _ = runner::cursor(kind, insts);
    }

    // Steady-state trace materialization cost: regenerating every
    // workload trace the mlpsim sweeps need, from an empty store.
    store.clear();
    let t0 = Instant::now();
    for kind in WorkloadKind::ALL {
        let _ = runner::cursor(kind, insts);
    }
    let materialize_secs = t0.elapsed().as_secs_f64();

    // Cold vs cached at the experiment level: the same sweep with an
    // empty trace store (pays generation) and with a warm one (replays).
    // Figure 2 is pure trace analysis, so the cache is the whole story.
    store.clear();
    let t0 = Instant::now();
    let _ = exp::figure2::run(scale);
    let cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let _ = exp::figure2::run(scale);
    let cached_secs = t0.elapsed().as_secs_f64();

    // Serial vs parallel: the same Figure 5 sweep, warm cache both times.
    // On a single-core host the "parallel" run degenerates to a second
    // serial run, so the comparison (and its regression guard) is pure
    // noise — skip it and record only the trace-cache numbers.
    let serial_vs_parallel = if host_cores > 1 {
        mlp_par::set_thread_override(Some(1));
        let t0 = Instant::now();
        let serial = exp::figure5::run(scale);
        let serial_secs = t0.elapsed().as_secs_f64();

        mlp_par::set_thread_override(None);
        let threads = mlp_par::thread_count();
        let t0 = Instant::now();
        let parallel = exp::figure5::run(scale);
        let parallel_secs = t0.elapsed().as_secs_f64();

        assert_eq!(
            serial.render(),
            parallel.render(),
            "parallel sweep must render byte-identically to the serial run"
        );
        Some((serial_secs, parallel_secs, threads))
    } else {
        eprintln!("[single-core host: skipping the serial-vs-parallel sweep comparison]");
        None
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"figure5 sweep\",");
    let _ = writeln!(json, "  \"scale\": \"{scale_label}\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    if let Some((serial_secs, parallel_secs, threads)) = serial_vs_parallel {
        let _ = writeln!(json, "  \"serial_threads\": 1,");
        let _ = writeln!(json, "  \"parallel_threads\": {threads},");
        let _ = writeln!(json, "  \"serial_secs\": {serial_secs:.3},");
        let _ = writeln!(json, "  \"parallel_secs\": {parallel_secs:.3},");
        let _ = writeln!(
            json,
            "  \"parallel_speedup\": {:.3},",
            serial_secs / parallel_secs
        );
    } else {
        let _ = writeln!(
            json,
            "  \"serial_vs_parallel\": \"skipped: single-core host\","
        );
    }
    let _ = writeln!(json, "  \"trace_materialize_secs\": {materialize_secs:.3},");
    let _ = writeln!(json, "  \"sweep_cold_store_secs\": {cold_secs:.3},");
    let _ = writeln!(json, "  \"sweep_cached_store_secs\": {cached_secs:.3},");
    let _ = writeln!(
        json,
        "  \"trace_cache_speedup\": {:.2},",
        cold_secs / cached_secs.max(1e-9)
    );
    let _ = writeln!(json, "  \"cached_insts\": {},", store.cached_insts());
    let _ = writeln!(json, "  \"identical_output\": true,");
    let _ = writeln!(
        json,
        "  \"note\": \"serial and parallel runs share a warm trace cache; on a single-core host the parallel run degenerates to serial and the trace-cache speedup is the relevant win\""
    );
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(out).expect("create results dir");
    let path = format!("{out}/BENCH_sweep.json");
    if let Some((serial_secs, _, _)) = serial_vs_parallel {
        guard_against_regression(&path, &scale_label, serial_secs);
    }
    std::fs::write(&path, &json).expect("write BENCH_sweep.json");

    println!("{json}");
    println!("[sweep bench written to {path}]");
}
