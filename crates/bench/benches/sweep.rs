//! Benchmarks the parallel sweep engine and the shared trace store, and
//! records the results in `results/BENCH_sweep.json`.
//!
//! Two comparisons:
//!
//! * **serial vs parallel** — one full Figure 5 sweep run with a single
//!   worker thread and again with every available core (both on a warm
//!   trace cache, so only the threading differs);
//! * **cold vs cached** — materializing every workload trace from
//!   scratch vs re-opening cursors on the already-materialized store.
//!
//! Scale via `MLP_BENCH_SCALE=quick|standard|full` (default: quick).

use mlp_experiments::{exp, runner, RunScale};
use mlp_workloads::{TraceStore, WorkloadKind};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let (scale, scale_label) = match std::env::var("MLP_BENCH_SCALE") {
        Ok(s) => (
            RunScale::parse(&s).unwrap_or_else(RunScale::quick),
            s.clone(),
        ),
        Err(_) => (RunScale::quick(), "quick".to_string()),
    };
    let host_cores = mlp_par::available_threads();

    // Warm up once, untimed: the very first workload construction in a
    // process pays one-time init far larger than steady-state generation.
    let insts = scale.warmup + scale.measure;
    let store = TraceStore::global();
    for kind in WorkloadKind::ALL {
        let _ = runner::cursor(kind, insts);
    }

    // Steady-state trace materialization cost: regenerating every
    // workload trace the mlpsim sweeps need, from an empty store.
    store.clear();
    let t0 = Instant::now();
    for kind in WorkloadKind::ALL {
        let _ = runner::cursor(kind, insts);
    }
    let materialize_secs = t0.elapsed().as_secs_f64();

    // Cold vs cached at the experiment level: the same sweep with an
    // empty trace store (pays generation) and with a warm one (replays).
    // Figure 2 is pure trace analysis, so the cache is the whole story.
    store.clear();
    let t0 = Instant::now();
    let _ = exp::figure2::run(scale);
    let cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let _ = exp::figure2::run(scale);
    let cached_secs = t0.elapsed().as_secs_f64();

    // Serial vs parallel: the same Figure 5 sweep, warm cache both times.
    mlp_par::set_thread_override(Some(1));
    let t0 = Instant::now();
    let serial = exp::figure5::run(scale);
    let serial_secs = t0.elapsed().as_secs_f64();

    mlp_par::set_thread_override(None);
    let threads = mlp_par::thread_count();
    let t0 = Instant::now();
    let parallel = exp::figure5::run(scale);
    let parallel_secs = t0.elapsed().as_secs_f64();

    assert_eq!(
        serial.render(),
        parallel.render(),
        "parallel sweep must render byte-identically to the serial run"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"figure5 sweep\",");
    let _ = writeln!(json, "  \"scale\": \"{scale_label}\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"serial_threads\": 1,");
    let _ = writeln!(json, "  \"parallel_threads\": {threads},");
    let _ = writeln!(json, "  \"serial_secs\": {serial_secs:.3},");
    let _ = writeln!(json, "  \"parallel_secs\": {parallel_secs:.3},");
    let _ = writeln!(
        json,
        "  \"parallel_speedup\": {:.3},",
        serial_secs / parallel_secs
    );
    let _ = writeln!(json, "  \"trace_materialize_secs\": {materialize_secs:.3},");
    let _ = writeln!(json, "  \"sweep_cold_store_secs\": {cold_secs:.3},");
    let _ = writeln!(json, "  \"sweep_cached_store_secs\": {cached_secs:.3},");
    let _ = writeln!(
        json,
        "  \"trace_cache_speedup\": {:.2},",
        cold_secs / cached_secs.max(1e-9)
    );
    let _ = writeln!(json, "  \"cached_insts\": {},", store.cached_insts());
    let _ = writeln!(json, "  \"identical_output\": true,");
    let _ = writeln!(
        json,
        "  \"note\": \"serial and parallel runs share a warm trace cache; on a single-core host the parallel run degenerates to serial and the trace-cache speedup is the relevant win\""
    );
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(out).expect("create results dir");
    let path = format!("{out}/BENCH_sweep.json");
    std::fs::write(&path, &json).expect("write BENCH_sweep.json");

    println!("{json}");
    println!("[sweep bench written to {path}]");
}
