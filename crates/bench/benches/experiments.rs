//! Registry-driven experiment bench: regenerates every registered
//! table/figure as a `cargo bench` target and records per-experiment
//! wall times in `results/BENCH_experiments.json`.
//!
//! This single driver replaces the old one-bench-file-per-figure layout;
//! the registry is the source of truth for what exists.
//!
//! Scale via `MLP_BENCH_SCALE=quick|standard|full` (default: quick, so
//! `cargo bench --workspace` stays fast). Filter with
//! `MLP_BENCH_ONLY=<substring>` to time a subset.

use mlp_experiments::registry;
use mlp_experiments::RunScale;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let (scale, scale_label) = match std::env::var("MLP_BENCH_SCALE") {
        Ok(s) => (
            RunScale::parse(&s).unwrap_or_else(RunScale::quick),
            s.clone(),
        ),
        Err(_) => (RunScale::quick(), "quick".to_string()),
    };
    let selected = match std::env::var("MLP_BENCH_ONLY") {
        Ok(sub) => {
            let picked = registry::matching(&sub);
            assert!(!picked.is_empty(), "MLP_BENCH_ONLY={sub} matches nothing");
            picked
        }
        Err(_) => registry::REGISTRY.to_vec(),
    };

    let mut timings: Vec<(&'static str, f64)> = Vec::new();
    let t_all = Instant::now();
    for e in &selected {
        let t0 = Instant::now();
        let run = e.run(scale);
        let secs = t0.elapsed().as_secs_f64();
        println!("{}", run.text);
        println!("[{} regenerated in {secs:.1}s]", e.name());
        timings.push((e.name(), secs));
    }
    let total_secs = t_all.elapsed().as_secs_f64();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"registry experiments\",");
    let _ = writeln!(json, "  \"scale\": \"{scale_label}\",");
    let _ = writeln!(json, "  \"host_cores\": {},", mlp_par::available_threads());
    let _ = writeln!(json, "  \"threads\": {},", mlp_par::thread_count());
    let _ = writeln!(json, "  \"total_secs\": {total_secs:.3},");
    json.push_str("  \"experiments\": {\n");
    for (i, (name, secs)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {secs:.3}{comma}");
    }
    json.push_str("  }\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(out).expect("create results dir");
    let path = format!("{out}/BENCH_experiments.json");
    std::fs::write(&path, &json).expect("write BENCH_experiments.json");

    println!("{json}");
    println!("[experiment bench written to {path}]");
}
