//! Registry-driven experiment bench: regenerates every registered
//! table/figure as a `cargo bench` target and records per-experiment
//! wall times in `results/BENCH_experiments.json`.
//!
//! This single driver replaces the old one-bench-file-per-figure layout;
//! the registry is the source of truth for what exists.
//!
//! Scale via `MLP_BENCH_SCALE=quick|standard|full` (default: quick, so
//! `cargo bench --workspace` stays fast). Filter with
//! `MLP_BENCH_ONLY=<substring>` to time a subset.
//!
//! Before overwriting the results file, the previous one is read back as
//! a per-experiment **performance guard**: the hot sweeps ([`GUARDED`])
//! are compared individually — not just the total — and a
//! more-than-[`GUARD_FACTOR`]× slowdown at the same scale fails the
//! bench instead of silently blessing the regression.
//! `MLP_BENCH_GUARD=off` skips it, re-blessing the new numbers.

use mlp_experiments::registry;
use mlp_experiments::RunScale;
use std::fmt::Write as _;
use std::time::Instant;

/// Experiments whose wall time is guarded individually against the
/// recorded baseline — the hot sweeps this bench exists to watch.
const GUARDED: [&str; 3] = ["figure6", "table3", "figure5"];

/// Maximum tolerated per-experiment slowdown vs the recorded baseline at
/// the same scale. Generous on purpose: wall-clock on shared hosts is
/// noisy and the guard should only trip on structural regressions.
const GUARD_FACTOR: f64 = 3.0;

/// Pulls `"key": <value>` out of the flat baseline JSON without a parser
/// dependency (first occurrence wins; experiment names are unique keys).
fn scan_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &json[json.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let end = rest.find([',', '\n', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// Fails (panics) if any guarded experiment regressed more than
/// [`GUARD_FACTOR`]× against the same-scale baseline file. Individual
/// comparison per experiment — a regression in one hot sweep must not
/// hide inside an improvement elsewhere in the total.
fn guard_against_regression(baseline_path: &str, scale_label: &str, timings: &[(&str, f64)]) {
    if std::env::var("MLP_BENCH_GUARD").as_deref() == Ok("off") {
        eprintln!("[bench guard disabled via MLP_BENCH_GUARD=off]");
        return;
    }
    let Ok(old) = std::fs::read_to_string(baseline_path) else {
        return; // first run: nothing to compare against
    };
    if scan_field(&old, "scale") != Some(scale_label) {
        return; // different scale: times are not comparable
    }
    for &(name, secs) in timings {
        if !GUARDED.contains(&name) {
            continue;
        }
        let Some(old_secs) = scan_field(&old, name).and_then(|v| v.parse::<f64>().ok()) else {
            continue; // experiment not in the baseline yet
        };
        if old_secs <= 0.0 {
            continue;
        }
        assert!(
            secs <= old_secs * GUARD_FACTOR,
            "{name} regressed: {secs:.3}s vs {old_secs:.3}s baseline (> {GUARD_FACTOR}x, \
             scale {scale_label}); fix the regression or rerun with MLP_BENCH_GUARD=off \
             to re-bless"
        );
        eprintln!(
            "[bench guard: {name} {secs:.3}s vs baseline {old_secs:.3}s at {scale_label} \
             scale — within {GUARD_FACTOR}x]"
        );
    }
}

fn main() {
    let (scale, scale_label) = match std::env::var("MLP_BENCH_SCALE") {
        Ok(s) => (
            RunScale::parse(&s).unwrap_or_else(RunScale::quick),
            s.clone(),
        ),
        Err(_) => (RunScale::quick(), "quick".to_string()),
    };
    let selected = match std::env::var("MLP_BENCH_ONLY") {
        Ok(sub) => {
            let picked = registry::matching(&sub);
            assert!(!picked.is_empty(), "MLP_BENCH_ONLY={sub} matches nothing");
            picked
        }
        Err(_) => registry::REGISTRY.to_vec(),
    };

    let mut timings: Vec<(&'static str, f64)> = Vec::new();
    let t_all = Instant::now();
    for e in &selected {
        let t0 = Instant::now();
        let run = e.run(scale);
        let secs = t0.elapsed().as_secs_f64();
        println!("{}", run.text);
        println!("[{} regenerated in {secs:.1}s]", e.name());
        timings.push((e.name(), secs));
    }
    let total_secs = t_all.elapsed().as_secs_f64();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"registry experiments\",");
    let _ = writeln!(json, "  \"scale\": \"{scale_label}\",");
    let _ = writeln!(json, "  \"host_cores\": {},", mlp_par::available_threads());
    let _ = writeln!(json, "  \"threads\": {},", mlp_par::thread_count());
    let _ = writeln!(json, "  \"total_secs\": {total_secs:.3},");
    json.push_str("  \"experiments\": {\n");
    for (i, (name, secs)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {secs:.3}{comma}");
    }
    json.push_str("  }\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(out).expect("create results dir");
    let path = format!("{out}/BENCH_experiments.json");
    guard_against_regression(&path, &scale_label, &timings);
    std::fs::write(&path, &json).expect("write BENCH_experiments.json");

    println!("{json}");
    println!("[experiment bench written to {path}]");
}
