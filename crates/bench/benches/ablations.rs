//! Regenerates the design-parameter ablations as a `cargo bench` target.

use mlp_experiments::{exp, RunScale};
use std::time::Instant;

fn main() {
    let scale = std::env::var("MLP_BENCH_SCALE")
        .ok()
        .and_then(|s| RunScale::parse(&s))
        .unwrap_or_else(RunScale::quick);
    let t0 = Instant::now();
    println!("{}", exp::extensions::run_ablations(scale).render());
    println!(
        "[ablations regenerated in {:.1}s]",
        t0.elapsed().as_secs_f64()
    );
}
