//! Criterion micro-benchmarks of the core data structures and both
//! simulators: how many instructions per second each component sustains.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mlp_cyclesim::{CycleSim, CycleSimConfig};
use mlp_isa::{tracefile, TraceSource, VecTrace};
use mlp_mem::{Cache, CacheConfig, Hierarchy, HierarchyConfig};
use mlp_predict::{BranchObserver, BranchPredictor, BranchPredictorConfig};
use mlp_workloads::{micro, Workload, WorkloadKind};
use mlpsim::{MlpsimConfig, Simulator, WindowModel};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    let addrs: Vec<u64> = (0..4096u64)
        .map(|k| (k.wrapping_mul(2654435761)) << 6)
        .collect();
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("l2_access_stream", |b| {
        let mut cache = Cache::new(CacheConfig::new(2 * 1024 * 1024, 4));
        b.iter(|| {
            for &a in &addrs {
                black_box(cache.access(a));
            }
        })
    });
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    let trace: Vec<_> = Workload::new(WorkloadKind::Database, 1)
        .take(20_000)
        .collect();
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("classify_database_trace", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(HierarchyConfig::default());
            for i in &trace {
                h.ifetch(i.pc);
                if let Some(m) = i.mem {
                    black_box(h.load(m.addr));
                }
            }
        })
    });
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictors");
    let branches: Vec<_> = Workload::new(WorkloadKind::Database, 1)
        .take(200_000)
        .filter(|i| i.is_branch())
        .collect();
    g.throughput(Throughput::Elements(branches.len() as u64));
    g.bench_function("gshare_btb_ras", |b| {
        b.iter(|| {
            let mut p = BranchPredictor::new(BranchPredictorConfig::default());
            for i in &branches {
                black_box(p.observe(i));
            }
        })
    });
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    for kind in WorkloadKind::ALL {
        g.bench_function(format!("generate_{}", kind.name()), |b| {
            b.iter(|| {
                let mut wl = Workload::new(kind, 7);
                black_box(wl.skip_insts(n as usize));
            })
        });
    }
    g.finish();
}

fn bench_tracefile(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracefile");
    let trace: Vec<_> = Workload::new(WorkloadKind::SpecJbb2000, 3)
        .take(50_000)
        .collect();
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("encode_decode", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            tracefile::write(&mut buf, &trace).unwrap();
            black_box(tracefile::read(buf.as_slice()).unwrap())
        })
    });
    g.finish();
}

fn bench_mlpsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlpsim");
    g.sample_size(10);
    let n = 200_000usize;
    let trace: Vec<_> = Workload::new(WorkloadKind::Database, 9).take(n).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("epoch_engine_database", |b| {
        b.iter(|| {
            let mut t = VecTrace::new(trace.clone());
            Simulator::new(MlpsimConfig::default()).run(&mut t, 0, u64::MAX)
        })
    });
    g.bench_function("runahead_database", |b| {
        b.iter(|| {
            let mut t = VecTrace::new(trace.clone());
            Simulator::new(
                MlpsimConfig::builder()
                    .window(WindowModel::Runahead { max_dist: 2048 })
                    .build(),
            )
            .run(&mut t, 0, u64::MAX)
        })
    });
    g.finish();
}

fn bench_cyclesim(c: &mut Criterion) {
    let mut g = c.benchmark_group("cyclesim");
    g.sample_size(10);
    let n = 100_000usize;
    let trace: Vec<_> = Workload::new(WorkloadKind::Database, 9).take(n).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("pipeline_database", |b| {
        b.iter(|| {
            let mut t = VecTrace::new(trace.clone());
            CycleSim::new(CycleSimConfig::default()).run(&mut t, 0, u64::MAX)
        })
    });
    g.bench_function("runahead_database", |b| {
        use mlp_cyclesim::runahead::RunaheadSim;
        b.iter(|| {
            let mut t = VecTrace::new(trace.clone());
            RunaheadSim::new(CycleSimConfig::default(), 2048).run(&mut t, 0, u64::MAX)
        })
    });
    g.bench_function("smt_two_threads", |b| {
        use mlp_cyclesim::smt::SmtSim;
        use mlp_isa::TraceSource;
        b.iter(|| {
            let mut a = VecTrace::new(trace.clone());
            let mut bb = VecTrace::new(trace.clone());
            SmtSim::new(CycleSimConfig::default()).run(
                vec![
                    &mut a as &mut dyn TraceSource,
                    &mut bb as &mut dyn TraceSource,
                ],
                0,
                u64::MAX,
            )
        })
    });
    g.finish();
}

fn bench_micro_traces(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_traces");
    let t = micro::independent_misses(64, 3);
    g.bench_function("independent_misses_epoch_model", |b| {
        b.iter(|| {
            let mut s = VecTrace::new(t.clone());
            Simulator::new(MlpsimConfig::default()).run(&mut s, 0, u64::MAX)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_hierarchy,
    bench_predictors,
    bench_workload_generation,
    bench_tracefile,
    bench_mlpsim,
    bench_cyclesim,
    bench_micro_traces
);
criterion_main!(benches);
