//! Regenerates the runahead timing-domain study as a `cargo bench` target.

use mlp_experiments::{exp, RunScale};
use std::time::Instant;

fn main() {
    let scale = std::env::var("MLP_BENCH_SCALE")
        .ok()
        .and_then(|s| RunScale::parse(&s))
        .unwrap_or_else(RunScale::quick);
    let t0 = Instant::now();
    println!("{}", exp::extensions::run_rae_timing(scale).render());
    println!(
        "[rae-timing regenerated in {:.1}s]",
        t0.elapsed().as_secs_f64()
    );
}
