//! Benchmarks the `sweep1000` surrogate pipeline and records the
//! results in `results/BENCH_surrogate.json`.
//!
//! Four numbers, matching the crate's published claims:
//!
//! * **explore time** — the full active-sampling run (engine cells
//!   simulated on demand, free stencil labels, refits) on a warm trace
//!   cache;
//! * **fit time** — one surrogate refit (ridge + jackknife ensemble)
//!   from the explored corpus;
//! * **predict throughput** — model evaluations per second over the
//!   whole 3 888-point grid;
//! * **speedup vs full sweep** — grid points per engine cell actually
//!   simulated, and the wall-clock equivalent extrapolated from the
//!   measured per-cell cost. The acceptance floor (≥ 50×) and the
//!   cross-validated tolerance (median ≤ 5%, p99 ≤ 15%) are asserted
//!   here, not just recorded.
//!
//! Scale via `MLP_BENCH_SCALE=quick|standard|full` (default: quick).
//!
//! Like the other benches, the previous `BENCH_surrogate.json` acts as a
//! performance guard: same scale and more than [`GUARD_FACTOR`]× slower
//! exploration fails instead of silently blessing the regression.
//! `MLP_BENCH_GUARD=off` skips it.

use mlp_experiments::exp::sweep1000;
use mlp_experiments::{runner, RunScale};
use mlp_surrogate::{default_priors, ConfigPoint, Surrogate};
use mlp_workloads::WorkloadKind;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Maximum tolerated slowdown of `explore_secs` vs the recorded baseline
/// at the same scale (see `benches/sweep.rs` for the rationale).
const GUARD_FACTOR: f64 = 3.0;

/// Acceptance floor for the surrogate's win over pricing every grid
/// point with its own engine run.
const MIN_SPEEDUP_X: f64 = 50.0;

fn scan_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &json[json.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let end = rest.find([',', '\n', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

fn guard_against_regression(baseline_path: &str, scale_label: &str, explore_secs: f64) {
    if std::env::var("MLP_BENCH_GUARD").as_deref() == Ok("off") {
        eprintln!("[bench guard disabled via MLP_BENCH_GUARD=off]");
        return;
    }
    let Ok(old) = std::fs::read_to_string(baseline_path) else {
        return; // first run: nothing to compare against
    };
    let (Some(old_scale), Some(old_secs)) = (
        scan_field(&old, "scale"),
        scan_field(&old, "explore_secs").and_then(|v| v.parse::<f64>().ok()),
    ) else {
        return; // unreadable baseline: overwrite rather than block
    };
    if old_scale != scale_label || old_secs <= 0.0 {
        return; // different scale: times are not comparable
    }
    assert!(
        explore_secs <= old_secs * GUARD_FACTOR,
        "surrogate exploration regressed: {explore_secs:.3}s vs {old_secs:.3}s \
         baseline (> {GUARD_FACTOR}x, scale {scale_label}); fix the regression \
         or rerun with MLP_BENCH_GUARD=off to re-bless"
    );
    eprintln!(
        "[bench guard: explore {explore_secs:.3}s vs baseline {old_secs:.3}s at \
         {scale_label} scale — within {GUARD_FACTOR}x]"
    );
}

fn main() {
    let (scale, scale_label) = match std::env::var("MLP_BENCH_SCALE") {
        Ok(s) => (
            RunScale::parse(&s).unwrap_or_else(RunScale::quick),
            s.clone(),
        ),
        Err(_) => (RunScale::quick(), "quick".to_string()),
    };

    // Warm the trace store untimed: first-touch workload construction
    // pays one-time init the steady-state numbers should not carry.
    let insts = scale.warmup + scale.measure;
    for kind in WorkloadKind::ALL {
        let _ = runner::cursor(kind, insts);
    }

    // The full active-sampling pipeline: simulate cells on demand,
    // harvest stencil labels, refit until cross-validation converges.
    let t0 = Instant::now();
    let sweep = sweep1000::run(scale);
    let explore_secs = t0.elapsed().as_secs_f64();
    assert!(
        sweep.explored.converged,
        "exploration must converge within budget: cv {:?} after {} rounds",
        sweep.explored.cv, sweep.explored.rounds
    );
    let cv = &sweep.explored.cv;
    assert!(
        cv.within_tolerance(),
        "cross-validation out of tolerance: median {:.2}% p99 {:.2}%",
        cv.median_pct,
        cv.p99_pct
    );
    let speedup_x = sweep.speedup_x();
    assert!(
        speedup_x >= MIN_SPEEDUP_X,
        "surrogate must beat the full sweep by ≥ {MIN_SPEEDUP_X}×: \
         {} cells simulated for {} grid points ({speedup_x:.1}×)",
        sweep.cells,
        sweep.grid.len()
    );

    // One refit from the explored corpus: ridge + jackknife ensemble.
    let points: Vec<ConfigPoint> = sweep
        .explored
        .order
        .iter()
        .map(|&i| sweep.grid[i])
        .collect();
    let cpi = &sweep.explored.cpi;
    let priors = default_priors();
    let lambda = sweep1000::explore_config().lambda;
    let fit_reps = 5;
    let t0 = Instant::now();
    for _ in 0..fit_reps {
        black_box(Surrogate::fit_with(&points, cpi, &priors, lambda));
    }
    let fit_secs = t0.elapsed().as_secs_f64() / fit_reps as f64;

    // Predict throughput over the whole grid.
    let model = &sweep.explored.surrogate;
    let predict_reps = 20;
    let t0 = Instant::now();
    for _ in 0..predict_reps {
        for p in &sweep.grid {
            black_box(model.predict(p));
        }
    }
    let predict_secs = t0.elapsed().as_secs_f64();
    let predictions = predict_reps * sweep.grid.len();
    let predict_per_sec = predictions as f64 / predict_secs.max(1e-12);

    // Extrapolated full-sweep wall clock: the measured per-cell cost
    // times the cells a surrogate-free sweep would run.
    let cells_total = sweep.grid.len() / (sweep1000::MSHRS.len() * sweep1000::LATENCIES.len());
    let per_cell_secs = explore_secs / sweep.cells.max(1) as f64;
    let full_sweep_secs = per_cell_secs * cells_total as f64;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"sweep1000 surrogate\",");
    let _ = writeln!(json, "  \"scale\": \"{scale_label}\",");
    let _ = writeln!(json, "  \"grid_points\": {},", sweep.grid.len());
    let _ = writeln!(json, "  \"labeled_points\": {},", points.len());
    let _ = writeln!(json, "  \"cells_simulated\": {},", sweep.cells);
    let _ = writeln!(json, "  \"cells_total\": {cells_total},");
    let _ = writeln!(json, "  \"refit_rounds\": {},", sweep.explored.rounds);
    let _ = writeln!(json, "  \"explore_secs\": {explore_secs:.3},");
    let _ = writeln!(json, "  \"fit_secs\": {fit_secs:.4},");
    let _ = writeln!(json, "  \"predict_per_sec\": {predict_per_sec:.0},");
    let _ = writeln!(json, "  \"speedup_vs_full_sweep\": {speedup_x:.2},");
    let _ = writeln!(
        json,
        "  \"extrapolated_full_sweep_secs\": {full_sweep_secs:.3},"
    );
    let _ = writeln!(json, "  \"cv_points\": {},", cv.n);
    let _ = writeln!(json, "  \"cv_median_pct\": {:.3},", cv.median_pct);
    let _ = writeln!(json, "  \"cv_p99_pct\": {:.3},", cv.p99_pct);
    let _ = writeln!(json, "  \"cv_worst_pct\": {:.3},", cv.worst_pct);
    let _ = writeln!(
        json,
        "  \"tolerance\": \"median <= {} pct, p99 <= {} pct\",",
        mlp_surrogate::TOL_MEDIAN_PCT,
        mlp_surrogate::TOL_P99_PCT
    );
    let _ = writeln!(json, "  \"within_tolerance\": {},", cv.within_tolerance());
    let _ = writeln!(
        json,
        "  \"note\": \"speedup is engine cells avoided: the surrogate prices \
         {} grid points from {} cell simulations; folds group whole cells, so \
         the CV numbers measure generalization to unsimulated cells\"",
        sweep.grid.len(),
        sweep.cells
    );
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(out).expect("create results dir");
    let path = format!("{out}/BENCH_surrogate.json");
    guard_against_regression(&path, &scale_label, explore_secs);
    std::fs::write(&path, &json).expect("write BENCH_surrogate.json");

    println!("{json}");
    println!("[surrogate bench written to {path}]");
}
