//! Streaming-pipeline bench: spills a trace to a chunked v2 file, drives
//! the epoch model from disk chunk-at-a-time, and records wall times,
//! peak RSS and on-disk compression in `results/BENCH_stream.json`.
//!
//! This is the bounded-memory datapoint of the streaming trace path: the
//! run must complete with a peak RSS (`VmHWM`, which includes the spill
//! pass) far below what materializing the whole trace would take —
//! [`RSS_BUDGET_MB`] caps it in absolute terms, independent of trace
//! length. Size via `MLP_STREAM_BENCH_INSTS` (`k`/`M`/`G` suffixes;
//! default 8M so `cargo bench --workspace` stays fast — the recorded
//! 100M datapoint comes from an explicit `MLP_STREAM_BENCH_INSTS=100M`
//! run).
//!
//! Like the experiments bench, the previous results file is a
//! performance guard: at the same instruction count, a
//! more-than-[`GUARD_FACTOR`]× wall-time slowdown or an RSS above budget
//! fails the bench. `MLP_BENCH_GUARD=off` re-blesses.

use mlp_workloads::{TraceStore, WorkloadKind};
use mlpsim::{MlpsimConfig, Simulator};
use std::fmt::Write as _;
use std::time::Instant;

/// Absolute peak-RSS ceiling for the whole process, megabytes. The
/// streamed path holds one generation buffer plus a rolling window of
/// decoded chunks (~3 MB each), so this bounds it with a wide margin for
/// allocator slack and binary overhead — while a materialized 100M-inst
/// trace (~4.3 GB of columns) would blow straight through it.
const RSS_BUDGET_MB: u64 = 768;

/// Maximum tolerated wall-time slowdown vs the recorded baseline at the
/// same instruction count.
const GUARD_FACTOR: f64 = 3.0;

/// Peak resident set size of this process in kilobytes, from the
/// kernel's `VmHWM` high-water mark.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Pulls `"key": <value>` out of the flat baseline JSON without a parser
/// dependency.
fn scan_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &json[json.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let end = rest.find([',', '\n', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

fn main() {
    let insts: u64 = std::env::var("MLP_STREAM_BENCH_INSTS")
        .ok()
        .map(|s| mlp_experiments::parse_insts(&s).expect("bad MLP_STREAM_BENCH_INSTS"))
        .unwrap_or(8_000_000);
    let guard_on = std::env::var("MLP_BENCH_GUARD").as_deref() != Ok("off");

    // A private store spilling into a scratch directory: budget 0 forces
    // every trace to disk regardless of the environment.
    let dir = std::env::temp_dir().join(format!("mlp-stream-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench cache dir");
    let store = TraceStore::new();
    store.set_cache_dir(&dir);
    store.set_cache_bytes(0);

    let kind = WorkloadKind::Database;
    let t0 = Instant::now();
    let shared = store.trace(kind, 42, insts as usize);
    let spill_secs = t0.elapsed().as_secs_f64();
    assert!(shared.is_spilled(), "budget 0 must spill");
    let file_bytes = store.spilled_bytes();
    let v1_bytes = 16 + 40 * insts;

    let warmup = insts / 3;
    let measure = insts - warmup - 4_096; // leave engine read-ahead slack
    let t1 = Instant::now();
    let report =
        Simulator::new(MlpsimConfig::default()).run_chunks(shared.chunks(), warmup, measure);
    let run_secs = t1.elapsed().as_secs_f64();
    assert_eq!(report.insts, measure, "streamed run drained early");

    drop(shared);
    store.clear();
    let _ = std::fs::remove_dir(&dir);

    let rss_kb = peak_rss_kb().unwrap_or(0);
    let rss_mb = rss_kb / 1024;
    let compression = v1_bytes as f64 / file_bytes as f64;
    println!(
        "[stream bench: {insts} insts, spill {spill_secs:.1}s, run {run_secs:.1}s, \
         {file_bytes} bytes on disk ({compression:.2}x vs v1), peak RSS {rss_mb} MB]"
    );

    if guard_on && rss_kb > 0 {
        assert!(
            rss_mb <= RSS_BUDGET_MB,
            "peak RSS {rss_mb} MB exceeds the {RSS_BUDGET_MB} MB streaming budget; the \
             bounded-memory property regressed (MLP_BENCH_GUARD=off to re-bless)"
        );
    }

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(out).expect("create results dir");
    let path = format!("{out}/BENCH_stream.json");
    if guard_on {
        if let Ok(old) = std::fs::read_to_string(&path) {
            if scan_field(&old, "insts").and_then(|v| v.parse::<u64>().ok()) == Some(insts) {
                for (key, secs) in [("spill_secs", spill_secs), ("run_secs", run_secs)] {
                    let Some(old_secs) = scan_field(&old, key).and_then(|v| v.parse::<f64>().ok())
                    else {
                        continue;
                    };
                    if old_secs > 0.0 {
                        assert!(
                            secs <= old_secs * GUARD_FACTOR,
                            "{key} regressed: {secs:.3}s vs {old_secs:.3}s baseline \
                             (> {GUARD_FACTOR}x at {insts} insts); fix the regression or \
                             rerun with MLP_BENCH_GUARD=off to re-bless"
                        );
                    }
                }
            }
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"streaming trace pipeline\",");
    let _ = writeln!(json, "  \"workload\": \"{kind:?}\",");
    let _ = writeln!(json, "  \"insts\": {insts},");
    let _ = writeln!(json, "  \"spill_secs\": {spill_secs:.3},");
    let _ = writeln!(json, "  \"run_secs\": {run_secs:.3},");
    let _ = writeln!(json, "  \"file_bytes\": {file_bytes},");
    let _ = writeln!(json, "  \"compression_vs_v1\": {compression:.3},");
    let _ = writeln!(json, "  \"peak_rss_mb\": {rss_mb},");
    let _ = writeln!(json, "  \"rss_budget_mb\": {RSS_BUDGET_MB}");
    json.push_str("}\n");
    std::fs::write(&path, &json).expect("write BENCH_stream.json");
    println!("{json}");
    println!("[stream bench written to {path}]");
}
