//! Regenerates the paper's Figure 9 + Table 6: value prediction as a `cargo bench` target.
//!
//! Scale via `MLP_BENCH_SCALE=quick|standard|full` (default: quick, so
//! `cargo bench --workspace` stays fast).

use mlp_experiments::{exp, RunScale};
use std::time::Instant;

fn main() {
    let scale = std::env::var("MLP_BENCH_SCALE")
        .ok()
        .and_then(|s| RunScale::parse(&s))
        .unwrap_or_else(RunScale::quick);
    let t0 = Instant::now();
    let result = exp::figure9::run(scale);
    println!("{}", result.render());
    println!(
        "[figure9 regenerated in {:.1}s]",
        t0.elapsed().as_secs_f64()
    );
}
