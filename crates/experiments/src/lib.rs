//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 5).
//!
//! Each experiment lives in its own module under [`exp`], returns a
//! structured result, and renders the same rows/series the paper reports.
//! The `mlp-experiments` binary exposes one subcommand per experiment
//! (`table1` … `figure11`, plus `all`).
//!
//! Run lengths are configurable via [`RunScale`]: the paper used 50M
//! warm-up + 100M measured instructions on its traces; the synthetic
//! workloads here are stationary by construction, so far shorter windows
//! give converged statistics (verified by the convergence test in the
//! workspace test suite).
//!
//! # Examples
//!
//! ```no_run
//! use mlp_experiments::{exp, RunScale};
//!
//! let table5 = exp::table5::run(RunScale::quick());
//! println!("{}", table5.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod exp;
pub mod registry;
pub mod report;
pub mod runner;
pub mod table;

/// Instruction budgets for one simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunScale {
    /// Warm-up instructions for the (fast) epoch-model runs.
    pub warmup: u64,
    /// Measured instructions for the epoch-model runs.
    pub measure: u64,
    /// Warm-up instructions for cycle-accurate runs.
    pub cycle_warmup: u64,
    /// Measured instructions for cycle-accurate runs.
    pub cycle_measure: u64,
}

impl RunScale {
    /// Small budgets for benchmarks and smoke tests (seconds per table).
    pub fn quick() -> RunScale {
        RunScale {
            warmup: 300_000,
            measure: 700_000,
            cycle_warmup: 200_000,
            cycle_measure: 400_000,
        }
    }

    /// The default experiment scale (converged statistics, minutes for
    /// the full set).
    pub fn standard() -> RunScale {
        RunScale {
            warmup: 1_000_000,
            measure: 4_000_000,
            cycle_warmup: 500_000,
            cycle_measure: 1_500_000,
        }
    }

    /// Long runs for final numbers.
    pub fn full() -> RunScale {
        RunScale {
            warmup: 2_000_000,
            measure: 8_000_000,
            cycle_warmup: 1_000_000,
            cycle_measure: 3_000_000,
        }
    }

    /// Parses a scale name (`quick` / `standard` / `full`).
    pub fn parse(name: &str) -> Option<RunScale> {
        match name {
            "quick" => Some(RunScale::quick()),
            "standard" => Some(RunScale::standard()),
            "full" => Some(RunScale::full()),
            _ => None,
        }
    }

    /// A scale driving `total` instructions through the epoch model,
    /// split 1:2 warmup:measure like the paper's 50M-warmup/100M-measure
    /// windows. Cycle-accurate runs get half the budget (they are ~50x
    /// slower per instruction).
    pub fn window(total: u64) -> RunScale {
        let warmup = total / 3;
        RunScale {
            warmup,
            measure: total - warmup,
            cycle_warmup: warmup / 2,
            cycle_measure: (total - warmup) / 2,
        }
    }

    /// The canonical name of this scale (`custom` for hand-built ones);
    /// used in result filenames and report metadata.
    pub fn label(&self) -> &'static str {
        if *self == RunScale::quick() {
            "quick"
        } else if *self == RunScale::standard() {
            "standard"
        } else if *self == RunScale::full() {
            "full"
        } else {
            "custom"
        }
    }
}

impl Default for RunScale {
    fn default() -> RunScale {
        RunScale::standard()
    }
}

/// Parses an instruction count with an optional `k` / `M` / `G` suffix
/// (case-insensitive, decimal multipliers): `50M` is 50 million, `100m`
/// likewise, `1500k` is 1.5 million. Returns `None` for zero, overflow
/// or malformed input.
pub fn parse_insts(s: &str) -> Option<u64> {
    let (digits, mult) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 1_000u64),
        b'm' | b'M' => (&s[..s.len() - 1], 1_000_000),
        b'g' | b'G' => (&s[..s.len() - 1], 1_000_000_000),
        _ => (s, 1),
    };
    let n = digits.parse::<u64>().ok()?.checked_mul(mult)?;
    (n > 0).then_some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = RunScale::quick();
        let s = RunScale::standard();
        let f = RunScale::full();
        assert!(q.measure < s.measure && s.measure < f.measure);
        assert!(q.cycle_measure < s.cycle_measure);
    }

    #[test]
    fn parse_names() {
        assert_eq!(RunScale::parse("quick"), Some(RunScale::quick()));
        assert_eq!(RunScale::parse("standard"), Some(RunScale::standard()));
        assert_eq!(RunScale::parse("full"), Some(RunScale::full()));
        assert_eq!(RunScale::parse("bogus"), None);
        assert_eq!(RunScale::default(), RunScale::standard());
    }

    #[test]
    fn labels_round_trip() {
        for name in ["quick", "standard", "full"] {
            assert_eq!(RunScale::parse(name).unwrap().label(), name);
        }
        let custom = RunScale {
            warmup: 1,
            ..RunScale::quick()
        };
        assert_eq!(custom.label(), "custom");
    }
}
