//! Minimal text-table rendering for experiment output.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use mlp_experiments::table::TextTable;
///
/// let mut t = TextTable::new(vec!["Benchmark", "MLP"]);
/// t.row(vec!["Database".into(), "1.38".into()]);
/// let s = t.render();
/// assert!(s.contains("Database"));
/// assert!(s.contains("MLP"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> TextTable {
        self.title = Some(title.into());
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<width$}", h, width = widths[i] + 2);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths
            .iter()
            .map(|w| w + 2)
            .sum::<usize>()
            .saturating_sub(2);
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let mut line = String::new();
            for i in 0..ncols {
                let _ = write!(line, "{:<width$}", row[i], width = widths[i] + 2);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Formats an `f64` with 2 decimal places (tables of CPI).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats an `f64` with 3 decimal places (tables of MLP).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a", "bench"]).with_title("Table X");
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["long-cell".into(), "x".into()]);
        let s = t.render();
        assert!(s.starts_with("Table X"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // the "bench" header starts at the same column as "2" and "x"
        let col = lines[1].find("bench").unwrap();
        assert_eq!(lines[3].find('2').unwrap(), col);
        assert_eq!(lines[4].find('x').unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // banker-free simple rounding
        assert_eq!(pct(12.34), "12.3%");
    }

    #[test]
    fn empty_and_len() {
        let mut t = TextTable::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
