//! Shared helpers for driving the simulators over the calibrated
//! workloads.

use crate::RunScale;
use mlp_cyclesim::{CycleReport, CycleSim, CycleSimConfig};
use mlp_workloads::{Workload, WorkloadKind};
use mlpsim::{MlpsimConfig, Report, Simulator};

/// The seed used by every experiment: results are fully deterministic.
pub const SEED: u64 = 42;

/// Creates the calibrated workload trace for `kind`.
pub fn workload(kind: WorkloadKind) -> Workload {
    Workload::new(kind, SEED)
}

/// Runs the epoch model over `kind` at the given scale.
pub fn run_mlpsim(kind: WorkloadKind, config: MlpsimConfig, scale: RunScale) -> Report {
    let mut wl = workload(kind);
    Simulator::new(config).run(&mut wl, scale.warmup, scale.measure)
}

/// Runs the cycle-accurate model over `kind` at the given scale.
pub fn run_cyclesim(kind: WorkloadKind, config: CycleSimConfig, scale: RunScale) -> CycleReport {
    let mut wl = workload(kind);
    CycleSim::new(config).run(&mut wl, scale.cycle_warmup, scale.cycle_measure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpsim::MlpsimConfig;

    #[test]
    fn mlpsim_runner_is_deterministic() {
        let scale = RunScale {
            warmup: 10_000,
            measure: 50_000,
            cycle_warmup: 0,
            cycle_measure: 0,
        };
        let a = run_mlpsim(WorkloadKind::SpecWeb99, MlpsimConfig::default(), scale);
        let b = run_mlpsim(WorkloadKind::SpecWeb99, MlpsimConfig::default(), scale);
        assert_eq!(a.offchip, b.offchip);
        assert_eq!(a.epochs, b.epochs);
    }
}
