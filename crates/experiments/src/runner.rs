//! Shared helpers for driving the simulators over the calibrated
//! workloads.
//!
//! Two things make figure/table sweeps fast here:
//!
//! 1. **Shared trace materialization** — every run of a given workload
//!    replays the same `(kind, SEED)` instruction stream, so the stream
//!    is generated once into the process-wide
//!    [`mlp_workloads::TraceStore`] and each run gets a cheap
//!    [`TraceCursor`](mlp_workloads::TraceCursor) over the shared
//!    `Arc<[Inst]>` instead of re-running the workload generator.
//! 2. **Parallel sweeps** — [`sweep`] fans the independent points of a
//!    figure/table across cores via `mlp_par::par_map`, which returns
//!    results in input order, so rendered output is byte-identical to a
//!    serial run regardless of thread count (configure with the
//!    `MLP_THREADS` environment variable).

use crate::RunScale;
use mlp_cyclesim::{CycleReport, CycleSim, CycleSimConfig};
use mlp_workloads::{TraceCursor, TraceStore, Workload, WorkloadKind};
use mlpsim::{MlpsimConfig, Report, Simulator};

/// The seed used by every experiment: results are fully deterministic.
pub const SEED: u64 = 42;

/// Extra instructions materialized beyond `warmup + measure`, covering
/// engine read-ahead (fetch buffers, lookahead windows, runahead
/// distance) so a run never drains the cursor before hitting its retire
/// limit. Generous: the largest read-ahead in the repo is the 8192-entry
/// runahead distance sweep.
const TRACE_SLACK: u64 = 32_768;

/// Creates the calibrated workload trace for `kind`.
///
/// Prefer [`cursor`] (or the `run_*` helpers) in sweeps: a streaming
/// `Workload` regenerates the trace per run, a cursor replays the shared
/// materialized copy.
pub fn workload(kind: WorkloadKind) -> Workload {
    Workload::new(kind, SEED)
}

/// A replay cursor over the shared materialized trace for `kind`,
/// covering at least `insts` instructions plus engine read-ahead slack.
pub fn cursor(kind: WorkloadKind, insts: u64) -> TraceCursor {
    cursor_seeded(kind, SEED, insts)
}

/// [`cursor`] with an explicit seed (the SMT experiment runs sibling
/// threads on distinct seeds).
pub fn cursor_seeded(kind: WorkloadKind, seed: u64, insts: u64) -> TraceCursor {
    let len = insts.saturating_add(TRACE_SLACK) as usize;
    TraceStore::global().trace(kind, seed, len).cursor()
}

/// Runs the epoch model over `kind` at the given scale.
pub fn run_mlpsim(kind: WorkloadKind, config: MlpsimConfig, scale: RunScale) -> Report {
    let mut cur = cursor(kind, scale.warmup + scale.measure);
    Simulator::new(config).run(&mut cur, scale.warmup, scale.measure)
}

/// Runs the cycle-accurate model over `kind` at the given scale.
pub fn run_cyclesim(kind: WorkloadKind, config: CycleSimConfig, scale: RunScale) -> CycleReport {
    let mut cur = cursor(kind, scale.cycle_warmup + scale.cycle_measure);
    CycleSim::new(config).run(&mut cur, scale.cycle_warmup, scale.cycle_measure)
}

/// Maps `f` over the sweep points of a figure/table in parallel.
///
/// Results come back in `jobs` order, so tables built from them render
/// identically whether the sweep ran on one thread or many.
pub fn sweep<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    mlp_par::par_map(&jobs, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpsim::MlpsimConfig;

    #[test]
    fn mlpsim_runner_is_deterministic() {
        let scale = RunScale {
            warmup: 10_000,
            measure: 50_000,
            cycle_warmup: 0,
            cycle_measure: 0,
        };
        let a = run_mlpsim(WorkloadKind::SpecWeb99, MlpsimConfig::default(), scale);
        let b = run_mlpsim(WorkloadKind::SpecWeb99, MlpsimConfig::default(), scale);
        assert_eq!(a.offchip, b.offchip);
        assert_eq!(a.epochs, b.epochs);
    }

    #[test]
    fn cursor_matches_streaming_workload() {
        let fresh: Vec<_> = workload(WorkloadKind::Database).take(1_000).collect();
        let cached: Vec<_> = cursor(WorkloadKind::Database, 1_000).take(1_000).collect();
        assert_eq!(fresh, cached);
    }

    #[test]
    fn sweep_preserves_input_order() {
        let out = sweep((0..64u64).collect(), |&x| x * x);
        assert_eq!(out, (0..64u64).map(|x| x * x).collect::<Vec<_>>());
    }
}
