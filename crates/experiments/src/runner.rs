//! Shared helpers for driving the simulators over the calibrated
//! workloads.
//!
//! Two things make figure/table sweeps fast here:
//!
//! 1. **Shared trace materialization** — every run of a given workload
//!    replays the same `(kind, SEED)` instruction stream, so the stream
//!    is generated once into the process-wide
//!    [`mlp_workloads::TraceStore`] as a structure-of-arrays
//!    [`TraceSoA`](mlp_isa::TraceSoA) and each run borrows the shared
//!    columns directly (`run_shared`) instead of re-running the workload
//!    generator or decoding rows per run.
//! 2. **Parallel sweeps** — [`sweep`] fans the independent points of a
//!    figure/table across cores via `mlp_par::par_map`, which returns
//!    results in input order, so rendered output is byte-identical to a
//!    serial run regardless of thread count (configure with the
//!    `MLP_THREADS` environment variable).

use crate::RunScale;
use mlp_cyclesim::{CycleReport, CycleSim, CycleSimConfig};
use mlp_par::JobPanic;
use mlp_workloads::{SharedTrace, TraceCursor, TraceStore, Workload, WorkloadKind};
use mlpsim::{MlpsimConfig, Report, Simulator};

/// The seed used by every experiment: results are fully deterministic.
pub const SEED: u64 = 42;

/// Wall time of each sweep point, recorded when `MLP_OBS` counters are
/// armed (drained into the report `metrics` block by the CLI).
static SWEEP_TIMER: mlp_obs::PhaseTimer = mlp_obs::PhaseTimer::new("runner.sweep_point");

thread_local! {
    /// The sweep point (job key, `Debug`-rendered) this worker thread is
    /// currently evaluating, if any.
    static CURRENT_POINT: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// The sweep point the current thread is running, if any. Set around
/// every sweep job so failures deep inside a run — the drained-cursor
/// guard, an engine assertion — can name the point that died.
pub fn current_sweep_point() -> Option<String> {
    CURRENT_POINT.with(|p| p.borrow().clone())
}

/// ` (sweep point <key>)` when inside a sweep job, empty otherwise.
fn point_context() -> String {
    current_sweep_point().map_or_else(String::new, |p| format!(" (sweep point {p})"))
}

/// Wraps a sweep job with point attribution, the `runner.sweep_point`
/// phase timer, and (when armed) one event line per point. Attribution
/// is unconditional — panic messages must name their point even with
/// `MLP_OBS` off — and costs one small allocation per job, noise next to
/// the simulator run it labels.
fn instrumented<T, R, F>(f: F) -> impl Fn(&T) -> R + Sync
where
    T: std::fmt::Debug + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    move |job: &T| {
        CURRENT_POINT.with(|p| *p.borrow_mut() = Some(format!("{job:?}")));
        let timed = mlp_obs::counters_on() || mlp_obs::events_on();
        let t0 = timed.then(std::time::Instant::now);
        let result = f(job);
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            SWEEP_TIMER.record_ns(ns);
            CURRENT_POINT.with(|p| {
                if let Some(point) = p.borrow().as_deref() {
                    mlp_obs::emit(
                        "runner.sweep_point",
                        &[
                            ("point", point.into()),
                            ("wall_ms", (ns as f64 / 1e6).into()),
                        ],
                    );
                }
            });
        }
        CURRENT_POINT.with(|p| *p.borrow_mut() = None);
        result
    }
}

/// The largest engine read-ahead configured anywhere in the experiment
/// suite, derived from the deepest sweep points rather than hand-tuned:
/// the runahead-distance ablation (up to 8192 instructions past a miss),
/// the decoupled-ROB study's 2048-entry ROB/window, and the deepest
/// fetch buffer. A sweep that grows past this shows up here (and in the
/// `trace_slack_covers_every_configured_read_ahead` test) instead of
/// silently draining a cursor mid-run.
pub const MAX_READ_AHEAD: u64 = {
    let mut max = crate::exp::figure6::BIG_ROB as u64;
    let mut i = 0;
    let dists = crate::exp::extensions::RAE_DISTS;
    while i < dists.len() {
        if dists[i] as u64 > max {
            max = dists[i] as u64;
        }
        i += 1;
    }
    let fbs = crate::exp::extensions::FETCH_BUFFERS;
    i = 0;
    while i < fbs.len() {
        if fbs[i] as u64 > max {
            max = fbs[i] as u64;
        }
        i += 1;
    }
    max
};

/// Extra instructions materialized beyond `warmup + measure`, covering
/// engine read-ahead (fetch buffers, lookahead windows, runahead
/// distance) so a run never drains the cursor before hitting its retire
/// limit. 4× the deepest configured read-ahead: read-ahead sources can
/// stack (a runahead burst on top of a full fetch buffer near the retire
/// limit), so a single [`MAX_READ_AHEAD`] is not enough margin.
const TRACE_SLACK: u64 = 4 * MAX_READ_AHEAD;

/// Creates the calibrated workload trace for `kind`.
///
/// Prefer [`cursor`] (or the `run_*` helpers) in sweeps: a streaming
/// `Workload` regenerates the trace per run, a cursor replays the shared
/// materialized copy.
pub fn workload(kind: WorkloadKind) -> Workload {
    Workload::new(kind, SEED)
}

/// A replay cursor over the shared materialized trace for `kind`,
/// covering at least `insts` instructions plus engine read-ahead slack.
pub fn cursor(kind: WorkloadKind, insts: u64) -> TraceCursor {
    cursor_seeded(kind, SEED, insts)
}

/// [`cursor`] with an explicit seed (the SMT experiment runs sibling
/// threads on distinct seeds).
///
/// The [`mlp_faults::CURSOR_TRUNCATE`] injection site caps the
/// materialized length here, so fault tests can hand every run a trace
/// that drains early.
pub fn cursor_seeded(kind: WorkloadKind, seed: u64, insts: u64) -> TraceCursor {
    shared_seeded(kind, seed, insts).cursor()
}

/// The shared column-trace handle for `kind`, covering at least `insts`
/// instructions plus engine read-ahead slack. The hot `run_*` helpers
/// hand its columns straight to the simulators' `run_shared` entry
/// points — no per-run decode, no per-run copy.
///
/// The [`mlp_faults::CURSOR_TRUNCATE`] injection site caps the
/// materialized length here, so fault tests can hand every run a trace
/// that drains early.
pub fn shared_seeded(kind: WorkloadKind, seed: u64, insts: u64) -> SharedTrace {
    let mut len = insts.saturating_add(TRACE_SLACK) as usize;
    if let Some(cap) = mlp_faults::param(mlp_faults::CURSOR_TRUNCATE) {
        len = len.min(cap as usize);
    }
    TraceStore::global().trace(kind, seed, len)
}

/// Runs the epoch model over `kind` at the given scale.
///
/// # Panics
///
/// Panics if the run drains its trace cursor before measuring
/// `scale.measure` instructions: both engines treat end-of-trace as a
/// legitimate stopping point, but in this harness every cursor is
/// materialized with [`TRACE_SLACK`] headroom, so a drained cursor means
/// a truncated or corrupt trace and the statistics would be silently
/// wrong. The panic is caught by the per-experiment isolation boundary
/// in the `mlp-experiments` binary.
pub fn run_mlpsim(kind: WorkloadKind, config: MlpsimConfig, scale: RunScale) -> Report {
    let shared = shared_seeded(kind, SEED, scale.warmup + scale.measure);
    let mut sim = Simulator::new(config);
    let report = if shared.is_spilled() {
        sim.run_chunks(shared.chunks(), scale.warmup, scale.measure)
    } else {
        sim.run_shared(shared.soa(), shared.len(), scale.warmup, scale.measure)
    };
    if report.insts < scale.measure {
        panic!(
            "mlpsim run on {kind:?} drained its trace after {} of {} measured \
             instructions (truncated or under-slacked trace){}",
            report.insts,
            scale.measure,
            point_context()
        );
    }
    report
}

/// Runs the cycle-accurate model over `kind` at the given scale.
///
/// # Panics
///
/// Panics on a prematurely drained trace cursor, like [`run_mlpsim`].
pub fn run_cyclesim(kind: WorkloadKind, config: CycleSimConfig, scale: RunScale) -> CycleReport {
    let shared = shared_seeded(kind, SEED, scale.cycle_warmup + scale.cycle_measure);
    let mut sim = CycleSim::new(config);
    let report = if shared.is_spilled() {
        sim.run_chunks(shared.chunks(), scale.cycle_warmup, scale.cycle_measure)
    } else {
        sim.run_shared(
            shared.soa(),
            shared.len(),
            scale.cycle_warmup,
            scale.cycle_measure,
        )
    };
    if report.insts < scale.cycle_measure {
        panic!(
            "cyclesim run on {kind:?} drained its trace after {} of {} measured \
             instructions (truncated or under-slacked trace){}",
            report.insts,
            scale.cycle_measure,
            point_context()
        );
    }
    report
}

/// Maps `f` over the sweep points of a figure/table in parallel.
///
/// Results come back in `jobs` order, so tables built from them render
/// identically whether the sweep ran on one thread or many.
pub fn sweep<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Sync + std::fmt::Debug,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    mlp_par::par_map(&jobs, instrumented(f))
}

/// [`sweep`] with per-job panic containment: one slot per job, in job
/// order, a panicking job yielding `Err(JobPanic)` while its siblings
/// still complete. Use this when partial sweep results are worth
/// keeping; [`sweep`] (which re-raises the first failure after the whole
/// sweep finishes) is right for experiments whose tables need every
/// point.
pub fn try_sweep<T, R, F>(jobs: Vec<T>, f: F) -> Vec<Result<R, JobPanic>>
where
    T: Sync + std::fmt::Debug,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    mlp_par::try_par_map(&jobs, instrumented(f))
}

/// A sweep result indexed by job key.
///
/// Experiments used to rebuild their tables from the *position* of each
/// result in the sweep output (`it.next().expect(..)`, `ki * chunk + li`
/// arithmetic), which silently misplaces every cell the moment a loop
/// nest and its reassembly drift apart. A `SweepGrid` keeps each result
/// attached to the key that produced it, so placement is by lookup.
///
/// # Examples
///
/// ```
/// use mlp_experiments::runner::sweep_grid;
///
/// let grid = sweep_grid(vec![(1u64, 2u64), (3, 4)], |&(a, b)| a + b);
/// assert_eq!(grid[&(3, 4)], 7);
/// ```
#[derive(Clone, Debug)]
pub struct SweepGrid<K, R> {
    entries: Vec<(K, R)>,
}

/// Maps `f` over `keys` in parallel (like [`sweep`]) and returns the
/// results indexed by key.
///
/// # Panics
///
/// Panics (debug builds) if two keys compare equal: every sweep point
/// must be uniquely addressable.
pub fn sweep_grid<K, R, F>(keys: Vec<K>, f: F) -> SweepGrid<K, R>
where
    K: Sync + PartialEq + std::fmt::Debug,
    R: Send,
    F: Fn(&K) -> R + Sync,
{
    match try_sweep_grid(keys, f) {
        Ok(grid) => grid,
        Err(failures) => panic!(
            "{} of the sweep's points panicked; first: {}",
            failures.len(),
            failures[0]
        ),
    }
}

/// [`sweep_grid`] with panic containment: `Ok(grid)` when every point
/// completed, otherwise `Err` with every failed job (ordered by job
/// index, each carrying its panic message). A grid is only useful
/// complete — experiments index it by key and a missing key panics — so
/// unlike [`try_sweep`] there is no partial-grid result.
///
/// # Panics
///
/// Panics (debug builds) if two keys compare equal: every sweep point
/// must be uniquely addressable.
pub fn try_sweep_grid<K, R, F>(keys: Vec<K>, f: F) -> Result<SweepGrid<K, R>, Vec<JobPanic>>
where
    K: Sync + PartialEq + std::fmt::Debug,
    R: Send,
    F: Fn(&K) -> R + Sync,
{
    debug_assert!(
        keys.iter().enumerate().all(|(i, k)| !keys[..i].contains(k)),
        "sweep keys must be unique"
    );
    let mut results = Vec::with_capacity(keys.len());
    let mut failures = Vec::new();
    for slot in mlp_par::try_par_map(&keys, instrumented(f)) {
        match slot {
            Ok(r) => results.push(r),
            Err(p) => failures.push(p),
        }
    }
    if !failures.is_empty() {
        return Err(failures);
    }
    Ok(SweepGrid {
        entries: keys.into_iter().zip(results).collect(),
    })
}

impl<K: PartialEq + std::fmt::Debug, R> SweepGrid<K, R> {
    /// The result for `key`, if that point was swept.
    pub fn get(&self, key: &K) -> Option<&R> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, r)| r)
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(key, result)` pairs in sweep (input) order.
    pub fn iter(&self) -> impl Iterator<Item = &(K, R)> {
        self.entries.iter()
    }
}

impl<K: PartialEq + std::fmt::Debug, R> std::ops::Index<&K> for SweepGrid<K, R> {
    type Output = R;

    /// The result for `key`.
    ///
    /// # Panics
    ///
    /// Panics with the missing key if that point was never swept — the
    /// loud version of what positional reassembly got silently wrong.
    fn index(&self, key: &K) -> &R {
        match self.get(key) {
            Some(r) => r,
            None => panic!("sweep grid has no entry for key {key:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpsim::MlpsimConfig;

    #[test]
    fn mlpsim_runner_is_deterministic() {
        let scale = RunScale {
            warmup: 10_000,
            measure: 50_000,
            cycle_warmup: 0,
            cycle_measure: 0,
        };
        let a = run_mlpsim(WorkloadKind::SpecWeb99, MlpsimConfig::default(), scale);
        let b = run_mlpsim(WorkloadKind::SpecWeb99, MlpsimConfig::default(), scale);
        assert_eq!(a.offchip, b.offchip);
        assert_eq!(a.epochs, b.epochs);
    }

    #[test]
    fn cursor_matches_streaming_workload() {
        let fresh: Vec<_> = workload(WorkloadKind::Database).take(1_000).collect();
        let cached: Vec<_> = cursor(WorkloadKind::Database, 1_000).take(1_000).collect();
        assert_eq!(fresh, cached);
    }

    #[test]
    fn sweep_preserves_input_order() {
        let out = sweep((0..64u64).collect(), |&x| x * x);
        assert_eq!(out, (0..64u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn try_sweep_contains_panics_per_slot() {
        let out = try_sweep((0..8u64).collect(), |&x| {
            if x == 5 {
                panic!("point {x} exploded");
            }
            x + 100
        });
        assert_eq!(out.len(), 8);
        for (i, slot) in out.iter().enumerate() {
            if i == 5 {
                let p = slot.as_ref().expect_err("job 5 must fail");
                assert_eq!(p.index, 5);
                assert!(p.message.contains("point 5 exploded"));
            } else {
                assert_eq!(slot.as_ref().ok().copied(), Some(i as u64 + 100));
            }
        }
    }

    #[test]
    fn try_sweep_grid_reports_every_failure() {
        let failures = try_sweep_grid(vec![1u64, 2, 3, 4], |&k| {
            if k % 2 == 0 {
                panic!("even key {k}");
            }
            k
        })
        .expect_err("even keys must fail");
        assert_eq!(failures.len(), 2);
        assert_eq!(failures[0].index, 1);
        assert_eq!(failures[1].index, 3);

        let grid = try_sweep_grid(vec![1u64, 3], |&k| k * 2).expect("clean sweep");
        assert_eq!(grid[&3], 6);
    }

    #[test]
    fn sweep_grid_indexes_by_key() {
        let grid = sweep_grid(vec![(1u64, 'a'), (2, 'b'), (3, 'a')], |&(n, c)| {
            format!("{c}{n}")
        });
        assert_eq!(grid.len(), 3);
        assert!(!grid.is_empty());
        assert_eq!(grid[&(2, 'b')], "b2");
        assert_eq!(grid.get(&(9, 'z')), None);
        let keys: Vec<_> = grid.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![(1, 'a'), (2, 'b'), (3, 'a')]);
    }

    #[test]
    #[should_panic(expected = "no entry for key")]
    fn sweep_grid_missing_key_panics() {
        let grid = sweep_grid(vec![1u64], |&x| x);
        let _ = grid[&2];
    }

    #[test]
    fn sweep_panics_name_their_point() {
        let out = try_sweep(vec![("db", 1u64), ("web", 2)], |&(name, n)| {
            if n == 2 {
                panic!("{name} exploded{}", point_context());
            }
            n
        });
        assert_eq!(out[0].as_ref().ok().copied(), Some(1));
        let p = out[1].as_ref().expect_err("job 1 must fail");
        assert!(
            p.message.contains("sweep point (\"web\", 2)"),
            "panic must carry the Debug-rendered sweep point, got: {}",
            p.message
        );
    }

    #[test]
    fn current_sweep_point_is_scoped_to_the_job() {
        assert_eq!(current_sweep_point(), None);
        let points = sweep(vec![7u64], |_| current_sweep_point());
        assert_eq!(points, vec![Some("7".to_string())]);
        assert_eq!(current_sweep_point(), None);
    }

    #[test]
    fn trace_slack_covers_every_configured_read_ahead() {
        use crate::exp::{extensions, figure6, figure8};
        let deepest = extensions::RAE_DISTS
            .into_iter()
            .chain(extensions::FETCH_BUFFERS)
            .chain([figure6::BIG_ROB, figure8::RAE_MAX_DIST])
            .max()
            .unwrap() as u64;
        assert_eq!(MAX_READ_AHEAD, deepest);
        assert!(
            TRACE_SLACK >= 2 * deepest,
            "trace slack must comfortably cover the deepest read-ahead"
        );
    }
}
