//! `mlp-trace` — generate, inspect and dump binary instruction traces.
//!
//! ```text
//! mlp-trace gen   <database|specjbb2000|specweb99> <count> <file> [seed]
//! mlp-trace stats <file>
//! mlp-trace dump  <file> [count]
//! ```
//!
//! Traces use the `mlp_isa::tracefile` format and can be replayed through
//! either simulator with `mlp_isa::VecTrace`.

use mlp_isa::{tracefile, InstMix, TraceStats};
use mlp_workloads::{Workload, WorkloadKind};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn usage() -> ! {
    eprintln!(
        "usage:\n  mlp-trace gen   <database|specjbb2000|specweb99> <count> <file> [seed]\n  \
         mlp-trace stats <file>\n  mlp-trace dump  <file> [count]"
    );
    std::process::exit(2);
}

fn parse_kind(name: &str) -> Option<WorkloadKind> {
    match name.to_ascii_lowercase().as_str() {
        "database" | "db" => Some(WorkloadKind::Database),
        "specjbb2000" | "jbb" => Some(WorkloadKind::SpecJbb2000),
        "specweb99" | "web" => Some(WorkloadKind::SpecWeb99),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let [_, kind, count, path, rest @ ..] = args.as_slice() else {
                usage()
            };
            let Some(kind) = parse_kind(kind) else {
                usage()
            };
            let Ok(count) = count.parse::<usize>() else {
                usage()
            };
            let seed = rest
                .first()
                .map(|s| s.parse::<u64>().unwrap_or_else(|_| usage()))
                .unwrap_or(42);
            let insts: Vec<_> = Workload::new(kind, seed).take(count).collect();
            let file = File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(1);
            });
            tracefile::write(BufWriter::new(file), &insts).unwrap_or_else(|e| {
                eprintln!("write failed: {e}");
                std::process::exit(1);
            });
            println!("wrote {count} instructions of {kind} (seed {seed}) to {path}");
        }
        Some("stats") => {
            let [_, path] = args.as_slice() else { usage() };
            let insts = read_trace(path);
            let mix: InstMix = insts.iter().collect();
            let stats = TraceStats::from_insts(&insts);
            println!("{mix}");
            println!(
                "data footprint: {} KB in {} lines",
                stats.data_footprint_bytes() / 1024,
                stats.data_lines
            );
            println!(
                "code footprint: {} KB in {} lines",
                stats.code_footprint_bytes() / 1024,
                stats.code_lines
            );
            println!(
                "taken conditional branches: {} of {}",
                stats.taken_cond, mix.cond_branches
            );
        }
        Some("dump") => {
            let (path, count) = match args.as_slice() {
                [_, path] => (path, 40usize),
                [_, path, n] => (path, n.parse().unwrap_or_else(|_| usage())),
                _ => usage(),
            };
            let insts = read_trace(path);
            for inst in insts.iter().take(count) {
                println!("{inst}");
            }
            if insts.len() > count {
                println!("... ({} more)", insts.len() - count);
            }
        }
        _ => usage(),
    }
}

fn read_trace(path: &str) -> Vec<mlp_isa::Inst> {
    let file = File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    tracefile::read(BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot read trace: {e}");
        std::process::exit(1);
    })
}
