//! `mlp-trace` — generate, inspect, convert and import binary traces.
//!
//! ```text
//! mlp-trace gen     <database|specjbb2000|specweb99> <count> <file> [seed]
//! mlp-trace stats   <file>
//! mlp-trace dump    <file> [count]
//! mlp-trace info    <file>
//! mlp-trace convert <in> <out>
//! mlp-trace import  <in.txt> <out>
//! ```
//!
//! Two binary formats are supported everywhere a trace is read: the
//! fixed-record v1 format (`mlp_isa::tracefile`) and the chunked,
//! delta-compressed v2 format (`mlp_isa::chunked`); the reader sniffs the
//! magic. `gen`, `convert` and `import` choose the *output* format by
//! extension — `.mlp2` writes v2, anything else v1 — so `convert` both
//! upgrades v1 traces to v2 and flattens v2 back to v1.
//!
//! `info` prints the container details without decoding instruction
//! payloads into memory: format version, instruction count, and for v2
//! the chunk geometry and compression ratio versus the 40-byte v1 record.
//!
//! `import` reads a gem5-ish text listing, one instruction per line
//! (`#` comments and blank lines ignored), fields whitespace-separated:
//!
//! ```text
//! <pc-hex> <op> [key=value ...]
//! 0x4000 load addr=0x80040 base=r4 dst=r5 val=0x1234
//! 0x4004 alu srcs=r5,r2 dst=r6
//! 0x4008 store addr=0x80048 base=r4 src=r6
//! 0x400c branch cond=r6 taken=1 target=0x4000
//! ```
//!
//! Ops: `alu` (`srcs=`, `dst=`), `load` (`addr=`, `base=`, `dst=`,
//! optional `val=`), `store` (`addr=`, `base=`, `src=`), `prefetch`
//! (`addr=`, `base=`), `branch` (`cond=`, `taken=`, `target=`), `call` /
//! `ret` (`target=`), `indirect` (`base=`, `target=`), `casa` (`addr=`,
//! `base=`, `cmp=`, `swap=`, `dst=`, optional `val=`), `membar`, `nop`.
//! Registers are `rN` (0-63); numbers accept `0x` hex or decimal.
//!
//! Exit codes are uniform: `0` on success, `1` for I/O failures, corrupt
//! traces and malformed import lines (details — including the offending
//! record/chunk or line number — go to stderr), `2` for usage errors.

use mlp_isa::{chunked, tracefile, Inst, InstMix, Reg, TraceStats};
use mlp_workloads::{Workload, WorkloadKind};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom};
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mlp-trace gen     <database|specjbb2000|specweb99> <count> <file> [seed]\n  \
         mlp-trace stats   <file>\n  \
         mlp-trace dump    <file> [count]\n  \
         mlp-trace info    <file>\n  \
         mlp-trace convert <in> <out>\n  \
         mlp-trace import  <in.txt> <out>\n\
         output format by extension: .mlp2 = chunked v2, otherwise v1"
    );
    std::process::exit(2);
}

fn parse_kind(name: &str) -> Option<WorkloadKind> {
    match name.to_ascii_lowercase().as_str() {
        "database" | "db" => Some(WorkloadKind::Database),
        "specjbb2000" | "jbb" => Some(WorkloadKind::SpecJbb2000),
        "specweb99" | "web" => Some(WorkloadKind::SpecWeb99),
        _ => None,
    }
}

/// A runtime (non-usage) failure: what we were doing and what went
/// wrong. Every case exits 1 via `main`.
struct CliError {
    context: String,
    cause: CliCause,
}

enum CliCause {
    Io(std::io::Error),
    Trace(tracefile::TraceFileError),
    Parse(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.cause {
            CliCause::Io(e) => write!(f, "{}: {e}", self.context),
            CliCause::Trace(e) => write!(f, "{}: {e}", self.context),
            CliCause::Parse(e) => write!(f, "{}: {e}", self.context),
        }
    }
}

/// Attaches a "doing what, to which path" context to an error.
fn ctx<E: Into<CliCause>>(action: &str, path: &str) -> impl FnOnce(E) -> CliError {
    let context = format!("cannot {action} {path}");
    move |e| CliError {
        context,
        cause: e.into(),
    }
}

impl From<std::io::Error> for CliCause {
    fn from(e: std::io::Error) -> CliCause {
        CliCause::Io(e)
    }
}

impl From<tracefile::TraceFileError> for CliCause {
    fn from(e: tracefile::TraceFileError) -> CliCause {
        CliCause::Trace(e)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("mlp-trace: {e}");
        std::process::exit(1);
    }
}

/// Whether an output path selects the chunked v2 format.
fn wants_v2(path: &str) -> bool {
    Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("mlp2"))
}

/// Writes `insts` to `path` in the format its extension selects.
fn write_trace(path: &str, insts: &[Inst]) -> Result<(), CliError> {
    let file = File::create(path).map_err(ctx("create", path))?;
    if wants_v2(path) {
        let mut w = chunked::ChunkedWriter::new(BufWriter::new(file), chunked::DEFAULT_CHUNK_INSTS)
            .map_err(ctx("write", path))?;
        for inst in insts {
            w.push(inst).map_err(ctx("write", path))?;
        }
        w.finish().map_err(ctx("write", path))?;
    } else {
        tracefile::write(BufWriter::new(file), insts).map_err(ctx("write", path))?;
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("gen") => {
            let [_, kind, count, path, rest @ ..] = args else {
                usage()
            };
            let Some(kind) = parse_kind(kind) else {
                usage()
            };
            let Ok(count) = count.parse::<usize>() else {
                usage()
            };
            let seed = rest
                .first()
                .map(|s| s.parse::<u64>().unwrap_or_else(|_| usage()))
                .unwrap_or(42);
            let insts: Vec<_> = Workload::new(kind, seed).take(count).collect();
            write_trace(path, &insts)?;
            let v = if wants_v2(path) { "v2" } else { "v1" };
            println!("wrote {count} instructions of {kind} (seed {seed}) to {path} ({v})");
        }
        Some("stats") => {
            let [_, path] = args else { usage() };
            let insts = read_trace(path)?;
            let mix: InstMix = insts.iter().collect();
            let stats = TraceStats::from_insts(&insts);
            println!("{mix}");
            println!(
                "data footprint: {} KB in {} lines",
                stats.data_footprint_bytes() / 1024,
                stats.data_lines
            );
            println!(
                "code footprint: {} KB in {} lines",
                stats.code_footprint_bytes() / 1024,
                stats.code_lines
            );
            println!(
                "taken conditional branches: {} of {}",
                stats.taken_cond, mix.cond_branches
            );
        }
        Some("dump") => {
            let (path, count) = match args {
                [_, path] => (path, 40usize),
                [_, path, n] => (path, n.parse().unwrap_or_else(|_| usage())),
                _ => usage(),
            };
            let insts = read_trace(path)?;
            for inst in insts.iter().take(count) {
                println!("{inst}");
            }
            if insts.len() > count {
                println!("... ({} more)", insts.len() - count);
            }
        }
        Some("info") => {
            let [_, path] = args else { usage() };
            info(path)?;
        }
        Some("convert") => {
            let [_, input, output] = args else { usage() };
            let insts = read_trace(input)?;
            write_trace(output, &insts)?;
            let v = if wants_v2(output) { "v2" } else { "v1" };
            println!(
                "converted {} instructions: {input} -> {output} ({v})",
                insts.len()
            );
        }
        Some("import") => {
            let [_, input, output] = args else { usage() };
            let text = std::fs::read_to_string(input).map_err(ctx("open", input))?;
            let insts = parse_listing(&text).map_err(|e| CliError {
                context: format!("cannot import {input}"),
                cause: CliCause::Parse(e),
            })?;
            write_trace(output, &insts)?;
            let v = if wants_v2(output) { "v2" } else { "v1" };
            println!(
                "imported {} instructions: {input} -> {output} ({v})",
                insts.len()
            );
        }
        _ => usage(),
    }
    Ok(())
}

/// Reads a trace in either binary format, sniffing the magic.
fn read_trace(path: &str) -> Result<Vec<mlp_isa::Inst>, CliError> {
    let file = File::open(path).map_err(ctx("open", path))?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(ctx("read trace", path))?;
    r.seek(SeekFrom::Start(0))
        .map_err(ctx("read trace", path))?;
    if &magic == b"MLP2" {
        let soa = chunked::read_all(r).map_err(ctx("read trace", path))?;
        Ok((0..soa.len()).map(|i| soa.get(i)).collect())
    } else {
        tracefile::read(r).map_err(ctx("read trace", path))
    }
}

/// Prints container-level details without decoding payloads into memory.
fn info(path: &str) -> Result<(), CliError> {
    let file_bytes = std::fs::metadata(path).map_err(ctx("stat", path))?.len();
    let file = File::open(path).map_err(ctx("open", path))?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(ctx("read", path))?;
    r.seek(SeekFrom::Start(0)).map_err(ctx("read", path))?;
    if &magic == b"MLP2" {
        let index = chunked::read_index(&mut r).map_err(ctx("read index of", path))?;
        println!("format:       v2 chunked (delta+varint columns)");
        println!("instructions: {}", index.total_insts);
        println!(
            "chunks:       {} (cap {} insts)",
            index.chunks.len(),
            index.chunk_cap
        );
        println!("file bytes:   {file_bytes}");
        if index.total_insts > 0 {
            let b_per = file_bytes as f64 / index.total_insts as f64;
            let v1_bytes = 16 + index.total_insts * tracefile::RECORD_BYTES as u64;
            println!("bytes/inst:   {b_per:.2}");
            println!(
                "compression:  {:.2}x vs v1 ({v1_bytes} bytes)",
                v1_bytes as f64 / file_bytes as f64,
            );
        }
    } else {
        // v1 validates the whole stream on read; decode for the count.
        let insts = tracefile::read(r).map_err(ctx("read trace", path))?;
        println!(
            "format:       v1 fixed records ({} bytes)",
            tracefile::RECORD_BYTES
        );
        println!("instructions: {}", insts.len());
        println!("file bytes:   {file_bytes}");
    }
    Ok(())
}

// ----- text-listing import ----------------------------------------------

/// Parses the whole listing; errors carry the 1-based line number.
fn parse_listing(text: &str) -> Result<Vec<Inst>, String> {
    let mut insts = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        insts.push(parse_line(line).map_err(|e| format!("line {}: {e}", n + 1))?);
    }
    Ok(insts)
}

/// Parses one `<pc> <op> [key=value ...]` line.
fn parse_line(line: &str) -> Result<Inst, String> {
    let mut fields = line.split_whitespace();
    let pc = parse_num(fields.next().ok_or("missing pc")?)?;
    let op = fields.next().ok_or("missing op")?;
    let mut kv = Fields::default();
    for f in fields {
        let (k, v) = f
            .split_once('=')
            .ok_or_else(|| format!("bad field '{f}'"))?;
        kv.set(k, v)?;
    }
    let inst = match op {
        "alu" => Inst::alu(pc, &kv.srcs, kv.reg("dst")?),
        "load" => Inst::load(pc, kv.reg("base")?, 0, kv.reg("dst")?, kv.num("addr")?)
            .with_value(kv.val.unwrap_or(0)),
        "store" => Inst::store(pc, kv.reg("base")?, 0, kv.reg("src")?, kv.num("addr")?),
        "prefetch" => Inst::prefetch(pc, kv.reg("base")?, kv.num("addr")?),
        "branch" => Inst::cond_branch(
            pc,
            kv.reg("cond")?,
            kv.num("taken")? != 0,
            kv.num("target")?,
        ),
        "call" => Inst::call(pc, kv.num("target")?),
        "ret" => Inst::ret(pc, kv.num("target")?),
        "indirect" => Inst::indirect(pc, kv.reg("base")?, kv.num("target")?),
        "casa" => Inst::casa(
            pc,
            kv.reg("base")?,
            kv.reg("cmp")?,
            kv.reg("swap")?,
            kv.reg("dst")?,
            kv.num("addr")?,
        )
        .with_value(kv.val.unwrap_or(0)),
        "membar" => Inst::membar(pc),
        "nop" => Inst::nop(pc),
        other => return Err(format!("unknown op '{other}'")),
    };
    Ok(inst)
}

/// Key=value fields of one listing line, each key at most once.
#[derive(Default)]
struct Fields {
    srcs: Vec<Reg>,
    regs: Vec<(&'static str, Reg)>,
    nums: Vec<(&'static str, u64)>,
    val: Option<u64>,
}

const REG_KEYS: [&str; 6] = ["dst", "base", "src", "cond", "cmp", "swap"];
const NUM_KEYS: [&str; 3] = ["addr", "target", "taken"];

impl Fields {
    fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        if key == "srcs" {
            for r in value.split(',') {
                self.srcs.push(parse_reg(r)?);
            }
            return Ok(());
        }
        if key == "val" {
            self.val = Some(parse_num(value)?);
            return Ok(());
        }
        if let Some(k) = REG_KEYS.iter().find(|k| **k == key) {
            self.regs.push((k, parse_reg(value)?));
            return Ok(());
        }
        if let Some(k) = NUM_KEYS.iter().find(|k| **k == key) {
            self.nums.push((k, parse_num(value)?));
            return Ok(());
        }
        Err(format!("unknown field '{key}'"))
    }

    fn reg(&self, key: &str) -> Result<Reg, String> {
        self.regs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, r)| r)
            .ok_or_else(|| format!("missing field '{key}='"))
    }

    fn num(&self, key: &str) -> Result<u64, String> {
        self.nums
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("missing field '{key}='"))
    }
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    let idx: u8 = s
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("bad register '{s}'"))?;
    if idx as usize >= Reg::COUNT {
        return Err(format!("register '{s}' out of range (r0-r63)"));
    }
    Ok(Reg::int(idx))
}

fn parse_num(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("bad number '{s}'"))
}
