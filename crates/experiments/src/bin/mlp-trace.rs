//! `mlp-trace` — generate, inspect and dump binary instruction traces.
//!
//! ```text
//! mlp-trace gen   <database|specjbb2000|specweb99> <count> <file> [seed]
//! mlp-trace stats <file>
//! mlp-trace dump  <file> [count]
//! ```
//!
//! Traces use the `mlp_isa::tracefile` format and can be replayed through
//! either simulator with `mlp_isa::VecTrace`.
//!
//! Exit codes are uniform: `0` on success, `1` for I/O failures and
//! corrupt traces (the underlying [`tracefile::TraceFileError`] —
//! including the offending record index — goes to stderr), `2` for usage
//! errors.

use mlp_isa::{tracefile, InstMix, TraceStats};
use mlp_workloads::{Workload, WorkloadKind};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn usage() -> ! {
    eprintln!(
        "usage:\n  mlp-trace gen   <database|specjbb2000|specweb99> <count> <file> [seed]\n  \
         mlp-trace stats <file>\n  mlp-trace dump  <file> [count]"
    );
    std::process::exit(2);
}

fn parse_kind(name: &str) -> Option<WorkloadKind> {
    match name.to_ascii_lowercase().as_str() {
        "database" | "db" => Some(WorkloadKind::Database),
        "specjbb2000" | "jbb" => Some(WorkloadKind::SpecJbb2000),
        "specweb99" | "web" => Some(WorkloadKind::SpecWeb99),
        _ => None,
    }
}

/// A runtime (non-usage) failure: what we were doing and what went
/// wrong. Every case exits 1 via `main`.
struct CliError {
    context: String,
    cause: CliCause,
}

enum CliCause {
    Io(std::io::Error),
    Trace(tracefile::TraceFileError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.cause {
            CliCause::Io(e) => write!(f, "{}: {e}", self.context),
            CliCause::Trace(e) => write!(f, "{}: {e}", self.context),
        }
    }
}

/// Attaches a "doing what, to which path" context to an error.
fn ctx<E: Into<CliCause>>(action: &str, path: &str) -> impl FnOnce(E) -> CliError {
    let context = format!("cannot {action} {path}");
    move |e| CliError {
        context,
        cause: e.into(),
    }
}

impl From<std::io::Error> for CliCause {
    fn from(e: std::io::Error) -> CliCause {
        CliCause::Io(e)
    }
}

impl From<tracefile::TraceFileError> for CliCause {
    fn from(e: tracefile::TraceFileError) -> CliCause {
        CliCause::Trace(e)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("mlp-trace: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("gen") => {
            let [_, kind, count, path, rest @ ..] = args else {
                usage()
            };
            let Some(kind) = parse_kind(kind) else {
                usage()
            };
            let Ok(count) = count.parse::<usize>() else {
                usage()
            };
            let seed = rest
                .first()
                .map(|s| s.parse::<u64>().unwrap_or_else(|_| usage()))
                .unwrap_or(42);
            let insts: Vec<_> = Workload::new(kind, seed).take(count).collect();
            let file = File::create(path).map_err(ctx("create", path))?;
            tracefile::write(BufWriter::new(file), &insts).map_err(ctx("write", path))?;
            println!("wrote {count} instructions of {kind} (seed {seed}) to {path}");
        }
        Some("stats") => {
            let [_, path] = args else { usage() };
            let insts = read_trace(path)?;
            let mix: InstMix = insts.iter().collect();
            let stats = TraceStats::from_insts(&insts);
            println!("{mix}");
            println!(
                "data footprint: {} KB in {} lines",
                stats.data_footprint_bytes() / 1024,
                stats.data_lines
            );
            println!(
                "code footprint: {} KB in {} lines",
                stats.code_footprint_bytes() / 1024,
                stats.code_lines
            );
            println!(
                "taken conditional branches: {} of {}",
                stats.taken_cond, mix.cond_branches
            );
        }
        Some("dump") => {
            let (path, count) = match args {
                [_, path] => (path, 40usize),
                [_, path, n] => (path, n.parse().unwrap_or_else(|_| usage())),
                _ => usage(),
            };
            let insts = read_trace(path)?;
            for inst in insts.iter().take(count) {
                println!("{inst}");
            }
            if insts.len() > count {
                println!("... ({} more)", insts.len() - count);
            }
        }
        _ => usage(),
    }
    Ok(())
}

fn read_trace(path: &str) -> Result<Vec<mlp_isa::Inst>, CliError> {
    let file = File::open(path).map_err(ctx("open", path))?;
    tracefile::read(BufReader::new(file)).map_err(ctx("read trace", path))
}
