//! Structured, machine-readable experiment results.
//!
//! Every registered experiment emits a [`Report`] alongside its text
//! rendering: a stable JSON document (`results/<name>.<scale>.json`)
//! carrying the experiment id, paper section, run scale, completion
//! [`Status`], seed, swept axes and one object per result row. The
//! schema is versioned via [`SCHEMA`], and serialization is fully
//! deterministic — key order is insertion order and floats use Rust's
//! shortest round-trip formatting — so a report is byte-identical across
//! hosts and `MLP_THREADS` settings.
//!
//! Schema v3 adds an optional observability `metrics` block after the
//! rows — counter values and phase-timer totals drained from `mlp-obs`
//! by the CLI. The block (and the v3 schema tag) appears only when
//! `MLP_OBS` was armed; otherwise the document is byte-identical to v2.
//!
//! Schema v2 adds degraded-mode reporting: a successful run carries
//! `"status": "ok"` (and stays byte-identical to a run where a sibling
//! experiment failed), while an experiment that panicked still writes a
//! report — `"status": "failed"` plus the panic payload and elapsed wall
//! time, with empty axes and rows — so a batch that lost one experiment
//! keeps a machine-readable record of *what* failed and *why* next to
//! the nineteen results that survived.
//!
//! The writer is first-party (no serde): the workspace builds offline
//! and the schema is small enough that a ~100-line emitter is cheaper
//! than a dependency.
//!
//! # Examples
//!
//! ```
//! use mlp_experiments::report::{Json, Report, Row};
//! use mlp_experiments::RunScale;
//!
//! let mut r = Report::new("demo", "Demo table", "§0", RunScale::quick());
//! r.axis("latency", [200u64, 1000]);
//! r.row(Row::new().field("benchmark", "Database").field("mlp", 1.38));
//! let json = r.to_json();
//! assert!(json.contains("\"experiment\": \"demo\""));
//! assert!(json.contains("\"mlp\": 1.38"));
//! ```

use crate::runner::SEED;
use crate::RunScale;
use std::fmt::Write as _;

/// Version tag stamped into every report, bumped on schema changes.
pub const SCHEMA: &str = "mlp-experiments.report/v2";

/// Schema tag for reports carrying an observability `metrics` block.
/// Emitted **only** when [`Report::metrics`] is non-empty (i.e. the run
/// had `MLP_OBS` armed); with observability off the document — schema
/// string included — stays byte-identical to v2, so goldens recorded
/// without metrics never re-bless.
pub const SCHEMA_V3: &str = "mlp-experiments.report/v3";

/// Schema tag for reports that additionally carry a `histograms` block
/// (distribution metrics drained from `mlp-obs`). Emitted **only** when
/// [`Report::histograms`] is non-empty; armed runs that recorded no
/// distributions still emit v3, and unarmed runs stay byte-identical
/// to v2.
pub const SCHEMA_V4: &str = "mlp-experiments.report/v4";

/// How an experiment run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum Status {
    /// The experiment completed and its rows are trustworthy.
    Ok,
    /// The experiment panicked; the report is a degraded-mode record
    /// with no axes or rows.
    Failed {
        /// The panic payload (stringified).
        error: String,
        /// Wall time spent before the failure surfaced, in milliseconds.
        elapsed_ms: u64,
    },
}

/// A JSON value with deterministic serialization.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float, rendered with shortest round-trip formatting.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>, const N: usize> From<[T; N]> for Json {
    fn from(v: [T; N]) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) if !x.is_finite() => out.push_str("null"),
            Json::Num(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_json_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
        }
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One result row: an ordered list of named fields.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Row {
    fields: Vec<(&'static str, Json)>,
}

impl Row {
    /// An empty row.
    pub fn new() -> Row {
        Row::default()
    }

    /// Appends a field (keys keep insertion order in the output).
    pub fn field(mut self, key: &'static str, value: impl Into<Json>) -> Row {
        self.fields.push((key, value.into()));
        self
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(&'static str, Json)] {
        &self.fields
    }

    /// The value of the named field, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = " ".repeat(indent);
        out.push_str("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            out.push_str(&pad);
            out.push_str("  ");
            write_json_str(out, k);
            out.push_str(": ");
            v.write(out);
            out.push_str(if i + 1 < self.fields.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str(&pad);
        out.push('}');
    }
}

/// A structured experiment report (one JSON document).
#[derive(Clone, Debug)]
pub struct Report {
    /// Registry name of the experiment (e.g. `table1`).
    pub experiment: &'static str,
    /// Human title, matching the text rendering's title line.
    pub title: &'static str,
    /// Paper anchor (e.g. `§5.2`).
    pub section: &'static str,
    /// Scale label (`quick` / `standard` / `full` / `custom`).
    pub scale: &'static str,
    /// How the run ended (see [`Status`]).
    pub status: Status,
    /// The deterministic seed every run used.
    pub seed: u64,
    /// Swept axes: name → array of axis values.
    pub axes: Vec<(&'static str, Json)>,
    /// One object per result row.
    pub rows: Vec<Row>,
    /// Observability metrics drained from `mlp-obs` after the run
    /// (empty — and omitted from the JSON — unless `MLP_OBS` was armed).
    pub metrics: Vec<(String, Json)>,
    /// Distribution metrics (log2-bucketed histograms) drained from
    /// `mlp-obs` after the run; non-empty only under `MLP_OBS` and only
    /// when some probe recorded a distribution.
    pub histograms: Vec<mlp_obs::HistogramValue>,
}

impl Report {
    /// A report skeleton for `experiment` at `scale` (seed filled from
    /// [`SEED`](crate::runner::SEED)).
    pub fn new(
        experiment: &'static str,
        title: &'static str,
        section: &'static str,
        scale: RunScale,
    ) -> Report {
        Report {
            experiment,
            title,
            section,
            scale: scale.label(),
            status: Status::Ok,
            seed: SEED,
            axes: Vec::new(),
            rows: Vec::new(),
            metrics: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// A degraded-mode report for an experiment that panicked: same
    /// identity fields as a successful report, `status: "failed"` with
    /// the panic payload and elapsed wall time, and no axes or rows.
    /// Written by the `mlp-experiments` binary so a faulted batch leaves
    /// a machine-readable record for the failed experiment too.
    pub fn failed(
        experiment: &'static str,
        title: &'static str,
        section: &'static str,
        scale: RunScale,
        error: String,
        elapsed_ms: u64,
    ) -> Report {
        let mut r = Report::new(experiment, title, section, scale);
        r.status = Status::Failed { error, elapsed_ms };
        r
    }

    /// Records a swept axis.
    pub fn axis(&mut self, name: &'static str, values: impl Into<Json>) -> &mut Report {
        self.axes.push((name, values.into()));
        self
    }

    /// Appends a result row.
    pub fn row(&mut self, row: Row) -> &mut Report {
        self.rows.push(row);
        self
    }

    /// Attaches a drained `mlp-obs` snapshot as the report's metrics
    /// block: counters keep their names, each timer expands to
    /// `<name>.count` / `<name>.total_ms` / `<name>.max_ms`, and any
    /// drained histograms become the `histograms` block. A non-empty
    /// metrics block switches the emitted schema tag to [`SCHEMA_V3`];
    /// a non-empty histograms block switches it to [`SCHEMA_V4`].
    pub fn set_metrics(&mut self, snapshot: &mlp_obs::Snapshot) -> &mut Report {
        self.metrics.clear();
        self.histograms = snapshot.histograms.clone();
        for c in &snapshot.counters {
            self.metrics
                .push((c.name.to_string(), Json::Int(c.value as i64)));
        }
        for t in &snapshot.timers {
            self.metrics
                .push((format!("{}.count", t.name), Json::Int(t.count as i64)));
            self.metrics.push((
                format!("{}.total_ms", t.name),
                Json::Num(t.total_ns as f64 / 1e6),
            ));
            self.metrics.push((
                format!("{}.max_ms", t.name),
                Json::Num(t.max_ns as f64 / 1e6),
            ));
        }
        self
    }

    /// Serializes the report (deterministic, trailing newline). The
    /// schema tag is [`SCHEMA_V4`] when a histograms block is present,
    /// [`SCHEMA_V3`] when only a metrics block is, and plain v2
    /// otherwise, so observability-off output is byte-identical to v2.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = write!(out, "  \"schema\": ");
        write_json_str(
            &mut out,
            if !self.histograms.is_empty() {
                SCHEMA_V4
            } else if !self.metrics.is_empty() {
                SCHEMA_V3
            } else {
                SCHEMA
            },
        );
        let _ = write!(out, ",\n  \"experiment\": ");
        write_json_str(&mut out, self.experiment);
        let _ = write!(out, ",\n  \"title\": ");
        write_json_str(&mut out, self.title);
        let _ = write!(out, ",\n  \"section\": ");
        write_json_str(&mut out, self.section);
        let _ = write!(out, ",\n  \"scale\": ");
        write_json_str(&mut out, self.scale);
        match &self.status {
            Status::Ok => out.push_str(",\n  \"status\": \"ok\""),
            Status::Failed { error, elapsed_ms } => {
                out.push_str(",\n  \"status\": \"failed\",\n  \"error\": ");
                write_json_str(&mut out, error);
                let _ = write!(out, ",\n  \"elapsed_ms\": {elapsed_ms}");
            }
        }
        let _ = write!(out, ",\n  \"seed\": {},\n  \"axes\": {{", self.seed);
        for (i, (name, values)) in self.axes.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_json_str(&mut out, name);
            out.push_str(": ");
            values.write(&mut out);
        }
        if !self.axes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            row.write(&mut out, 4);
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
        if !self.metrics.is_empty() {
            out.push_str(",\n  \"metrics\": {");
            for (i, (name, value)) in self.metrics.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str("    ");
                write_json_str(&mut out, name);
                out.push_str(": ");
                value.write(&mut out);
            }
            out.push_str("\n  }");
        }
        if !self.histograms.is_empty() {
            out.push_str(",\n  \"histograms\": {");
            for (i, hist) in self.histograms.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str("    ");
                write_json_str(&mut out, hist.name);
                let _ = write!(
                    out,
                    ": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                    hist.count,
                    hist.sum,
                    hist.max,
                    hist.quantile(0.50),
                    hist.quantile(0.90),
                    hist.quantile(0.99),
                );
                for (j, &(bucket, n)) in hist.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "[{}, {n}]", mlp_obs::bucket_lo(bucket as usize));
                }
                out.push_str("]}");
            }
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// The canonical artifact filename, `<name>.<scale>.json`.
    pub fn filename(&self) -> String {
        format!("{}.{}.json", self.experiment, self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_values_serialize() {
        let mut out = String::new();
        Json::Arr(vec![
            Json::Null,
            Json::Bool(true),
            Json::Int(-3),
            Json::Num(1.38),
            Json::Num(f64::INFINITY),
            Json::Str("a\"b\n".into()),
        ])
        .write(&mut out);
        assert_eq!(out, r#"[null, true, -3, 1.38, null, "a\"b\n"]"#);
    }

    #[test]
    fn report_round_trip_shape() {
        let mut r = Report::new("demo", "Demo", "§1", RunScale::quick());
        r.axis("size", vec![16u64, 32]);
        r.row(Row::new().field("benchmark", "Database").field("mlp", 1.5));
        let json = r.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"mlp-experiments.report/v2\""));
        assert!(json.contains("\"scale\": \"quick\""));
        assert!(json.contains("\"status\": \"ok\""));
        assert!(!json.contains("\"error\""));
        assert!(json.contains("\"size\": [16, 32]"));
        assert!(json.contains("\"mlp\": 1.5"));
        assert!(json.ends_with("}\n"));
        assert_eq!(r.filename(), "demo.quick.json");
    }

    #[test]
    fn failed_report_carries_error_and_elapsed() {
        let r = Report::failed(
            "demo",
            "Demo",
            "§1",
            RunScale::quick(),
            "injected fault: sweep-panic:1 (occurrence 1)".to_string(),
            250,
        );
        let json = r.to_json();
        assert!(json.contains("\"status\": \"failed\""));
        assert!(json.contains("\"error\": \"injected fault: sweep-panic:1 (occurrence 1)\""));
        assert!(json.contains("\"elapsed_ms\": 250"));
        assert!(json.contains("\"axes\": {},"));
        assert!(json.contains("\"rows\": []"));
        assert_eq!(r.filename(), "demo.quick.json");
    }

    #[test]
    fn empty_axes_and_rows_stay_valid() {
        let r = Report::new("demo", "Demo", "§1", RunScale::quick());
        let json = r.to_json();
        assert!(json.contains("\"axes\": {},"));
        assert!(json.contains("\"rows\": []"));
    }

    #[test]
    fn metrics_block_switches_schema_to_v3() {
        let mut r = Report::new("demo", "Demo", "§1", RunScale::quick());
        let without = r.to_json();
        assert!(without.contains("\"schema\": \"mlp-experiments.report/v2\""));
        assert!(!without.contains("\"metrics\""));

        let snapshot = mlp_obs::Snapshot {
            counters: vec![mlp_obs::CounterValue {
                name: "mlpsim.epochs",
                kind: mlp_obs::CounterKind::Sum,
                value: 42,
            }],
            timers: vec![mlp_obs::TimerValue {
                name: "runner.sweep_point",
                count: 3,
                total_ns: 1_500_000,
                max_ns: 1_000_000,
            }],
            histograms: vec![],
        };
        r.set_metrics(&snapshot);
        let with = r.to_json();
        assert!(with.contains("\"schema\": \"mlp-experiments.report/v3\""));
        assert!(with.contains("\"metrics\": {\n    \"mlpsim.epochs\": 42,"));
        assert!(with.contains("\"runner.sweep_point.count\": 3"));
        assert!(with.contains("\"runner.sweep_point.total_ms\": 1.5"));
        assert!(with.contains("\"runner.sweep_point.max_ms\": 1"));
        // Everything before the metrics block is unchanged bytes.
        let head = with.split("\"metrics\"").next().unwrap();
        let want_head = without
            .replace("report/v2", "report/v3")
            .replace("]\n}\n", "],\n  ");
        assert_eq!(head, want_head);
    }

    #[test]
    fn histograms_block_switches_schema_to_v4() {
        // Observations 1, 2, 3, 100 in log2 buckets: 1→[1], 2..3→[2,3],
        // 64..127→[100]. Bucket indices are the value bit widths.
        let value = mlp_obs::HistogramValue {
            name: "demo.latency",
            buckets: vec![(1, 1), (2, 2), (7, 1)],
            count: 4,
            sum: 106,
            max: 100,
        };

        let mut r = Report::new("demo", "Demo", "§1", RunScale::quick());
        let snapshot = mlp_obs::Snapshot {
            counters: vec![mlp_obs::CounterValue {
                name: "mlpsim.epochs",
                kind: mlp_obs::CounterKind::Sum,
                value: 42,
            }],
            timers: vec![],
            histograms: vec![value],
        };
        r.set_metrics(&snapshot);
        let with = r.to_json();
        assert!(with.contains("\"schema\": \"mlp-experiments.report/v4\""));
        assert!(with.contains("\"metrics\": {\n    \"mlpsim.epochs\": 42"));
        // count 4, sum 106, max 100; log2 buckets: 1→[1], 2..3→[2,3], 64..127→[100].
        assert!(with.contains(
            "\"demo.latency\": {\"count\": 4, \"sum\": 106, \"max\": 100, \
             \"p50\": 3, \"p90\": 100, \"p99\": 100, \
             \"buckets\": [[1, 1], [2, 2], [64, 1]]}"
        ));

        // Dropping the histograms reverts the tag to v3 with no trace of
        // the block.
        r.histograms.clear();
        let v3 = r.to_json();
        assert!(v3.contains("\"schema\": \"mlp-experiments.report/v3\""));
        assert!(!v3.contains("\"histograms\""));
    }

    #[test]
    fn row_lookup() {
        let row = Row::new().field("a", 1u64).field("b", "x");
        assert_eq!(row.get("a"), Some(&Json::Int(1)));
        assert_eq!(row.get("c"), None);
        assert_eq!(row.fields().len(), 2);
    }

    #[test]
    fn serialization_is_deterministic() {
        let mk = || {
            let mut r = Report::new("demo", "Demo", "§1", RunScale::quick());
            r.axis("x", vec![1u64, 2]);
            r.row(Row::new().field("v", 0.1 + 0.2));
            r.to_json()
        };
        assert_eq!(mk(), mk());
    }
}
