//! Library-callable isolated experiment execution.
//!
//! The `mlp-experiments` CLI and the `mlp-serve` daemon run the same
//! experiments with the same containment discipline; this module is the
//! shared core. [`run_isolated`] wraps one registry experiment in its
//! own `catch_unwind` boundary and wall-clock measurement, so a panic
//! anywhere inside the experiment — a bad sweep arm, a truncated trace,
//! an injected fault — surfaces as an error string rather than an
//! unwind, and both front ends degrade it into a `status:"failed"`
//! [`Report`](crate::report::Report) the same way.

use crate::registry::{Experiment, ExperimentRun};
use crate::RunScale;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The outcome of one isolated experiment run: the experiment's result
/// (or the stringified panic that killed it) plus the wall time it took
/// either way.
pub struct Isolated {
    /// `Ok(run)` when the experiment returned, `Err(message)` when it
    /// panicked (payload stringified with [`mlp_par::panic_message`], so
    /// non-string payloads surface as [`mlp_par::NON_STRING_PANIC`]).
    pub outcome: Result<ExperimentRun, String>,
    /// Wall-clock time spent inside the experiment.
    pub elapsed: Duration,
}

/// Runs `e` at `scale` under an isolation boundary, converting any panic
/// into an error string. Never unwinds into the caller.
pub fn run_isolated(e: &'static dyn Experiment, scale: RunScale) -> Isolated {
    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| e.run(scale))).map_err(mlp_par::panic_message);
    Isolated {
        outcome,
        elapsed: t0.elapsed(),
    }
}

/// Replaces the default panic hook (full backtrace per panic, noisy when
/// a contained sweep job dies) with a one-line stderr note. The payload
/// still reaches the isolation boundary via `catch_unwind`. Installed by
/// both the CLI and the daemon before their first contained run.
pub fn install_compact_panic_hook() {
    std::panic::set_hook(Box::new(|info| {
        // Push any buffered event lines to disk first: a panic must not
        // leave the `--events` trace with a torn final line.
        mlp_obs::flush_event_sink();
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| mlp_par::NON_STRING_PANIC.to_string());
        match info.location() {
            Some(loc) => eprintln!("[panic at {loc}: {msg}]"),
            None => eprintln!("[panic: {msg}]"),
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    /// A throwaway experiment whose run panics; local to the test so no
    /// global fault state is armed (other tests sweep concurrently).
    struct Boom(&'static str);

    impl Experiment for Boom {
        fn name(&self) -> &'static str {
            "test-boom"
        }
        fn module(&self) -> &'static str {
            "test"
        }
        fn description(&self) -> &'static str {
            "panics on purpose"
        }
        fn section(&self) -> &'static str {
            "tests"
        }
        fn run(&self, _scale: RunScale) -> ExperimentRun {
            if self.0.is_empty() {
                std::panic::panic_any(0xbeefu64);
            }
            panic!("{}", self.0)
        }
    }

    #[test]
    fn isolated_run_contains_panics_as_error_strings() {
        static STRINGY: Boom = Boom("trace cache exploded");
        let iso = run_isolated(&STRINGY, RunScale::quick());
        assert_eq!(iso.outcome.err().as_deref(), Some("trace cache exploded"));

        static NON_STRING: Boom = Boom("");
        let iso = run_isolated(&NON_STRING, RunScale::quick());
        assert_eq!(
            iso.outcome.err().as_deref(),
            Some(mlp_par::NON_STRING_PANIC),
            "non-string payloads must surface as the shared marker"
        );
    }

    #[test]
    fn isolated_run_matches_direct_run() {
        let e = registry::find("fm").expect("fm registered");
        let iso = run_isolated(e, RunScale::quick());
        let direct = e.run(RunScale::quick());
        let run = iso.outcome.expect("fm must succeed");
        assert_eq!(run.text, direct.text);
        assert_eq!(run.report.to_json(), direct.report.to_json());
    }
}
