//! Table 5: MLP of in-order issue (stall-on-miss vs stall-on-use).

use crate::runner::{run_mlpsim, sweep};
use crate::table::{f2, TextTable};
use crate::RunScale;
use mlp_workloads::WorkloadKind;
use mlpsim::{InOrderPolicy, MlpsimConfig, WindowModel};

/// One row of Table 5.
#[derive(Clone, Debug)]
pub struct Row {
    /// Workload.
    pub kind: WorkloadKind,
    /// MLP of a stall-on-miss in-order core.
    pub stall_on_miss: f64,
    /// MLP of a stall-on-use in-order core.
    pub stall_on_use: f64,
}

/// Table 5 results.
#[derive(Clone, Debug)]
pub struct Table5 {
    /// One row per workload.
    pub rows: Vec<Row>,
}

/// Runs Table 5.
pub fn run(scale: RunScale) -> Table5 {
    let mut jobs: Vec<(WorkloadKind, InOrderPolicy)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.push((kind, InOrderPolicy::StallOnMiss));
        jobs.push((kind, InOrderPolicy::StallOnUse));
    }
    let mlps = sweep(jobs, |&(kind, policy)| {
        run_mlpsim(
            kind,
            MlpsimConfig::builder()
                .window(WindowModel::InOrder(policy))
                .build(),
            scale,
        )
        .mlp()
    });
    let rows = WorkloadKind::ALL
        .into_iter()
        .enumerate()
        .map(|(ki, kind)| Row {
            kind,
            stall_on_miss: mlps[2 * ki],
            stall_on_use: mlps[2 * ki + 1],
        })
        .collect();
    Table5 { rows }
}

impl Table5 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["Benchmark", "Stall-on-Miss", "Stall-on-Use"])
            .with_title("Table 5: MLP of In-Order Issue");
        for r in &self.rows {
            t.row(vec![
                r.kind.name().into(),
                f2(r.stall_on_miss),
                f2(r.stall_on_use),
            ]);
        }
        t.render()
    }

    /// The row for a workload.
    pub fn row(&self, kind: WorkloadKind) -> Option<&Row> {
        self.rows.iter().find(|r| r.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shape() {
        let t = Table5 {
            rows: vec![Row {
                kind: WorkloadKind::SpecWeb99,
                stall_on_miss: 1.10,
                stall_on_use: 1.13,
            }],
        };
        let s = t.render();
        assert!(s.contains("Stall-on-Use"));
        assert!(s.contains("1.13"));
        assert!(t.row(WorkloadKind::SpecWeb99).is_some());
        assert!(t.row(WorkloadKind::Database).is_none());
    }
}
