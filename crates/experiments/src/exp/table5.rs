//! Table 5: MLP of in-order issue (stall-on-miss vs stall-on-use).

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_mlpsim, sweep_grid};
use crate::table::{f2, TextTable};
use crate::RunScale;
use mlp_workloads::WorkloadKind;
use mlpsim::{InOrderPolicy, MlpsimConfig, WindowModel};

/// One row of Table 5.
#[derive(Clone, Debug)]
pub struct Row {
    /// Workload.
    pub kind: WorkloadKind,
    /// MLP of a stall-on-miss in-order core.
    pub stall_on_miss: f64,
    /// MLP of a stall-on-use in-order core.
    pub stall_on_use: f64,
}

/// Table 5 results.
#[derive(Clone, Debug)]
pub struct Table5 {
    /// One row per workload.
    pub rows: Vec<Row>,
}

/// Runs Table 5.
pub fn run(scale: RunScale) -> Table5 {
    let mut jobs: Vec<(WorkloadKind, InOrderPolicy)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.push((kind, InOrderPolicy::StallOnMiss));
        jobs.push((kind, InOrderPolicy::StallOnUse));
    }
    let mlps = sweep_grid(jobs, |&(kind, policy)| {
        run_mlpsim(
            kind,
            MlpsimConfig::builder()
                .window(WindowModel::InOrder(policy))
                .build(),
            scale,
        )
        .mlp()
    });
    let rows = WorkloadKind::ALL
        .into_iter()
        .map(|kind| Row {
            kind,
            stall_on_miss: mlps[&(kind, InOrderPolicy::StallOnMiss)],
            stall_on_use: mlps[&(kind, InOrderPolicy::StallOnUse)],
        })
        .collect();
    Table5 { rows }
}

impl Table5 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["Benchmark", "Stall-on-Miss", "Stall-on-Use"])
            .with_title("Table 5: MLP of In-Order Issue");
        for r in &self.rows {
            t.row(vec![
                r.kind.name().into(),
                f2(r.stall_on_miss),
                f2(r.stall_on_use),
            ]);
        }
        t.render()
    }

    /// The row for a workload.
    pub fn row(&self, kind: WorkloadKind) -> Option<&Row> {
        self.rows.iter().find(|r| r.kind == kind)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "table5",
            "Table 5: MLP of In-Order Issue",
            "§5.1 (Table 5)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("policy", vec!["stall-on-miss", "stall-on-use"]);
        for r in &self.rows {
            rep.row(
                JsonRow::new()
                    .field("benchmark", r.kind.name())
                    .field("stall_on_miss", r.stall_on_miss)
                    .field("stall_on_use", r.stall_on_use),
            );
        }
        rep
    }
}

/// Registry entry for Table 5.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "table5"
    }
    fn module(&self) -> &'static str {
        "table5"
    }
    fn description(&self) -> &'static str {
        "In-order MLP under stall-on-miss and stall-on-use policies"
    }
    fn section(&self) -> &'static str {
        "§5.1 (Table 5)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let t = run(scale);
        ExperimentRun {
            text: t.render(),
            report: t.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shape() {
        let t = Table5 {
            rows: vec![Row {
                kind: WorkloadKind::SpecWeb99,
                stall_on_miss: 1.10,
                stall_on_use: 1.13,
            }],
        };
        let s = t.render();
        assert!(s.contains("Stall-on-Use"));
        assert!(s.contains("1.13"));
        assert!(t.row(WorkloadKind::SpecWeb99).is_some());
        assert!(t.row(WorkloadKind::Database).is_none());
    }
}
