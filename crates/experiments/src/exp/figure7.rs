//! Figure 7: impact of L2 cache size on MLP.
//!
//! Larger caches usually *reduce* MLP (surviving misses are further
//! apart) — except when the removed misses sat in low-MLP epochs, as the
//! paper observes for SPECweb99.

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_mlpsim, sweep_grid};
use crate::table::{f2, f3, TextTable};
use crate::RunScale;
use mlp_mem::HierarchyConfig;
use mlp_workloads::WorkloadKind;
use mlpsim::MlpsimConfig;

/// The swept L2 capacities in bytes.
pub const L2_SIZES: [u64; 6] = [
    512 * 1024,
    1024 * 1024,
    2 * 1024 * 1024,
    4 * 1024 * 1024,
    8 * 1024 * 1024,
    16 * 1024 * 1024,
];

/// One workload's MLP and miss-rate across L2 sizes.
#[derive(Clone, Debug)]
pub struct Series {
    /// Workload.
    pub kind: WorkloadKind,
    /// `(mlp, miss rate per 100)` for each of [`L2_SIZES`].
    pub points: Vec<(f64, f64)>,
}

/// Figure 7 results.
#[derive(Clone, Debug)]
pub struct Figure7 {
    /// One series per workload.
    pub series: Vec<Series>,
}

/// Runs Figure 7 with the paper's default processor configuration.
pub fn run(scale: RunScale) -> Figure7 {
    let mut jobs: Vec<(WorkloadKind, u64)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.extend(L2_SIZES.iter().map(|&bytes| (kind, bytes)));
    }
    let points = sweep_grid(jobs, |&(kind, bytes)| {
        let r = run_mlpsim(
            kind,
            MlpsimConfig::builder()
                .hierarchy(HierarchyConfig::default().with_l2_bytes(bytes))
                .build(),
            scale,
        );
        (r.mlp(), r.miss_rate_per_100())
    });
    let series = WorkloadKind::ALL
        .into_iter()
        .map(|kind| Series {
            kind,
            points: L2_SIZES.iter().map(|&b| points[&(kind, b)]).collect(),
        })
        .collect();
    Figure7 { series }
}

impl Figure7 {
    /// Renders the MLP-vs-cache-size series.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "L2 size",
            "Database MLP",
            "(miss/100)",
            "SPECjbb MLP",
            "(miss/100)",
            "SPECweb MLP",
            "(miss/100)",
        ])
        .with_title("Figure 7: Impact of L2 Cache Size");
        for (i, &bytes) in L2_SIZES.iter().enumerate() {
            let mut row = vec![format!("{}KB", bytes / 1024)];
            for s in &self.series {
                row.push(f3(s.points[i].0));
                row.push(f2(s.points[i].1));
            }
            t.row(row);
        }
        t.render()
    }

    /// The series for a workload.
    pub fn series_for(&self, kind: WorkloadKind) -> Option<&Series> {
        self.series.iter().find(|s| s.kind == kind)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "figure7",
            "Figure 7: Impact of L2 Cache Size",
            "§5.4 (Figure 7)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("l2_bytes", L2_SIZES.to_vec());
        for s in &self.series {
            for (i, &bytes) in L2_SIZES.iter().enumerate() {
                rep.row(
                    JsonRow::new()
                        .field("benchmark", s.kind.name())
                        .field("l2_bytes", bytes)
                        .field("mlp", s.points[i].0)
                        .field("miss_rate_per_100", s.points[i].1),
                );
            }
        }
        rep
    }
}

/// Registry entry for Figure 7.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "figure7"
    }
    fn module(&self) -> &'static str {
        "figure7"
    }
    fn description(&self) -> &'static str {
        "MLP and miss rate as the L2 grows from 512KB to 16MB"
    }
    fn section(&self) -> &'static str {
        "§5.4 (Figure 7)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let f = run(scale);
        ExperimentRun {
            text: f.render(),
            report: f.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shape() {
        let mk = |kind| Series {
            kind,
            points: vec![(1.3, 0.9); L2_SIZES.len()],
        };
        let f = Figure7 {
            series: vec![
                mk(WorkloadKind::Database),
                mk(WorkloadKind::SpecJbb2000),
                mk(WorkloadKind::SpecWeb99),
            ],
        };
        let s = f.render();
        assert!(s.contains("512KB"));
        assert!(s.contains("16384KB"));
        assert!(f.series_for(WorkloadKind::SpecJbb2000).is_some());
    }
}
