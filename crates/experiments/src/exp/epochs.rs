//! Epoch statistics: the distribution of useful off-chip accesses per
//! epoch.
//!
//! The paper (§4.1) notes that MLPsim "can also be used as a simple
//! processor model that accurately estimates the clustering of off-chip
//! accesses in simulation-based queueing models of memory and system
//! interconnects" — this experiment exposes exactly that distribution for
//! the default processor and for runahead.

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_mlpsim, sweep};
use crate::table::{pct, TextTable};
use crate::RunScale;
use mlp_workloads::WorkloadKind;
use mlpsim::{IssueConfig, MlpsimConfig, WindowModel};

/// Epoch-size buckets reported (last bucket aggregates the tail).
pub const BUCKETS: [usize; 8] = [1, 2, 3, 4, 5, 8, 16, 32];

/// One distribution.
#[derive(Clone, Debug)]
pub struct Distribution {
    /// Workload.
    pub kind: WorkloadKind,
    /// Machine label ("64C" or "RAE").
    pub machine: &'static str,
    /// Fraction of epochs with ≤ bucket accesses, per [`BUCKETS`].
    pub cdf: Vec<f64>,
    /// Mean accesses per epoch (= MLP).
    pub mlp: f64,
}

/// Epoch-statistics results.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Distributions for the default 64C core and runahead, per workload.
    pub distributions: Vec<Distribution>,
}

/// Runs the epoch-statistics experiment.
pub fn run(scale: RunScale) -> EpochStats {
    let machines: [(&'static str, MlpsimConfig); 2] = [
        ("64C", MlpsimConfig::default()),
        (
            "RAE",
            MlpsimConfig::builder()
                .issue(IssueConfig::D)
                .window(WindowModel::Runahead { max_dist: 2048 })
                .build(),
        ),
    ];
    let mut jobs: Vec<(WorkloadKind, usize)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.extend((0..machines.len()).map(|mi| (kind, mi)));
    }
    let distributions = sweep(jobs, |&(kind, mi)| {
        let (machine, cfg) = &machines[mi];
        let r = run_mlpsim(kind, cfg.clone(), scale);
        let total: u64 = r.epoch_size_histogram.iter().sum();
        let mut cdf = Vec::new();
        for &b in &BUCKETS {
            let upto: u64 = r.epoch_size_histogram.iter().take(b + 1).sum();
            cdf.push(if total == 0 {
                0.0
            } else {
                upto as f64 / total as f64
            });
        }
        Distribution {
            kind,
            machine,
            cdf,
            mlp: r.mlp(),
        }
    });
    EpochStats { distributions }
}

impl EpochStats {
    /// Renders the cumulative distributions.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Benchmark".to_string(),
            "Machine".into(),
            "MLP".into(),
            "<=1".into(),
            "<=2".into(),
            "<=3".into(),
            "<=4".into(),
            "<=5".into(),
            "<=8".into(),
            "<=16".into(),
            "<=32".into(),
        ])
        .with_title("Epoch statistics: cumulative share of epochs by accesses per epoch (§4.1)");
        for d in &self.distributions {
            let mut row = vec![
                d.kind.name().to_string(),
                d.machine.to_string(),
                format!("{:.2}", d.mlp),
            ];
            row.extend(d.cdf.iter().map(|&f| pct(100.0 * f)));
            t.row(row);
        }
        t.render()
    }

    /// The distribution for `(kind, machine)`.
    pub fn distribution(&self, kind: WorkloadKind, machine: &str) -> Option<&Distribution> {
        self.distributions
            .iter()
            .find(|d| d.kind == kind && d.machine == machine)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "epochs",
            "Epoch statistics: accesses-per-epoch distribution",
            "§4.1 (epoch model)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("machine", vec!["64C", "RAE"]);
        rep.axis("bucket", BUCKETS.map(|b| b as u64).to_vec());
        for d in &self.distributions {
            let mut row = JsonRow::new()
                .field("benchmark", d.kind.name())
                .field("machine", d.machine)
                .field("mlp", d.mlp);
            for (name, &f) in CDF_FIELDS.iter().zip(&d.cdf) {
                row = row.field(name, f);
            }
            rep.row(row);
        }
        rep
    }
}

/// JSON field names for the CDF buckets, aligned with [`BUCKETS`].
const CDF_FIELDS: [&str; 8] = [
    "cdf_le_1",
    "cdf_le_2",
    "cdf_le_3",
    "cdf_le_4",
    "cdf_le_5",
    "cdf_le_8",
    "cdf_le_16",
    "cdf_le_32",
];

/// Registry entry for the epoch-statistics experiment.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "epochs"
    }
    fn module(&self) -> &'static str {
        "epochs"
    }
    fn description(&self) -> &'static str {
        "Distribution of useful off-chip accesses per epoch (64C and RAE)"
    }
    fn section(&self) -> &'static str {
        "§4.1 (epoch model)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let e = run(scale);
        ExperimentRun {
            text: e.render(),
            report: e.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_lookup() {
        let s = EpochStats {
            distributions: vec![Distribution {
                kind: WorkloadKind::Database,
                machine: "64C",
                cdf: vec![0.5, 0.7, 0.8, 0.85, 0.9, 0.95, 0.99, 1.0],
                mlp: 1.4,
            }],
        };
        assert!(s.render().contains("Epoch statistics"));
        assert!(s.distribution(WorkloadKind::Database, "64C").is_some());
        assert!(s.distribution(WorkloadKind::Database, "RAE").is_none());
    }

    #[test]
    fn cdf_is_monotone_in_fixture() {
        let d = Distribution {
            kind: WorkloadKind::SpecWeb99,
            machine: "RAE",
            cdf: vec![0.2, 0.4, 0.5, 0.6, 0.7, 0.85, 0.95, 1.0],
            mlp: 2.0,
        };
        assert!(d.cdf.windows(2).all(|w| w[1] >= w[0]));
    }
}
