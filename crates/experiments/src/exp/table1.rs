//! Table 1: measurements of the on-chip and off-chip components of CPI.
//!
//! For each workload and off-chip latency (200 and 1000 cycles), the
//! cycle-accurate simulator measures overall CPI (realistic L2) and
//! `CPI_perf` (perfect L2); `Overlap_CM` is then derived from the CPI
//! equation, exactly as in the paper's §2.2.

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_cyclesim, sweep_grid};
use crate::table::{f2, TextTable};
use crate::RunScale;
use mlp_cyclesim::CycleSimConfig;
use mlp_model::CpiModel;
use mlp_workloads::WorkloadKind;

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Row {
    /// Workload.
    pub kind: WorkloadKind,
    /// Off-chip latency in cycles.
    pub latency: u64,
    /// Overall CPI.
    pub cpi: f64,
    /// On-chip CPI component.
    pub cpi_on_chip: f64,
    /// Off-chip CPI component.
    pub cpi_off_chip: f64,
    /// Off-chip accesses per 100 instructions.
    pub miss_rate_per_100: f64,
    /// Average MLP measured by MLP(t) integration.
    pub mlp: f64,
    /// Derived compute/memory overlap.
    pub overlap_cm: f64,
    /// The fitted model (reused by Figure 11).
    pub model: CpiModel,
}

/// Table 1 results.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// One row per workload × latency.
    pub rows: Vec<Row>,
}

/// Runs Table 1.
pub fn run(scale: RunScale) -> Table1 {
    run_with_latencies(scale, &[200, 1000])
}

/// Runs Table 1 for a caller-chosen set of latencies.
pub fn run_with_latencies(scale: RunScale, latencies: &[u64]) -> Table1 {
    // One job per cycle-simulator run: the perfect-L2 run (`None`, its
    // CPI is latency-independent) plus one realistic run per latency.
    let mut jobs: Vec<(WorkloadKind, Option<u64>)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.push((kind, None));
        jobs.extend(latencies.iter().map(|&l| (kind, Some(l))));
    }
    let reports = sweep_grid(jobs, |&(kind, lat)| match lat {
        None => run_cyclesim(kind, CycleSimConfig::default().perfect_l2(), scale),
        Some(latency) => run_cyclesim(
            kind,
            CycleSimConfig::default().with_mem_latency(latency),
            scale,
        ),
    });
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let perf = &reports[&(kind, None)];
        for &latency in latencies {
            let real = &reports[&(kind, Some(latency))];
            let miss_rate = real.offchip.total() as f64 / real.insts as f64;
            let model = CpiModel::from_measured(
                real.cpi(),
                perf.cpi(),
                miss_rate,
                latency as f64,
                real.mlp(),
            );
            rows.push(Row {
                kind,
                latency,
                cpi: real.cpi(),
                cpi_on_chip: model.cpi_on_chip(),
                cpi_off_chip: model.cpi_off_chip(real.mlp()),
                miss_rate_per_100: 100.0 * miss_rate,
                mlp: real.mlp(),
                overlap_cm: model.overlap_cm,
                model,
            });
        }
    }
    Table1 { rows }
}

impl Table1 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Benchmark",
            "Off-Chip Latency",
            "CPI",
            "CPI_on-chip",
            "CPI_off-chip",
            "L2 Miss Rate (/100)",
            "MLP",
            "Overlap_CM",
        ])
        .with_title("Table 1: On-Chip and Off-Chip Components of CPI");
        for r in &self.rows {
            t.row(vec![
                r.kind.name().into(),
                r.latency.to_string(),
                f2(r.cpi),
                f2(r.cpi_on_chip),
                f2(r.cpi_off_chip),
                f2(r.miss_rate_per_100),
                f2(r.mlp),
                f2(r.overlap_cm),
            ]);
        }
        t.render()
    }

    /// The row for a given workload and latency, if present.
    pub fn row(&self, kind: WorkloadKind, latency: u64) -> Option<&Row> {
        self.rows
            .iter()
            .find(|r| r.kind == kind && r.latency == latency)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "table1",
            "Table 1: On-Chip and Off-Chip Components of CPI",
            "§2.2",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        let mut latencies: Vec<u64> = self.rows.iter().map(|r| r.latency).collect();
        latencies.sort_unstable();
        latencies.dedup();
        rep.axis("latency", latencies);
        for r in &self.rows {
            rep.row(
                JsonRow::new()
                    .field("benchmark", r.kind.name())
                    .field("latency", r.latency)
                    .field("cpi", r.cpi)
                    .field("cpi_on_chip", r.cpi_on_chip)
                    .field("cpi_off_chip", r.cpi_off_chip)
                    .field("miss_rate_per_100", r.miss_rate_per_100)
                    .field("mlp", r.mlp)
                    .field("overlap_cm", r.overlap_cm),
            );
        }
        rep
    }
}

/// Registry entry for Table 1.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn module(&self) -> &'static str {
        "table1"
    }
    fn description(&self) -> &'static str {
        "On-/off-chip CPI components, MLP and Overlap_CM per workload and latency"
    }
    fn section(&self) -> &'static str {
        "§2.2 (Table 1)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let t = run(scale);
        ExperimentRun {
            text: t.render(),
            report: t.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shape() {
        let model = CpiModel {
            cpi_perf: 1.5,
            overlap_cm: 0.2,
            miss_rate: 0.0084,
            miss_penalty: 200.0,
        };
        let t = Table1 {
            rows: vec![Row {
                kind: WorkloadKind::Database,
                latency: 200,
                cpi: 2.44,
                cpi_on_chip: 1.47,
                cpi_off_chip: 0.97,
                miss_rate_per_100: 0.84,
                mlp: 1.33,
                overlap_cm: 0.2,
                model,
            }],
        };
        let s = t.render();
        assert!(s.contains("Database"));
        assert!(s.contains("2.44"));
        assert!(t.row(WorkloadKind::Database, 200).is_some());
        assert!(t.row(WorkloadKind::Database, 1000).is_none());
    }
}
