//! Figure 8: impact of runahead execution.
//!
//! Runahead (max distance 2048) compared against two conventional
//! out-of-order configurations: 64-entry issue window with configuration
//! D and a 64- or 256-entry ROB.

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_mlpsim, sweep_grid};
use crate::table::{f3, pct, TextTable};
use crate::RunScale;
use mlp_workloads::WorkloadKind;
use mlpsim::{IssueConfig, MlpsimConfig, WindowModel};

/// The maximum runahead distance (instructions), as in the paper.
pub const RAE_MAX_DIST: usize = 2048;

/// One row of Figure 8.
#[derive(Clone, Debug)]
pub struct Row {
    /// Workload.
    pub kind: WorkloadKind,
    /// 64-entry IW, 64-entry ROB, config D.
    pub conv_64: f64,
    /// 64-entry IW, 256-entry ROB, config D.
    pub conv_256: f64,
    /// Runahead execution.
    pub rae: f64,
}

impl Row {
    /// RAE improvement over the 64-entry-ROB configuration, percent.
    pub fn gain_over_64(&self) -> f64 {
        100.0 * (self.rae / self.conv_64 - 1.0)
    }

    /// RAE improvement over the 256-entry-ROB configuration, percent.
    pub fn gain_over_256(&self) -> f64 {
        100.0 * (self.rae / self.conv_256 - 1.0)
    }
}

/// Figure 8 results.
#[derive(Clone, Debug)]
pub struct Figure8 {
    /// One row per workload.
    pub rows: Vec<Row>,
}

/// Builds the three configurations the figure compares.
pub fn configs() -> [MlpsimConfig; 3] {
    [
        MlpsimConfig::builder()
            .issue(IssueConfig::D)
            .window(WindowModel::OutOfOrder {
                iw: 64,
                rob: 64,
                fetch_buffer: 32,
            })
            .build(),
        MlpsimConfig::builder()
            .issue(IssueConfig::D)
            .window(WindowModel::OutOfOrder {
                iw: 64,
                rob: 256,
                fetch_buffer: 32,
            })
            .build(),
        MlpsimConfig::builder()
            .issue(IssueConfig::D)
            .window(WindowModel::Runahead {
                max_dist: RAE_MAX_DIST,
            })
            .build(),
    ]
}

/// Runs Figure 8.
pub fn run(scale: RunScale) -> Figure8 {
    let cfgs = configs();
    let mut jobs: Vec<(WorkloadKind, usize)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.extend((0..cfgs.len()).map(|ci| (kind, ci)));
    }
    let mlps = sweep_grid(jobs, |&(kind, ci)| {
        run_mlpsim(kind, cfgs[ci].clone(), scale).mlp()
    });
    let rows = WorkloadKind::ALL
        .into_iter()
        .map(|kind| Row {
            kind,
            conv_64: mlps[&(kind, 0)],
            conv_256: mlps[&(kind, 1)],
            rae: mlps[&(kind, 2)],
        })
        .collect();
    Figure8 { rows }
}

impl Figure8 {
    /// Renders the paper-style comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Benchmark",
            "64D/ROB64",
            "64D/ROB256",
            "RAE",
            "gain vs 64",
            "gain vs 256",
        ])
        .with_title("Figure 8: Impact of Runahead Execution (MLP)");
        for r in &self.rows {
            t.row(vec![
                r.kind.name().into(),
                f3(r.conv_64),
                f3(r.conv_256),
                f3(r.rae),
                pct(r.gain_over_64()),
                pct(r.gain_over_256()),
            ]);
        }
        t.render()
    }

    /// The row for a workload.
    pub fn row(&self, kind: WorkloadKind) -> Option<&Row> {
        self.rows.iter().find(|r| r.kind == kind)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "figure8",
            "Figure 8: Impact of Runahead Execution (MLP)",
            "§5.5 (Figure 8)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("machine", vec!["64D/ROB64", "64D/ROB256", "RAE"]);
        for r in &self.rows {
            rep.row(
                JsonRow::new()
                    .field("benchmark", r.kind.name())
                    .field("conv_rob64", r.conv_64)
                    .field("conv_rob256", r.conv_256)
                    .field("rae", r.rae)
                    .field("gain_vs_rob64_pct", r.gain_over_64())
                    .field("gain_vs_rob256_pct", r.gain_over_256()),
            );
        }
        rep
    }
}

/// Registry entry for Figure 8.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "figure8"
    }
    fn module(&self) -> &'static str {
        "figure8"
    }
    fn description(&self) -> &'static str {
        "Runahead execution vs conventional 64-entry-window machines"
    }
    fn section(&self) -> &'static str {
        "§5.5 (Figure 8)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let f = run(scale);
        ExperimentRun {
            text: f.render(),
            report: f.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_and_render() {
        let r = Row {
            kind: WorkloadKind::Database,
            conv_64: 1.4,
            conv_256: 1.6,
            rae: 2.4,
        };
        assert!((r.gain_over_64() - 71.42857).abs() < 1e-3);
        assert!((r.gain_over_256() - 50.0).abs() < 1e-9);
        let f = Figure8 { rows: vec![r] };
        assert!(f.render().contains("RAE"));
        assert!(f.row(WorkloadKind::Database).is_some());
    }

    #[test]
    fn config_shapes() {
        let [a, b, c] = configs();
        assert!(matches!(a.window, WindowModel::OutOfOrder { rob: 64, .. }));
        assert!(matches!(b.window, WindowModel::OutOfOrder { rob: 256, .. }));
        assert!(matches!(c.window, WindowModel::Runahead { max_dist: 2048 }));
    }
}
