//! Figure 6: impact of decoupling issue-window and ROB sizes.
//!
//! For each issue-window size and configuration, MLP with a ROB of 1×,
//! 2×, 4× and 8× the issue window, plus a fixed 2048-entry ROB, and the
//! "INF" reference (2048-entry window and ROB under configuration E).

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_mlpsim, sweep};
use crate::table::{f3, TextTable};
use crate::RunScale;
use mlp_workloads::WorkloadKind;
use mlpsim::{IssueConfig, MlpsimConfig, WindowModel};

/// Issue-window sizes swept.
pub const IW_SIZES: [usize; 4] = [16, 32, 64, 128];
/// ROB multipliers swept.
pub const ROB_MULTS: [usize; 4] = [1, 2, 4, 8];
/// The fixed large ROB of the paper's "2048" segments.
pub const BIG_ROB: usize = 2048;

/// MLP of one issue-window/config bar across ROB sizes.
#[derive(Clone, Debug)]
pub struct Bar {
    /// Workload.
    pub kind: WorkloadKind,
    /// Issue-window size.
    pub iw: usize,
    /// Issue configuration.
    pub issue: IssueConfig,
    /// MLP at ROB = iw × [`ROB_MULTS`] (in order).
    pub by_mult: [f64; 4],
    /// MLP at the fixed 2048-entry ROB.
    pub rob_2048: f64,
}

/// Figure 6 results.
#[derive(Clone, Debug)]
pub struct Figure6 {
    /// One bar per workload × issue-window size × configuration.
    pub bars: Vec<Bar>,
    /// The "INF" reference per workload: 2048-entry IW and ROB, config E.
    pub inf: Vec<(WorkloadKind, f64)>,
}

/// Runs the full Figure 6 grid.
pub fn run(scale: RunScale) -> Figure6 {
    run_grid(scale, &IW_SIZES, &IssueConfig::ALL)
}

/// Runs a subset of the grid.
pub fn run_grid(scale: RunScale, iw_sizes: &[usize], configs: &[IssueConfig]) -> Figure6 {
    let mut bar_jobs: Vec<(WorkloadKind, usize, IssueConfig)> = Vec::new();
    for kind in WorkloadKind::ALL {
        for &iw in iw_sizes {
            for &issue in configs {
                bar_jobs.push((kind, iw, issue));
            }
        }
    }
    let bars = sweep(bar_jobs, |&(kind, iw, issue)| {
        let mut by_mult = [0.0; 4];
        for (k, &mult) in ROB_MULTS.iter().enumerate() {
            by_mult[k] = run_one(kind, issue, iw, iw * mult, scale);
        }
        Bar {
            kind,
            iw,
            issue,
            by_mult,
            rob_2048: run_one(kind, issue, iw, BIG_ROB, scale),
        }
    });
    let inf = sweep(WorkloadKind::ALL.to_vec(), |&kind| {
        let r = run_mlpsim(
            kind,
            MlpsimConfig::builder()
                .issue(IssueConfig::E)
                .window(WindowModel::OutOfOrder {
                    iw: BIG_ROB,
                    rob: BIG_ROB,
                    fetch_buffer: 32,
                })
                .build(),
            scale,
        );
        (kind, r.mlp())
    });
    Figure6 { bars, inf }
}

fn run_one(kind: WorkloadKind, issue: IssueConfig, iw: usize, rob: usize, scale: RunScale) -> f64 {
    run_mlpsim(
        kind,
        MlpsimConfig::builder()
            .issue(issue)
            .window(WindowModel::OutOfOrder {
                iw,
                rob,
                fetch_buffer: 32,
            })
            .build(),
        scale,
    )
    .mlp()
}

impl Figure6 {
    /// Renders one table per workload.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &(kind, inf_mlp) in &self.inf {
            let mut t = TextTable::new(vec!["Bar", "1X", "2X", "4X", "8X", "ROB 2048"]).with_title(
                format!(
                    "Figure 6: Decoupling issue window and ROB — {} (INF = {:.3})",
                    kind.name(),
                    inf_mlp
                ),
            );
            for b in self.bars.iter().filter(|b| b.kind == kind) {
                t.row(vec![
                    format!("{}{}", b.iw, b.issue.letter()),
                    f3(b.by_mult[0]),
                    f3(b.by_mult[1]),
                    f3(b.by_mult[2]),
                    f3(b.by_mult[3]),
                    f3(b.rob_2048),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// The bar for `(kind, iw, config)`.
    pub fn bar(&self, kind: WorkloadKind, iw: usize, issue: IssueConfig) -> Option<&Bar> {
        self.bars
            .iter()
            .find(|b| b.kind == kind && b.iw == iw && b.issue == issue)
    }

    /// The INF reference MLP for a workload.
    pub fn inf_mlp(&self, kind: WorkloadKind) -> Option<f64> {
        self.inf.iter().find(|(k, _)| *k == kind).map(|&(_, m)| m)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "figure6",
            "Figure 6: Decoupling issue window and ROB",
            "§5.3 (Figure 6)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("issue_window", IW_SIZES.to_vec());
        rep.axis("rob_multiplier", ROB_MULTS.to_vec());
        rep.axis("config", IssueConfig::ALL.map(|c| c.letter()).to_vec());
        for b in &self.bars {
            rep.row(
                JsonRow::new()
                    .field("benchmark", b.kind.name())
                    .field("issue_window", b.iw)
                    .field("config", b.issue.letter())
                    .field("mlp_rob_1x", b.by_mult[0])
                    .field("mlp_rob_2x", b.by_mult[1])
                    .field("mlp_rob_4x", b.by_mult[2])
                    .field("mlp_rob_8x", b.by_mult[3])
                    .field("mlp_rob_2048", b.rob_2048)
                    .field("mlp_inf", self.inf_mlp(b.kind)),
            );
        }
        rep
    }
}

/// Registry entry for Figure 6.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "figure6"
    }
    fn module(&self) -> &'static str {
        "figure6"
    }
    fn description(&self) -> &'static str {
        "MLP when the ROB grows past the issue window (1x-8x, 2048, INF)"
    }
    fn section(&self) -> &'static str {
        "§5.3 (Figure 6)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let f = run(scale);
        ExperimentRun {
            text: f.render(),
            report: f.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_render() {
        let f = Figure6 {
            bars: vec![Bar {
                kind: WorkloadKind::Database,
                iw: 64,
                issue: IssueConfig::D,
                by_mult: [1.4, 1.5, 1.62, 1.7],
                rob_2048: 1.8,
            }],
            inf: vec![(WorkloadKind::Database, 2.4)],
        };
        assert!(f.bar(WorkloadKind::Database, 64, IssueConfig::D).is_some());
        assert_eq!(f.inf_mlp(WorkloadKind::Database), Some(2.4));
        let s = f.render();
        assert!(s.contains("64D"));
        assert!(s.contains("INF = 2.400"));
    }
}
