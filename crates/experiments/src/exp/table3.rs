//! Table 3: validation of MLPsim against the cycle-accurate simulator.
//!
//! For each workload, window size (32/64/128, issue window = ROB) and
//! issue configuration (A/B/C — the cycle model, like the paper's, issues
//! branches in order), the cycle-accurate MLP is measured at off-chip
//! latencies 200/500/1000 and compared to the (latency-free) epoch-model
//! MLP. The paper's claim, reproduced here: the two agree closely, and
//! nearly exactly at 1000-cycle latency.

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_cyclesim, run_mlpsim, sweep};
use crate::table::{f3, TextTable};
use crate::RunScale;
use mlp_cyclesim::CycleSimConfig;
use mlp_workloads::WorkloadKind;
use mlpsim::{IssueConfig, MlpsimConfig};

/// Window sizes validated (issue window = ROB).
pub const SIZES: [usize; 3] = [32, 64, 128];
/// Issue configurations validated.
pub const CONFIGS: [IssueConfig; 3] = [IssueConfig::A, IssueConfig::B, IssueConfig::C];
/// Off-chip latencies at which the cycle model runs.
pub const LATENCIES: [u64; 3] = [200, 500, 1000];

/// One validation row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Workload.
    pub kind: WorkloadKind,
    /// Issue-window/ROB size.
    pub size: usize,
    /// Issue configuration.
    pub issue: IssueConfig,
    /// Cycle-accurate MLP at each of [`LATENCIES`].
    pub cyclesim: [f64; 3],
    /// Epoch-model MLP.
    pub mlpsim: f64,
}

impl Row {
    /// Relative error of the epoch model vs the 1000-cycle cycle model.
    pub fn error_at_1000(&self) -> f64 {
        (self.mlpsim - self.cyclesim[2]).abs() / self.cyclesim[2]
    }
}

/// Table 3 results.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// One row per workload × size × config.
    pub rows: Vec<Row>,
}

/// Runs the full Table 3 grid.
pub fn run(scale: RunScale) -> Table3 {
    run_grid(scale, &SIZES, &CONFIGS)
}

/// Runs a caller-chosen subset of the grid.
pub fn run_grid(scale: RunScale, sizes: &[usize], configs: &[IssueConfig]) -> Table3 {
    // Align the epoch-model window with the cycle-accurate one so both
    // simulators see the same slice of the trace.
    let scale = RunScale {
        warmup: scale.cycle_warmup,
        measure: scale.cycle_measure,
        ..scale
    };
    let mut jobs: Vec<(WorkloadKind, usize, IssueConfig)> = Vec::new();
    for kind in WorkloadKind::ALL {
        for &size in sizes {
            for &issue in configs {
                jobs.push((kind, size, issue));
            }
        }
    }
    let rows = sweep(jobs, |&(kind, size, issue)| {
        let m = run_mlpsim(
            kind,
            MlpsimConfig::builder()
                .issue(issue)
                .coupled_window(size)
                .build(),
            scale,
        );
        let mut cyc = [0.0; 3];
        for (k, &lat) in LATENCIES.iter().enumerate() {
            let c = run_cyclesim(
                kind,
                CycleSimConfig::default()
                    .with_window(size)
                    .with_issue(issue)
                    .with_mem_latency(lat),
                scale,
            );
            cyc[k] = c.mlp();
        }
        Row {
            kind,
            size,
            issue,
            cyclesim: cyc,
            mlpsim: m.mlp(),
        }
    });
    Table3 { rows }
}

impl Table3 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Benchmark",
            "Size",
            "Config",
            "CycleSim 200",
            "CycleSim 500",
            "CycleSim 1000",
            "MLPsim",
            "err@1000",
        ])
        .with_title("Table 3: MLPsim vs Cycle-Accurate Simulator");
        for r in &self.rows {
            t.row(vec![
                r.kind.name().into(),
                r.size.to_string(),
                r.issue.letter().into(),
                f3(r.cyclesim[0]),
                f3(r.cyclesim[1]),
                f3(r.cyclesim[2]),
                f3(r.mlpsim),
                format!("{:.1}%", 100.0 * r.error_at_1000()),
            ]);
        }
        t.render()
    }

    /// Worst-case relative error of the epoch model at 1000 cycles.
    pub fn max_error_at_1000(&self) -> f64 {
        self.rows.iter().map(Row::error_at_1000).fold(0.0, f64::max)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "table3",
            "Table 3: MLPsim vs Cycle-Accurate Simulator",
            "§4.2 (Table 3)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("size", SIZES.to_vec());
        rep.axis("config", CONFIGS.map(|c| c.letter()).to_vec());
        rep.axis("latency", LATENCIES.to_vec());
        for r in &self.rows {
            rep.row(
                JsonRow::new()
                    .field("benchmark", r.kind.name())
                    .field("size", r.size)
                    .field("config", r.issue.letter())
                    .field("cyclesim_200", r.cyclesim[0])
                    .field("cyclesim_500", r.cyclesim[1])
                    .field("cyclesim_1000", r.cyclesim[2])
                    .field("mlpsim", r.mlpsim)
                    .field("error_at_1000", r.error_at_1000()),
            );
        }
        rep
    }
}

/// Registry entry for Table 3.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "table3"
    }
    fn module(&self) -> &'static str {
        "table3"
    }
    fn description(&self) -> &'static str {
        "MLPsim validation: epoch-model MLP vs the cycle-accurate simulator"
    }
    fn section(&self) -> &'static str {
        "§4.2 (Table 3)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let t = run(scale);
        ExperimentRun {
            text: t.render(),
            report: t.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_metric() {
        let r = Row {
            kind: WorkloadKind::Database,
            size: 64,
            issue: IssueConfig::C,
            cyclesim: [1.3, 1.35, 1.4],
            mlpsim: 1.47,
        };
        assert!((r.error_at_1000() - 0.05).abs() < 1e-9);
        let t = Table3 { rows: vec![r] };
        assert!((t.max_error_at_1000() - 0.05).abs() < 1e-9);
        assert!(t.render().contains("MLPsim"));
    }
}
