//! Figure 9 and Table 6: missing-load value prediction.
//!
//! A 16K-entry last-value predictor, consulted only for missing loads, is
//! added to the three Figure 8 configurations. Table 6 reports the
//! predictor's correct/wrong/no-predict mix.

use super::figure8;
use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_mlpsim, sweep_grid};
use crate::table::{f3, pct, TextTable};
use crate::RunScale;
use mlp_workloads::WorkloadKind;
use mlpsim::{MlpsimConfig, ValueMode};

/// Value-predictor entries, as in the paper.
pub const VP_ENTRIES: usize = 16 * 1024;

/// One row of Figure 9.
#[derive(Clone, Debug)]
pub struct Row {
    /// Workload.
    pub kind: WorkloadKind,
    /// MLP without / with value prediction for each of the three Figure 8
    /// configurations (64D/ROB64, 64D/ROB256, RAE).
    pub without: [f64; 3],
    /// MLP with the last-value predictor.
    pub with_vp: [f64; 3],
    /// Table 6 accuracy on the RAE configuration:
    /// (correct, wrong, no-predict) fractions.
    pub accuracy: (f64, f64, f64),
}

impl Row {
    /// Percent MLP improvement per configuration.
    pub fn gains(&self) -> [f64; 3] {
        let mut g = [0.0; 3];
        for (k, gk) in g.iter_mut().enumerate() {
            *gk = 100.0 * (self.with_vp[k] / self.without[k] - 1.0);
        }
        g
    }
}

/// Figure 9 + Table 6 results.
#[derive(Clone, Debug)]
pub struct Figure9 {
    /// One row per workload.
    pub rows: Vec<Row>,
}

/// Runs Figure 9 and Table 6.
pub fn run(scale: RunScale) -> Figure9 {
    let base = figure8::configs();
    let mut jobs: Vec<(WorkloadKind, usize)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.extend((0..base.len()).map(|k| (kind, k)));
    }
    let pairs = sweep_grid(jobs, |&(kind, k)| {
        let cfg = &base[k];
        let without = run_mlpsim(kind, cfg.clone(), scale).mlp();
        let vp_cfg = MlpsimConfig {
            value: ValueMode::LastValue(VP_ENTRIES),
            ..cfg.clone()
        };
        let r = run_mlpsim(kind, vp_cfg, scale);
        let accuracy = (
            r.value_stats.correct_rate(),
            r.value_stats.wrong_rate(),
            r.value_stats.no_predict_rate(),
        );
        (without, r.mlp(), accuracy)
    });
    let rows = WorkloadKind::ALL
        .into_iter()
        .map(|kind| Row {
            kind,
            without: [0usize, 1, 2].map(|k| pairs[&(kind, k)].0),
            with_vp: [0usize, 1, 2].map(|k| pairs[&(kind, k)].1),
            // Table 6 reports accuracy on the RAE configuration.
            accuracy: pairs[&(kind, 2)].2,
        })
        .collect();
    Figure9 { rows }
}

impl Figure9 {
    /// Renders Figure 9 (MLP gains) and Table 6 (predictor accuracy).
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Benchmark",
            "64D/64 +VP",
            "64D/256 +VP",
            "RAE +VP",
            "gain 64",
            "gain 256",
            "gain RAE",
        ])
        .with_title("Figure 9: Impact of Value Prediction (MLP with VP and % gain)");
        for r in &self.rows {
            let g = r.gains();
            t.row(vec![
                r.kind.name().into(),
                f3(r.with_vp[0]),
                f3(r.with_vp[1]),
                f3(r.with_vp[2]),
                pct(g[0]),
                pct(g[1]),
                pct(g[2]),
            ]);
        }
        let mut t6 = TextTable::new(vec!["Benchmark", "Correct", "Wrong", "No Predict"])
            .with_title("Table 6: Value Predictor Statistics (missing loads, RAE config)");
        for r in &self.rows {
            t6.row(vec![
                r.kind.name().into(),
                pct(100.0 * r.accuracy.0),
                pct(100.0 * r.accuracy.1),
                pct(100.0 * r.accuracy.2),
            ]);
        }
        format!("{}\n{}", t.render(), t6.render())
    }

    /// The row for a workload.
    pub fn row(&self, kind: WorkloadKind) -> Option<&Row> {
        self.rows.iter().find(|r| r.kind == kind)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "figure9",
            "Figure 9 + Table 6: missing-load value prediction",
            "§5.6 (Figure 9, Table 6)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("machine", vec!["64D/ROB64", "64D/ROB256", "RAE"]);
        for r in &self.rows {
            let g = r.gains();
            rep.row(
                JsonRow::new()
                    .field("benchmark", r.kind.name())
                    .field("mlp_rob64", r.without[0])
                    .field("mlp_rob64_vp", r.with_vp[0])
                    .field("gain_rob64_pct", g[0])
                    .field("mlp_rob256", r.without[1])
                    .field("mlp_rob256_vp", r.with_vp[1])
                    .field("gain_rob256_pct", g[1])
                    .field("mlp_rae", r.without[2])
                    .field("mlp_rae_vp", r.with_vp[2])
                    .field("gain_rae_pct", g[2])
                    .field("vp_correct", r.accuracy.0)
                    .field("vp_wrong", r.accuracy.1)
                    .field("vp_no_predict", r.accuracy.2),
            );
        }
        rep
    }
}

/// Registry entry for Figure 9.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "figure9"
    }
    fn module(&self) -> &'static str {
        "figure9"
    }
    fn description(&self) -> &'static str {
        "Missing-load value prediction: MLP gains and predictor accuracy"
    }
    fn section(&self) -> &'static str {
        "§5.6 (Figure 9, Table 6)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let f = run(scale);
        ExperimentRun {
            text: f.render(),
            report: f.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_and_render() {
        let r = Row {
            kind: WorkloadKind::Database,
            without: [1.4, 1.6, 2.4],
            with_vp: [1.45, 1.65, 2.6],
            accuracy: (0.42, 0.07, 0.51),
        };
        let g = r.gains();
        assert!(g[2] > g[0], "RAE shows the most VP gain in this row");
        let f = Figure9 { rows: vec![r] };
        let s = f.render();
        assert!(s.contains("Table 6"));
        assert!(s.contains("42.0%"));
    }
}
