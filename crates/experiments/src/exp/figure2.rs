//! Figure 2: clustering of off-chip accesses.
//!
//! Plots (as a text series) the cumulative probability of encountering
//! the next off-chip access within N dynamic instructions, observed vs
//! the uniform (geometric) distribution implied by the mean inter-miss
//! distance. The divergence between the two curves is what makes MLP
//! exploitable at all.

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{cursor, sweep};
use crate::table::{f3, TextTable};
use crate::RunScale;
use mlp_isa::{OpKind, TraceSource};
use mlp_mem::{Hierarchy, HierarchyConfig};
use mlp_workloads::WorkloadKind;

/// Distance thresholds (dynamic instructions) at which the CDF is
/// reported.
pub const THRESHOLDS: [u64; 12] = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000];

/// The inter-miss distance distribution of one workload.
#[derive(Clone, Debug)]
pub struct Series {
    /// Workload.
    pub kind: WorkloadKind,
    /// Mean inter-miss distance in instructions.
    pub mean_distance: f64,
    /// Observed CDF at each [`THRESHOLDS`] entry.
    pub observed: Vec<f64>,
    /// Uniform-distribution CDF at each [`THRESHOLDS`] entry.
    pub uniform: Vec<f64>,
}

/// Figure 2 results.
#[derive(Clone, Debug)]
pub struct Figure2 {
    /// One series per workload.
    pub series: Vec<Series>,
}

/// Runs Figure 2.
pub fn run(scale: RunScale) -> Figure2 {
    let series = sweep(WorkloadKind::ALL.to_vec(), |&kind| {
        let total = scale.warmup + scale.measure;
        let mut wl = cursor(kind, total);
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        let mut distances: Vec<u64> = Vec::new();
        let mut last_miss_at: Option<u64> = None;
        for n in 0..total {
            let Some(inst) = wl.next_inst() else { break };
            let mut missed = mem.ifetch(inst.pc).is_off_chip();
            if let Some(m) = inst.mem {
                missed |= match inst.kind {
                    OpKind::Prefetch => mem.prefetch(m.addr).is_off_chip(),
                    OpKind::Store => {
                        mem.store(m.addr);
                        false // store misses are absorbed by the store buffer
                    }
                    _ => mem.load(m.addr).is_off_chip(),
                };
            }
            if missed {
                if n >= scale.warmup {
                    if let Some(prev) = last_miss_at {
                        distances.push(n - prev);
                    }
                }
                last_miss_at = Some(n);
            }
        }
        let mean = if distances.is_empty() {
            f64::INFINITY
        } else {
            distances.iter().sum::<u64>() as f64 / distances.len() as f64
        };
        let observed = THRESHOLDS
            .iter()
            .map(|&t| {
                distances.iter().filter(|&&d| d <= t).count() as f64 / distances.len().max(1) as f64
            })
            .collect();
        let p = 1.0 / mean;
        let uniform = THRESHOLDS
            .iter()
            .map(|&t| 1.0 - (1.0 - p).powi(t as i32))
            .collect();
        Series {
            kind,
            mean_distance: mean,
            observed,
            uniform,
        }
    });
    Figure2 { series }
}

impl Figure2 {
    /// Renders the paper-style series.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Distance (insts)".to_string(),
            "obs Database".into(),
            "uni Database".into(),
            "obs SPECjbb".into(),
            "uni SPECjbb".into(),
            "obs SPECweb".into(),
            "uni SPECweb".into(),
        ])
        .with_title("Figure 2: Clustering of Misses (cumulative P[next miss <= N])");
        for (i, &d) in THRESHOLDS.iter().enumerate() {
            let mut row = vec![d.to_string()];
            for s in &self.series {
                row.push(f3(s.observed[i]));
                row.push(f3(s.uniform[i]));
            }
            t.row(row);
        }
        let means: Vec<String> = self
            .series
            .iter()
            .map(|s| {
                format!(
                    "{}: mean inter-miss {:.0} insts",
                    s.kind.name(),
                    s.mean_distance
                )
            })
            .collect();
        format!("{}\n{}\n", t.render(), means.join("; "))
    }

    /// The series for a workload.
    pub fn series_for(&self, kind: WorkloadKind) -> Option<&Series> {
        self.series.iter().find(|s| s.kind == kind)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "figure2",
            "Figure 2: Clustering of Misses (cumulative P[next miss <= N])",
            "§2.1 (Figure 2)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("distance", THRESHOLDS.to_vec());
        for s in &self.series {
            for (i, &d) in THRESHOLDS.iter().enumerate() {
                rep.row(
                    JsonRow::new()
                        .field("benchmark", s.kind.name())
                        .field("distance", d)
                        .field("observed_cdf", s.observed[i])
                        .field("uniform_cdf", s.uniform[i])
                        .field("mean_inter_miss", s.mean_distance),
                );
            }
        }
        rep
    }
}

/// Registry entry for Figure 2.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "figure2"
    }
    fn module(&self) -> &'static str {
        "figure2"
    }
    fn description(&self) -> &'static str {
        "Clustering of off-chip accesses: observed vs uniform inter-miss CDF"
    }
    fn section(&self) -> &'static str {
        "§2.1 (Figure 2)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let f = run(scale);
        ExperimentRun {
            text: f.render(),
            report: f.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shape() {
        let mk = |kind| Series {
            kind,
            mean_distance: 100.0,
            observed: vec![0.5; THRESHOLDS.len()],
            uniform: vec![0.1; THRESHOLDS.len()],
        };
        let f = Figure2 {
            series: vec![
                mk(WorkloadKind::Database),
                mk(WorkloadKind::SpecJbb2000),
                mk(WorkloadKind::SpecWeb99),
            ],
        };
        let s = f.render();
        assert!(s.contains("Clustering"));
        assert!(s.contains("mean inter-miss 100"));
        assert!(f.series_for(WorkloadKind::Database).is_some());
    }
}
