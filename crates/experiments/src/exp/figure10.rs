//! Figure 10: limit study — perfect instruction fetch, value prediction
//! and branch prediction, on top of runahead (upper graph) and of a
//! conventional 64D/ROB256 processor (lower graph).

use super::figure8::RAE_MAX_DIST;
use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_mlpsim, sweep_grid};
use crate::table::{f3, pct, TextTable};
use crate::RunScale;
use mlp_workloads::WorkloadKind;
use mlpsim::{BranchMode, IssueConfig, MlpsimConfig, ValueMode, WindowModel};

/// The limit-study arms, in presentation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arm {
    /// The baseline itself.
    Base,
    /// Perfect instruction prefetching.
    PerfI,
    /// Perfect value prediction of missing loads.
    PerfVp,
    /// Perfect branch prediction.
    PerfBp,
    /// Perfect value *and* branch prediction.
    PerfVpBp,
}

impl Arm {
    /// All arms in order.
    pub const ALL: [Arm; 5] = [
        Arm::Base,
        Arm::PerfI,
        Arm::PerfVp,
        Arm::PerfBp,
        Arm::PerfVpBp,
    ];

    /// Label used in the rendered series.
    pub fn label(self) -> &'static str {
        match self {
            Arm::Base => "base",
            Arm::PerfI => "perfI",
            Arm::PerfVp => "perfVP",
            Arm::PerfBp => "perfBP",
            Arm::PerfVpBp => "perfVP.perfBP",
        }
    }

    fn apply(self, mut cfg: MlpsimConfig) -> MlpsimConfig {
        match self {
            Arm::Base => {}
            Arm::PerfI => cfg.perfect_ifetch = true,
            Arm::PerfVp => cfg.value = ValueMode::Perfect,
            Arm::PerfBp => cfg.branch = BranchMode::Perfect,
            Arm::PerfVpBp => {
                cfg.value = ValueMode::Perfect;
                cfg.branch = BranchMode::Perfect;
            }
        }
        cfg
    }
}

/// One workload's limit-study series for one baseline.
#[derive(Clone, Debug)]
pub struct Series {
    /// Workload.
    pub kind: WorkloadKind,
    /// MLP per [`Arm::ALL`] entry.
    pub mlp: [f64; 5],
}

impl Series {
    /// Percent gain of each arm over the base.
    pub fn gains(&self) -> [f64; 5] {
        let mut g = [0.0; 5];
        for (gk, &m) in g.iter_mut().zip(&self.mlp) {
            *gk = 100.0 * (m / self.mlp[0] - 1.0);
        }
        g
    }
}

/// Figure 10 results: the RAE-based upper graph and the conventional
/// lower graph.
#[derive(Clone, Debug)]
pub struct Figure10 {
    /// Upper graph: baseline = runahead execution.
    pub rae: Vec<Series>,
    /// Lower graph: baseline = 64-entry IW, 256-entry ROB, config D.
    pub conventional: Vec<Series>,
}

/// The RAE baseline configuration.
pub fn rae_base() -> MlpsimConfig {
    MlpsimConfig::builder()
        .issue(IssueConfig::D)
        .window(WindowModel::Runahead {
            max_dist: RAE_MAX_DIST,
        })
        .build()
}

/// The conventional baseline configuration.
pub fn conventional_base() -> MlpsimConfig {
    MlpsimConfig::builder()
        .issue(IssueConfig::D)
        .window(WindowModel::OutOfOrder {
            iw: 64,
            rob: 256,
            fetch_buffer: 32,
        })
        .build()
}

/// Runs the limit study.
pub fn run(scale: RunScale) -> Figure10 {
    // Both graphs in one sweep: (baseline index, workload, arm).
    let bases = [rae_base(), conventional_base()];
    let mut jobs: Vec<(usize, WorkloadKind, Arm)> = Vec::new();
    for bi in 0..bases.len() {
        for kind in WorkloadKind::ALL {
            jobs.extend(Arm::ALL.iter().map(|&arm| (bi, kind, arm)));
        }
    }
    let mlps = sweep_grid(jobs, |&(bi, kind, arm)| {
        run_mlpsim(kind, arm.apply(bases[bi].clone()), scale).mlp()
    });
    let collect_series = |bi: usize| -> Vec<Series> {
        WorkloadKind::ALL
            .into_iter()
            .map(|kind| Series {
                kind,
                mlp: Arm::ALL.map(|arm| mlps[&(bi, kind, arm)]),
            })
            .collect()
    };
    Figure10 {
        rae: collect_series(0),
        conventional: collect_series(1),
    }
}

impl Figure10 {
    /// Renders both graphs.
    pub fn render(&self) -> String {
        let render_one = |title: &str, series: &[Series]| -> String {
            let mut t = TextTable::new(vec![
                "Benchmark",
                "base",
                "perfI",
                "perfVP",
                "perfBP",
                "perfVP.perfBP",
                "max gain",
            ])
            .with_title(title.to_string());
            for s in series {
                let gains = s.gains();
                let max_gain = gains.iter().copied().fold(0.0, f64::max);
                t.row(vec![
                    s.kind.name().into(),
                    f3(s.mlp[0]),
                    f3(s.mlp[1]),
                    f3(s.mlp[2]),
                    f3(s.mlp[3]),
                    f3(s.mlp[4]),
                    pct(max_gain),
                ]);
            }
            t.render()
        };
        format!(
            "{}\n{}",
            render_one(
                "Figure 10 (upper): limit study on runahead execution (MLP)",
                &self.rae
            ),
            render_one(
                "Figure 10 (lower): limit study on 64D/ROB256 without RAE (MLP)",
                &self.conventional
            )
        )
    }

    /// The RAE-based series for a workload.
    pub fn rae_series(&self, kind: WorkloadKind) -> Option<&Series> {
        self.rae.iter().find(|s| s.kind == kind)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "figure10",
            "Figure 10: perfect-I/VP/BP limit study",
            "§5.7 (Figure 10)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("baseline", vec!["rae", "conventional"]);
        rep.axis("arm", Arm::ALL.map(|a| a.label()).to_vec());
        for (baseline, series) in [("rae", &self.rae), ("conventional", &self.conventional)] {
            for s in series {
                for (ai, arm) in Arm::ALL.into_iter().enumerate() {
                    rep.row(
                        JsonRow::new()
                            .field("baseline", baseline)
                            .field("benchmark", s.kind.name())
                            .field("arm", arm.label())
                            .field("mlp", s.mlp[ai])
                            .field("gain_pct", s.gains()[ai]),
                    );
                }
            }
        }
        rep
    }
}

/// Registry entry for Figure 10.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "figure10"
    }
    fn module(&self) -> &'static str {
        "figure10"
    }
    fn description(&self) -> &'static str {
        "Limit study: perfect ifetch/value/branch prediction over RAE and conventional"
    }
    fn section(&self) -> &'static str {
        "§5.7 (Figure 10)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let f = run(scale);
        ExperimentRun {
            text: f.render(),
            report: f.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_apply() {
        let base = rae_base();
        assert!(Arm::PerfI.apply(base.clone()).perfect_ifetch);
        assert_eq!(Arm::PerfVp.apply(base.clone()).value, ValueMode::Perfect);
        assert_eq!(Arm::PerfBp.apply(base.clone()).branch, BranchMode::Perfect);
        let both = Arm::PerfVpBp.apply(base);
        assert_eq!(both.value, ValueMode::Perfect);
        assert_eq!(both.branch, BranchMode::Perfect);
    }

    #[test]
    fn gains_and_render() {
        let s = Series {
            kind: WorkloadKind::SpecJbb2000,
            mlp: [2.0, 2.0, 3.1, 2.9, 6.3],
        };
        let g = s.gains();
        assert!((g[4] - 215.0).abs() < 1.0);
        let f = Figure10 {
            rae: vec![s.clone()],
            conventional: vec![s],
        };
        assert!(f.render().contains("perfVP.perfBP"));
        assert!(f.rae_series(WorkloadKind::SpecJbb2000).is_some());
    }
}
