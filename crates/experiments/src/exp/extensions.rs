//! Extension studies beyond the paper's evaluation:
//!
//! * **Store MLP** — the paper's stated future work: how a finite store
//!   buffer limits both store-fill overlap and load MLP.
//! * **Ablations** of design parameters the paper fixes: fetch-buffer
//!   depth, value-predictor organisation (last-value vs stride vs
//!   hybrid), and runahead distance.
//! * **fM vs MLP** — the related-work comparison (§6): Sorin et al.'s
//!   `fM` counts *all* outstanding transfers, the paper's MLP only
//!   *useful* ones; measuring both shows how much store traffic inflates
//!   the naive metric.

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{cursor, cursor_seeded, run_cyclesim, run_mlpsim, sweep, sweep_grid, SEED};
use crate::table::{f3, TextTable};
use crate::RunScale;
use mlp_cyclesim::CycleSimConfig;
use mlp_mem::HierarchyConfig;
use mlp_workloads::WorkloadKind;
use mlpsim::{IssueConfig, MlpsimConfig, ValueMode, WindowModel};

/// Store-buffer capacities swept (`None` = the paper's infinite buffer).
pub const STORE_BUFFERS: [Option<usize>; 5] = [Some(1), Some(2), Some(4), Some(8), None];

/// One workload's store-buffer sweep.
#[derive(Clone, Debug)]
pub struct StoreBufferSeries {
    /// Workload.
    pub kind: WorkloadKind,
    /// `(mlp, store_mlp)` per [`STORE_BUFFERS`] entry.
    pub points: Vec<(f64, f64)>,
}

/// The store-MLP extension study.
#[derive(Clone, Debug)]
pub struct StoreBufferStudy {
    /// One series per workload.
    pub series: Vec<StoreBufferSeries>,
}

/// Runs the store-buffer sweep on the paper's default processor.
pub fn run_store_buffer(scale: RunScale) -> StoreBufferStudy {
    let mut jobs: Vec<(WorkloadKind, Option<usize>)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.extend(STORE_BUFFERS.iter().map(|&sb| (kind, sb)));
    }
    let points = sweep_grid(jobs, |&(kind, sb)| {
        let cfg = MlpsimConfig::builder().store_buffer(sb).build();
        let r = run_mlpsim(kind, cfg, scale);
        (r.mlp(), r.store_mlp())
    });
    let series = WorkloadKind::ALL
        .into_iter()
        .map(|kind| StoreBufferSeries {
            kind,
            points: STORE_BUFFERS
                .iter()
                .map(|&sb| points[&(kind, sb)])
                .collect(),
        })
        .collect();
    StoreBufferStudy { series }
}

impl StoreBufferStudy {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Store buffer",
            "DB MLP",
            "DB stMLP",
            "JBB MLP",
            "JBB stMLP",
            "Web MLP",
            "Web stMLP",
        ])
        .with_title("Extension: store MLP under a finite store buffer (paper future work)");
        for (i, sb) in STORE_BUFFERS.iter().enumerate() {
            let mut row = vec![sb.map_or("inf".to_string(), |n| n.to_string())];
            for s in &self.series {
                row.push(f3(s.points[i].0));
                row.push(f3(s.points[i].1));
            }
            t.row(row);
        }
        t.render()
    }

    /// The series for a workload.
    pub fn series_for(&self, kind: WorkloadKind) -> Option<&StoreBufferSeries> {
        self.series.iter().find(|s| s.kind == kind)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "store-mlp",
            "Extension: store MLP under a finite store buffer",
            "§7 (future work: store MLP)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis(
            "store_buffer",
            STORE_BUFFERS
                .iter()
                .map(|sb| sb.map(|n| n as u64))
                .collect::<Vec<_>>(),
        );
        for s in &self.series {
            for (i, &sb) in STORE_BUFFERS.iter().enumerate() {
                rep.row(
                    JsonRow::new()
                        .field("benchmark", s.kind.name())
                        .field("store_buffer", sb.map(|n| n as u64))
                        .field("mlp", s.points[i].0)
                        .field("store_mlp", s.points[i].1),
                );
            }
        }
        rep
    }
}

/// Registry entry for the store-MLP study.
pub struct StoreMlpExp;

impl Experiment for StoreMlpExp {
    fn name(&self) -> &'static str {
        "store-mlp"
    }
    fn module(&self) -> &'static str {
        "extensions"
    }
    fn description(&self) -> &'static str {
        "Store MLP under a finite store buffer (paper future work)"
    }
    fn section(&self) -> &'static str {
        "§7 (future work: store MLP)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let s = run_store_buffer(scale);
        ExperimentRun {
            text: s.render(),
            report: s.report(scale),
        }
    }
}

/// Fetch-buffer depths swept by the ablation.
pub const FETCH_BUFFERS: [usize; 4] = [1, 8, 32, 128];
/// Runahead distances swept by the ablation.
pub const RAE_DISTS: [usize; 4] = [256, 1024, 2048, 8192];

/// The design-parameter ablations.
#[derive(Clone, Debug)]
pub struct Ablations {
    /// `(kind, fetch buffer, mlp)` on the default 64C core.
    pub fetch_buffer: Vec<(WorkloadKind, usize, f64)>,
    /// `(kind, predictor label, mlp gain % over no-VP)` on runahead.
    pub value_predictors: Vec<(WorkloadKind, &'static str, f64)>,
    /// `(kind, max distance, mlp)` for runahead.
    pub rae_distance: Vec<(WorkloadKind, usize, f64)>,
}

/// Runs all three ablations.
pub fn run_ablations(scale: RunScale) -> Ablations {
    let mut fb_jobs: Vec<(WorkloadKind, usize)> = Vec::new();
    for kind in WorkloadKind::ALL {
        fb_jobs.extend(FETCH_BUFFERS.iter().map(|&fb| (kind, fb)));
    }
    let fetch_buffer = sweep(fb_jobs, |&(kind, fb)| {
        let cfg = MlpsimConfig::builder()
            .window(WindowModel::OutOfOrder {
                iw: 64,
                rob: 64,
                fetch_buffer: fb,
            })
            .build();
        (kind, fb, run_mlpsim(kind, cfg, scale).mlp())
    });

    let rae = MlpsimConfig::builder()
        .issue(IssueConfig::D)
        .window(WindowModel::Runahead { max_dist: 2048 })
        .build();
    let vp_modes = [
        ("last-value 16K", ValueMode::LastValue(16 * 1024)),
        ("stride 16K", ValueMode::Stride(16 * 1024)),
        ("hybrid 16K", ValueMode::Hybrid(16 * 1024)),
        ("last-value 1K", ValueMode::LastValue(1024)),
    ];
    // Index 0 is the no-VP base the gains are measured against.
    let mut vp_jobs: Vec<(WorkloadKind, usize)> = Vec::new();
    for kind in WorkloadKind::ALL {
        vp_jobs.extend((0..=vp_modes.len()).map(|vi| (kind, vi)));
    }
    let vp_mlps = sweep_grid(vp_jobs, |&(kind, vi)| {
        let cfg = if vi == 0 {
            rae.clone()
        } else {
            MlpsimConfig {
                value: vp_modes[vi - 1].1,
                ..rae.clone()
            }
        };
        run_mlpsim(kind, cfg, scale).mlp()
    });
    let mut value_predictors = Vec::new();
    for kind in WorkloadKind::ALL {
        let base = vp_mlps[&(kind, 0)];
        for (vi, &(label, _)) in vp_modes.iter().enumerate() {
            let gain = 100.0 * (vp_mlps[&(kind, vi + 1)] / base - 1.0);
            value_predictors.push((kind, label, gain));
        }
    }

    let mut rd_jobs: Vec<(WorkloadKind, usize)> = Vec::new();
    for kind in WorkloadKind::ALL {
        rd_jobs.extend(RAE_DISTS.iter().map(|&dist| (kind, dist)));
    }
    let rae_distance = sweep(rd_jobs, |&(kind, dist)| {
        let cfg = MlpsimConfig::builder()
            .issue(IssueConfig::D)
            .window(WindowModel::Runahead { max_dist: dist })
            .build();
        (kind, dist, run_mlpsim(kind, cfg, scale).mlp())
    });

    Ablations {
        fetch_buffer,
        value_predictors,
        rae_distance,
    }
}

impl Ablations {
    /// Renders the three ablation tables.
    pub fn render(&self) -> String {
        let mut out = String::new();

        let mut t = TextTable::new(vec!["Benchmark", "Fetch buffer", "MLP"])
            .with_title("Ablation: fetch-buffer depth (I-miss overlap past a full window)");
        for &(kind, fb, mlp) in &self.fetch_buffer {
            t.row(vec![kind.name().into(), fb.to_string(), f3(mlp)]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = TextTable::new(vec!["Benchmark", "Predictor", "MLP gain"])
            .with_title("Ablation: value-predictor organisation on runahead");
        for &(kind, label, gain) in &self.value_predictors {
            t.row(vec![
                kind.name().into(),
                label.into(),
                format!("{gain:+.1}%"),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut t = TextTable::new(vec!["Benchmark", "Max distance", "MLP"])
            .with_title("Ablation: runahead distance");
        for &(kind, dist, mlp) in &self.rae_distance {
            t.row(vec![kind.name().into(), dist.to_string(), f3(mlp)]);
        }
        out.push_str(&t.render());
        out
    }

    /// The structured report. Rows carry an `ablation` discriminator so
    /// all three sweeps share one flat row list.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "ablations",
            "Ablations: fetch buffer, value predictor, runahead distance",
            "§5 (design-parameter ablations)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis(
            "ablation",
            vec!["fetch_buffer", "value_predictor", "rae_distance"],
        );
        for &(kind, fb, mlp) in &self.fetch_buffer {
            rep.row(
                JsonRow::new()
                    .field("ablation", "fetch_buffer")
                    .field("benchmark", kind.name())
                    .field("fetch_buffer", fb as u64)
                    .field("mlp", mlp),
            );
        }
        for &(kind, label, gain) in &self.value_predictors {
            rep.row(
                JsonRow::new()
                    .field("ablation", "value_predictor")
                    .field("benchmark", kind.name())
                    .field("predictor", label)
                    .field("mlp_gain_pct", gain),
            );
        }
        for &(kind, dist, mlp) in &self.rae_distance {
            rep.row(
                JsonRow::new()
                    .field("ablation", "rae_distance")
                    .field("benchmark", kind.name())
                    .field("max_dist", dist as u64)
                    .field("mlp", mlp),
            );
        }
        rep
    }
}

/// Registry entry for the ablation suite.
pub struct AblationsExp;

impl Experiment for AblationsExp {
    fn name(&self) -> &'static str {
        "ablations"
    }
    fn module(&self) -> &'static str {
        "extensions"
    }
    fn description(&self) -> &'static str {
        "Ablations of fetch-buffer depth, VP organisation and runahead distance"
    }
    fn section(&self) -> &'static str {
        "§5 (design-parameter ablations)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let a = run_ablations(scale);
        ExperimentRun {
            text: a.render(),
            report: a.report(scale),
        }
    }
}

/// The SMT study (the paper's first stated future work: "studying MLP
/// for multithreaded processors").
#[derive(Clone, Debug)]
pub struct SmtStudy {
    /// `(label, combined MLP, combined IPC, per-thread insts)` rows.
    pub rows: Vec<(String, f64, f64, Vec<u64>)>,
}

/// Co-runs workload pairs on a 2-way SMT core and compares chip-level
/// MLP and throughput against each workload running alone.
pub fn run_smt(scale: RunScale) -> SmtStudy {
    use mlp_cyclesim::smt::SmtSim;

    let insts = scale.cycle_measure / 2;
    let warm = scale.cycle_warmup;
    let total = warm + insts;
    // Solo runs first, then the co-run pairs, in presentation order.
    let pairs = [
        (WorkloadKind::Database, WorkloadKind::Database),
        (WorkloadKind::Database, WorkloadKind::SpecJbb2000),
        (WorkloadKind::Database, WorkloadKind::SpecWeb99),
        (WorkloadKind::SpecJbb2000, WorkloadKind::SpecWeb99),
    ];
    let mut jobs: Vec<(WorkloadKind, Option<WorkloadKind>)> =
        WorkloadKind::ALL.into_iter().map(|k| (k, None)).collect();
    jobs.extend(pairs.into_iter().map(|(a, b)| (a, Some(b))));
    let rows = sweep(jobs, |&(a, b)| {
        let mut sim = SmtSim::new(CycleSimConfig::default().with_mem_latency(1000));
        match b {
            None => {
                let mut wl = cursor(a, total);
                let r = sim.run(vec![&mut wl], warm, insts);
                (format!("{} alone", a.name()), r.mlp(), r.ipc(), vec![insts])
            }
            Some(b) => {
                let mut wa = cursor(a, total);
                let mut wb = cursor_seeded(b, SEED + 1, total);
                let r = sim.run(vec![&mut wa, &mut wb], warm, insts);
                (
                    format!("{} + {}", a.name(), b.name()),
                    r.mlp(),
                    r.ipc(),
                    r.insts.clone(),
                )
            }
        }
    });
    SmtStudy { rows }
}

impl SmtStudy {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["Threads", "Chip MLP", "IPC"]).with_title(
            "Extension: MLP on a 2-way SMT core (paper future work), 1000-cycle memory",
        );
        for (label, mlp, ipc, _) in &self.rows {
            t.row(vec![label.clone(), f3(*mlp), format!("{ipc:.3}")]);
        }
        t.render()
    }

    /// The row whose label starts with `prefix`.
    pub fn row(&self, prefix: &str) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|(l, ..)| l.starts_with(prefix))
            .map(|&(_, m, i, _)| (m, i))
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "smt",
            "Extension: MLP on a 2-way SMT core",
            "§7 (future work: SMT)",
            scale,
        );
        rep.axis("memory_latency", vec![1000u64]);
        for (label, mlp, ipc, insts) in &self.rows {
            rep.row(
                JsonRow::new()
                    .field("threads", label.clone())
                    .field("chip_mlp", *mlp)
                    .field("ipc", *ipc)
                    .field("per_thread_insts", insts.clone()),
            );
        }
        rep
    }
}

/// Registry entry for the SMT study.
pub struct SmtExp;

impl Experiment for SmtExp {
    fn name(&self) -> &'static str {
        "smt"
    }
    fn module(&self) -> &'static str {
        "extensions"
    }
    fn description(&self) -> &'static str {
        "Chip-level MLP and throughput for co-running workloads on 2-way SMT"
    }
    fn section(&self) -> &'static str {
        "§7 (future work: SMT)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let s = run_smt(scale);
        ExperimentRun {
            text: s.render(),
            report: s.report(scale),
        }
    }
}

/// One timing-study row: `(kind, conventional CPI, runahead CPI,
/// measured speedup %, MLPsim-predicted speedup %, conv MLP(t),
/// RAE MLP(t), RAE+VP measured speedup %)`.
pub type RaeTimingRow = (WorkloadKind, f64, f64, f64, f64, f64, f64, f64);

/// Runahead in the timing domain: measured speedup vs the CPI-equation
/// prediction from MLPsim's MLP.
#[derive(Clone, Debug)]
pub struct RaeTiming {
    /// One row per workload.
    pub rows: Vec<RaeTimingRow>,
}

/// Measures runahead end to end in the cycle model (something the
/// paper's own simulator could not do) and compares the observed speedup
/// with the paper's methodology: the CPI equation fed by MLPsim MLP.
pub fn run_rae_timing(scale: RunScale) -> RaeTiming {
    use mlp_cyclesim::runahead::RunaheadSim;
    use mlp_model::CpiModel;

    let latency = 1000u64;
    let rows = sweep(WorkloadKind::ALL.to_vec(), |&kind| {
        let base_cfg = CycleSimConfig::default().with_mem_latency(latency);
        let conv = run_cyclesim(kind, base_cfg.clone(), scale);
        let perf = run_cyclesim(kind, base_cfg.clone().perfect_l2(), scale);
        let total = scale.cycle_warmup + scale.cycle_measure;
        let mut wl = cursor(kind, total);
        let rae = RunaheadSim::new(base_cfg.clone(), 2048).run(
            &mut wl,
            scale.cycle_warmup,
            scale.cycle_measure,
        );
        let measured = 100.0 * (conv.cpi() / rae.cpi() - 1.0);
        let mut wl = cursor(kind, total);
        let rae_vp = RunaheadSim::new(base_cfg, 2048)
            .with_value_prediction(mlpsim::ValueMode::LastValue(16 * 1024))
            .run(&mut wl, scale.cycle_warmup, scale.cycle_measure);
        let measured_vp = 100.0 * (conv.cpi() / rae_vp.cpi() - 1.0);

        // The paper's route: MLPsim MLP + the CPI equation.
        let model = CpiModel::from_measured(
            conv.cpi(),
            perf.cpi(),
            conv.offchip.total() as f64 / conv.insts as f64,
            latency as f64,
            conv.mlp(),
        );
        let m_conv = run_mlpsim(kind, MlpsimConfig::default(), scale);
        let m_rae = run_mlpsim(
            kind,
            MlpsimConfig::builder()
                .issue(IssueConfig::D)
                .window(WindowModel::Runahead { max_dist: 2048 })
                .build(),
            scale,
        );
        let predicted = model.improvement_pct(m_conv.mlp(), m_rae.mlp());
        (
            kind,
            conv.cpi(),
            rae.cpi(),
            measured,
            predicted,
            conv.mlp(),
            rae.mlp(),
            measured_vp,
        )
    });
    RaeTiming { rows }
}

impl RaeTiming {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Benchmark",
            "conv CPI",
            "RAE CPI",
            "measured speedup",
            "MLPsim-predicted",
            "conv MLP(t)",
            "RAE MLP(t)",
            "RAE+VP speedup",
        ])
        .with_title(
            "Extension: runahead measured in the timing domain vs the epoch-model prediction",
        );
        for &(kind, c, r, m, p, cm, rm, mv) in &self.rows {
            t.row(vec![
                kind.name().into(),
                format!("{c:.2}"),
                format!("{r:.2}"),
                format!("{m:+.1}%"),
                format!("{p:+.1}%"),
                f3(cm),
                f3(rm),
                format!("{mv:+.1}%"),
            ]);
        }
        t.render()
    }

    /// The measured and predicted speedups for a workload.
    pub fn speedups(&self, kind: WorkloadKind) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|&&(k, ..)| k == kind)
            .map(|&(_, _, _, m, p, ..)| (m, p))
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "rae-timing",
            "Extension: runahead in the timing domain vs the epoch-model prediction",
            "§4 (validation, extended)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("memory_latency", vec![1000u64]);
        for &(kind, conv_cpi, rae_cpi, measured, predicted, conv_mlp, rae_mlp, measured_vp) in
            &self.rows
        {
            rep.row(
                JsonRow::new()
                    .field("benchmark", kind.name())
                    .field("conv_cpi", conv_cpi)
                    .field("rae_cpi", rae_cpi)
                    .field("measured_speedup_pct", measured)
                    .field("predicted_speedup_pct", predicted)
                    .field("conv_mlp_timing", conv_mlp)
                    .field("rae_mlp_timing", rae_mlp)
                    .field("rae_vp_speedup_pct", measured_vp),
            );
        }
        rep
    }
}

/// Registry entry for the runahead timing study.
pub struct RaeTimingExp;

impl Experiment for RaeTimingExp {
    fn name(&self) -> &'static str {
        "rae-timing"
    }
    fn module(&self) -> &'static str {
        "extensions"
    }
    fn description(&self) -> &'static str {
        "Measured runahead speedup in the cycle model vs the CPI-equation prediction"
    }
    fn section(&self) -> &'static str {
        "§4 (validation, extended)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let r = run_rae_timing(scale);
        ExperimentRun {
            text: r.render(),
            report: r.report(scale),
        }
    }
}

/// The fM-vs-MLP comparison (paper §6 related work).
#[derive(Clone, Debug)]
pub struct FmStudy {
    /// `(kind, latency, useful MLP, fM)` rows.
    pub rows: Vec<(WorkloadKind, u64, f64, f64)>,
}

/// Measures useful-access MLP and all-transfer fM side by side on the
/// cycle-accurate model.
pub fn run_fm(scale: RunScale) -> FmStudy {
    let mut jobs: Vec<(WorkloadKind, u64)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.extend([200u64, 1000].into_iter().map(|latency| (kind, latency)));
    }
    let rows = sweep(jobs, |&(kind, latency)| {
        let r = run_cyclesim(
            kind,
            CycleSimConfig::default().with_mem_latency(latency),
            scale,
        );
        (kind, latency, r.mlp(), r.fm())
    });
    FmStudy { rows }
}

impl FmStudy {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["Benchmark", "Latency", "MLP (useful)", "fM (all)"])
            .with_title("Extension: useful-access MLP vs Sorin et al.'s fM (all transfers, §6)");
        for &(kind, lat, mlp, fm) in &self.rows {
            t.row(vec![kind.name().into(), lat.to_string(), f3(mlp), f3(fm)]);
        }
        t.render()
    }

    /// The row for `(kind, latency)`.
    pub fn row(&self, kind: WorkloadKind, latency: u64) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|&&(k, l, _, _)| k == kind && l == latency)
            .map(|&(_, _, m, f)| (m, f))
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "fm",
            "Extension: useful-access MLP vs Sorin et al.'s fM",
            "§6 (related work)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("memory_latency", vec![200u64, 1000]);
        for &(kind, latency, mlp, fm) in &self.rows {
            rep.row(
                JsonRow::new()
                    .field("benchmark", kind.name())
                    .field("memory_latency", latency)
                    .field("mlp_useful", mlp)
                    .field("fm_all_transfers", fm),
            );
        }
        rep
    }
}

/// Registry entry for the fM comparison.
pub struct FmExp;

impl Experiment for FmExp {
    fn name(&self) -> &'static str {
        "fm"
    }
    fn module(&self) -> &'static str {
        "extensions"
    }
    fn description(&self) -> &'static str {
        "Useful-access MLP vs the all-transfer fM metric of Sorin et al."
    }
    fn section(&self) -> &'static str {
        "§6 (related work)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let f = run_fm(scale);
        ExperimentRun {
            text: f.render(),
            report: f.report(scale),
        }
    }
}

/// The off-chip-L3 study (§2.1's future configuration).
#[derive(Clone, Debug)]
pub struct L3Study {
    /// `(kind, label, cpi, mlp, miss rate per 100)` rows at 1000-cycle
    /// memory latency.
    pub rows: Vec<(WorkloadKind, &'static str, f64, f64, f64)>,
}

/// Compares the default no-L3 hierarchy against a 16MB off-chip L3
/// (80-cycle hit) at 1000-cycle memory latency, on the cycle model.
pub fn run_l3(scale: RunScale) -> L3Study {
    let hierarchies: [(&'static str, HierarchyConfig); 2] = [
        ("no L3 (paper default)", HierarchyConfig::default()),
        (
            "16MB off-chip L3",
            HierarchyConfig::default().with_l3_bytes(16 * 1024 * 1024),
        ),
    ];
    let mut jobs: Vec<(WorkloadKind, usize)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.extend((0..hierarchies.len()).map(|hi| (kind, hi)));
    }
    let rows = sweep(jobs, |&(kind, hi)| {
        let (label, hierarchy) = hierarchies[hi];
        let cfg = CycleSimConfig {
            hierarchy,
            ..CycleSimConfig::default().with_mem_latency(1000)
        };
        let r = run_cyclesim(kind, cfg, scale);
        (kind, label, r.cpi(), r.mlp(), r.miss_rate_per_100())
    });
    L3Study { rows }
}

impl L3Study {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["Benchmark", "Hierarchy", "CPI", "MLP", "off-chip/100"])
            .with_title("Extension: an off-chip L3 (§2.1 future configuration), 1000-cycle memory");
        for &(kind, label, cpi, mlp, mr) in &self.rows {
            t.row(vec![
                kind.name().into(),
                label.into(),
                format!("{cpi:.2}"),
                f3(mlp),
                format!("{mr:.2}"),
            ]);
        }
        t.render()
    }

    /// CPI for `(kind, label)`.
    pub fn cpi(&self, kind: WorkloadKind, label: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|&&(k, l, ..)| k == kind && l == label)
            .map(|&(_, _, c, ..)| c)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "l3",
            "Extension: an off-chip L3 at 1000-cycle memory latency",
            "§2.1 (future configuration)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis(
            "hierarchy",
            vec!["no L3 (paper default)", "16MB off-chip L3"],
        );
        for &(kind, label, cpi, mlp, mr) in &self.rows {
            rep.row(
                JsonRow::new()
                    .field("benchmark", kind.name())
                    .field("hierarchy", label)
                    .field("cpi", cpi)
                    .field("mlp", mlp)
                    .field("miss_rate_per_100", mr),
            );
        }
        rep
    }
}

/// Registry entry for the off-chip-L3 study.
pub struct L3Exp;

impl Experiment for L3Exp {
    fn name(&self) -> &'static str {
        "l3"
    }
    fn module(&self) -> &'static str {
        "extensions"
    }
    fn description(&self) -> &'static str {
        "A 16MB off-chip L3 vs the paper's no-L3 hierarchy on the cycle model"
    }
    fn section(&self) -> &'static str {
        "§2.1 (future configuration)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let l = run_l3(scale);
        ExperimentRun {
            text: l.render(),
            report: l.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_buffer_render_shape() {
        let mk = |kind| StoreBufferSeries {
            kind,
            points: vec![(1.2, 1.1); STORE_BUFFERS.len()],
        };
        let s = StoreBufferStudy {
            series: vec![
                mk(WorkloadKind::Database),
                mk(WorkloadKind::SpecJbb2000),
                mk(WorkloadKind::SpecWeb99),
            ],
        };
        let r = s.render();
        assert!(r.contains("inf"));
        assert!(s.series_for(WorkloadKind::Database).is_some());
    }

    #[test]
    fn rae_timing_render_and_lookup() {
        let r = RaeTiming {
            rows: vec![(
                WorkloadKind::Database,
                7.3,
                5.0,
                46.0,
                40.0,
                1.38,
                2.1,
                55.0,
            )],
        };
        assert!(r.render().contains("timing domain"));
        assert_eq!(r.speedups(WorkloadKind::Database), Some((46.0, 40.0)));
        assert_eq!(r.speedups(WorkloadKind::SpecWeb99), None);
    }

    #[test]
    fn smt_render_and_lookup() {
        let s = SmtStudy {
            rows: vec![("Database alone".into(), 1.38, 0.15, vec![1000])],
        };
        assert!(s.render().contains("SMT"));
        assert_eq!(s.row("Database alone"), Some((1.38, 0.15)));
        assert_eq!(s.row("nope"), None);
    }

    #[test]
    fn l3_render_and_lookup() {
        let s = L3Study {
            rows: vec![(
                WorkloadKind::Database,
                "no L3 (paper default)",
                7.3,
                1.38,
                0.86,
            )],
        };
        assert!(s.render().contains("off-chip L3"));
        assert_eq!(
            s.cpi(WorkloadKind::Database, "no L3 (paper default)"),
            Some(7.3)
        );
        assert_eq!(s.cpi(WorkloadKind::Database, "16MB off-chip L3"), None);
    }

    #[test]
    fn fm_render_and_lookup() {
        let f = FmStudy {
            rows: vec![(WorkloadKind::Database, 1000, 1.38, 1.55)],
        };
        assert!(f.render().contains("fM"));
        assert_eq!(f.row(WorkloadKind::Database, 1000), Some((1.38, 1.55)));
        assert_eq!(f.row(WorkloadKind::Database, 200), None);
    }

    #[test]
    fn ablations_render_shape() {
        let a = Ablations {
            fetch_buffer: vec![(WorkloadKind::Database, 32, 1.4)],
            value_predictors: vec![(WorkloadKind::Database, "hybrid 16K", 5.0)],
            rae_distance: vec![(WorkloadKind::Database, 2048, 2.2)],
        };
        let r = a.render();
        assert!(r.contains("fetch-buffer"));
        assert!(r.contains("+5.0%"));
        assert!(r.contains("2048"));
    }
}
