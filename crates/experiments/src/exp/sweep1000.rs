//! `sweep1000`: surrogate-driven exploration of a 3888-point design grid.
//!
//! The paper's conclusions live in sweep space — MLP and CPI as
//! functions of window size, MSHR count, latency and cache size — but a
//! naive sweep prices every point with a full simulation. This
//! experiment explores the full {workload} × {window} × {MSHRs} ×
//! {latency} × {L2} grid (3 × 6 × 9 × 6 × 4 = 3888 points) with the
//! `mlp-surrogate` active-sampling loop: simulate a small seed design,
//! fit the physics-informed surrogate, then simulate only the points the
//! ensemble is least sure about until cross-validation meets tolerance.
//!
//! Ground truth per point comes from the epoch model plus the §2.2 CPI
//! equation extended with finite MSHRs: an epoch with `s` useful
//! off-chip accesses and `m` MSHRs serializes into `ceil(s/m)` memory
//! rounds, so
//!
//! ```text
//! CPI(point) = CPI_onchip(workload)
//!            + latency · Σ_s ceil(s/m)·hist[s] / instructions
//! ```
//!
//! with the epoch-size histogram and instruction count measured by a
//! real MLPsim run of that point's `(workload, window, L2)` cell. With
//! `m = ∞` this reduces exactly to the paper's
//! `CPI_onchip + MissRate·latency/MLP`. Only the engine-distinct cells
//! are ever simulated (MSHRs and latency are analytic given the
//! histogram), and the active loop touches a fraction of the 3888 points
//! — the recorded `speedup_x` is grid points per simulated cell.

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_mlpsim, sweep_grid};
use crate::table::{f2, TextTable};
use crate::RunScale;
use mlp_mem::HierarchyConfig;
use mlp_surrogate::active::{explore, ExploreConfig, Explored};
use mlp_surrogate::{default_priors, ConfigPoint, WORKLOAD_NAMES};
use mlp_workloads::WorkloadKind;
use mlpsim::MlpsimConfig;
use std::collections::BTreeMap;

/// Swept coupled window/ROB sizes.
pub const WINDOWS: [u32; 6] = [16, 32, 64, 128, 256, 512];
/// Swept MSHR counts (outstanding off-chip accesses).
pub const MSHRS: [u32; 9] = [1, 2, 3, 4, 6, 8, 16, 24, 32];
/// Swept off-chip latencies (cycles).
pub const LATENCIES: [u32; 6] = [150, 200, 300, 500, 750, 1000];
/// Swept L2 capacities (KB).
pub const L2_KB: [u32; 4] = [512, 1024, 2048, 4096];

/// Pinned on-chip CPI per workload (index-aligned with
/// [`WORKLOAD_NAMES`]): the Table 1 quick-scale calibration,
/// `CPI_perf·(1−Overlap_CM)`. Pinned rather than re-measured so the
/// truth function stays identical across scales and the golden snapshot
/// pins one number.
pub const ONCHIP_CPI: [f64; 3] = [0.955935, 1.2251975, 1.1923925];

/// The full 3888-point grid, workload-major then window, L2, MSHRs,
/// latency — a fixed, documented order so grid indices are stable.
pub fn grid() -> Vec<ConfigPoint> {
    let mut g = Vec::with_capacity(3 * WINDOWS.len() * L2_KB.len() * MSHRS.len() * LATENCIES.len());
    for workload in 0..WORKLOAD_NAMES.len() {
        for &window in &WINDOWS {
            for &l2_kb in &L2_KB {
                for &mshrs in &MSHRS {
                    for &latency in &LATENCIES {
                        g.push(ConfigPoint {
                            workload,
                            window,
                            mshrs,
                            latency,
                            l2_kb,
                        });
                    }
                }
            }
        }
    }
    g
}

/// An engine-distinct cell: the simulator only sees `(workload, window,
/// L2)` — MSHRs and latency enter analytically through [`truth_cpi`].
pub type Cell = (usize, u32, u32);

/// The cell a point prices itself from.
pub fn cell_of(p: &ConfigPoint) -> Cell {
    (p.workload, p.window, p.l2_kb)
}

/// Runs the epoch model for one cell.
pub fn run_cell(cell: Cell, scale: RunScale) -> mlpsim::Report {
    let (workload, window, l2_kb) = cell;
    run_mlpsim(
        WorkloadKind::ALL[workload],
        MlpsimConfig::builder()
            .coupled_window(window as usize)
            .hierarchy(HierarchyConfig::default().with_l2_bytes(l2_kb as u64 * 1024))
            .build(),
        scale,
    )
}

/// Ground-truth CPI for a point given its cell's measured report: the
/// §2.2 equation with finite-MSHR serialization (see the module docs).
pub fn truth_cpi(report: &mlpsim::Report, workload: usize, mshrs: u32, latency: u32) -> f64 {
    let m = mshrs.max(1) as u64;
    let rounds: u64 = report
        .epoch_size_histogram
        .iter()
        .enumerate()
        .skip(1)
        .map(|(s, &n)| n * (s as u64).div_ceil(m))
        .sum();
    ONCHIP_CPI[workload] + latency as f64 * rounds as f64 / report.insts.max(1) as f64
}

/// Simulates one grid point directly (cell run + truth equation) — the
/// reference the differential suite and the serve fallback tier both
/// price against.
pub fn simulate_point(p: &ConfigPoint, scale: RunScale) -> f64 {
    truth_cpi(&run_cell(cell_of(p), scale), p.workload, p.mshrs, p.latency)
}

/// The `(MSHRs, latency)` stencil every freshly simulated cell is priced
/// at for free: the engine run already fixes the cell's epoch-size
/// histogram, so these labels cost nothing and pin the piecewise
/// serialization curve (`ceil(s/m)` for small `m`) that isolated picks
/// under-constrain.
pub const STENCIL_MSHRS: [u32; 6] = [1, 2, 3, 4, 8, 32];
/// Latency legs of the free stencil (the truth is linear in latency, so
/// three are plenty).
pub const STENCIL_LATENCIES: [u32; 3] = [150, 500, 1000];

/// The active-sampling configuration `sweep1000` runs with: targets
/// tighter than the published 5%/15% contract so the contract holds with
/// margin. The budget is a cap on *labeled points*, most of which are
/// free stencil mates of the handful of engine cells actually run.
pub fn explore_config() -> ExploreConfig {
    ExploreConfig {
        batch: 36,
        budget: 1600,
        target_median_pct: 2.5,
        target_p99_pct: 10.0,
        cv_folds: 5,
        // Stronger than the crate default: leave-cells-out CV rewards a
        // smoother fit once the free stencil labels pile up.
        lambda: 1e-3,
    }
}

/// Seed design: per workload, a spread of `(window, L2)` cells crossed
/// with extreme `(MSHRs, latency)` corners, so round 0 already spans
/// every axis.
fn seed_indices(grid: &[ConfigPoint]) -> Vec<usize> {
    const CELLS: [(u32, u32); 4] = [(16, 512), (64, 1024), (256, 4096), (512, 2048)];
    const CORNERS: [(u32, u32); 3] = [(1, 1000), (4, 300), (32, 150)];
    grid.iter()
        .enumerate()
        .filter(|(_, p)| {
            CELLS.contains(&(p.window, p.l2_kb)) && CORNERS.contains(&(p.mshrs, p.latency))
        })
        .map(|(i, _)| i)
        .collect()
}

/// `sweep1000` results.
#[derive(Clone, Debug)]
pub struct Sweep1000 {
    /// The full grid ([`grid`]'s order).
    pub grid: Vec<ConfigPoint>,
    /// The active-sampling outcome (labeled points, CV verdict, fitted
    /// surrogate).
    pub explored: Explored,
    /// Engine-distinct cells actually simulated.
    pub cells: usize,
}

/// Runs the experiment: explore the grid, simulating cells on demand
/// (each cell at most once, batches fanned across cores).
pub fn run(scale: RunScale) -> Sweep1000 {
    let g = grid();
    let seeds = seed_indices(&g);
    let index_of: BTreeMap<(usize, u32, u32, u32, u32), usize> = g
        .iter()
        .enumerate()
        .map(|(i, p)| ((p.workload, p.window, p.l2_kb, p.mshrs, p.latency), i))
        .collect();
    let mut cache: BTreeMap<Cell, mlpsim::Report> = BTreeMap::new();
    let mut simulate = |indices: &[usize]| -> Vec<(usize, f64)> {
        let mut missing: Vec<Cell> = indices
            .iter()
            .map(|&i| cell_of(&g[i]))
            .filter(|c| !cache.contains_key(c))
            .collect();
        missing.sort_unstable();
        missing.dedup();
        let fresh = missing.clone();
        if !missing.is_empty() {
            let reports = sweep_grid(missing.clone(), |&c| run_cell(c, scale));
            for c in missing {
                cache.insert(c, reports[&c].clone());
            }
        }
        let mut out: Vec<(usize, f64)> = indices
            .iter()
            .map(|&i| {
                let p = &g[i];
                (
                    i,
                    truth_cpi(&cache[&cell_of(p)], p.workload, p.mshrs, p.latency),
                )
            })
            .collect();
        // Each fresh cell run prices every (MSHRs, latency) combination
        // analytically; hand the stencil back as free labels (fresh cells
        // are sorted, so the extras' order is deterministic).
        for (workload, window, l2_kb) in fresh {
            let report = &cache[&(workload, window, l2_kb)];
            for &mshrs in &STENCIL_MSHRS {
                for &latency in &STENCIL_LATENCIES {
                    let gi = index_of[&(workload, window, l2_kb, mshrs, latency)];
                    out.push((gi, truth_cpi(report, workload, mshrs, latency)));
                }
            }
        }
        out
    };
    let explored = explore(
        &g,
        &default_priors(),
        &seeds,
        &explore_config(),
        &mut simulate,
    );
    let cells = cache.len();
    Sweep1000 {
        grid: g,
        explored,
        cells,
    }
}

impl Sweep1000 {
    /// Grid points per simulated engine cell — the speedup over pricing
    /// every grid point with its own simulation.
    pub fn speedup_x(&self) -> f64 {
        self.grid.len() as f64 / self.cells.max(1) as f64
    }

    /// Renders the exploration summary.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["metric", "value"])
            .with_title("sweep1000: surrogate-explored design grid");
        t.row(vec!["grid points".into(), self.grid.len().to_string()]);
        t.row(vec![
            "simulated points".into(),
            self.explored.order.len().to_string(),
        ]);
        t.row(vec![
            "engine cells simulated".into(),
            self.cells.to_string(),
        ]);
        t.row(vec![
            "refit rounds".into(),
            self.explored.rounds.to_string(),
        ]);
        t.row(vec![
            "converged".into(),
            self.explored.converged.to_string(),
        ]);
        t.row(vec![
            "cv median error %".into(),
            f2(self.explored.cv.median_pct),
        ]);
        t.row(vec!["cv p99 error %".into(), f2(self.explored.cv.p99_pct)]);
        t.row(vec![
            "cv worst error %".into(),
            f2(self.explored.cv.worst_pct),
        ]);
        t.row(vec![
            "speedup vs full sweep".into(),
            format!("{}x", f2(self.speedup_x())),
        ]);
        t.render()
    }

    /// The structured report: one summary row, then one row per
    /// simulated point in labeling order (`pick` is the position in that
    /// order), each carrying the measured CPI next to the final
    /// surrogate's prediction.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "sweep1000",
            "sweep1000: surrogate-explored design grid",
            "§5 (sweep space, surrogate extension)",
            scale,
        );
        rep.axis("benchmark", WORKLOAD_NAMES.to_vec());
        rep.axis("window", WINDOWS.map(u64::from).to_vec());
        rep.axis("mshrs", MSHRS.map(u64::from).to_vec());
        rep.axis("latency", LATENCIES.map(u64::from).to_vec());
        rep.axis("l2_kb", L2_KB.map(u64::from).to_vec());
        rep.row(
            JsonRow::new()
                .field("source", "summary")
                .field("grid_points", self.grid.len())
                .field("simulated_points", self.explored.order.len())
                .field("cells", self.cells)
                .field("rounds", self.explored.rounds)
                .field("converged", self.explored.converged)
                .field("cv_median_pct", self.explored.cv.median_pct)
                .field("cv_p99_pct", self.explored.cv.p99_pct)
                .field("speedup_x", self.speedup_x()),
        );
        for (pick, (&gi, &cpi)) in self
            .explored
            .order
            .iter()
            .zip(&self.explored.cpi)
            .enumerate()
        {
            let p = &self.grid[gi];
            let predicted = self.explored.surrogate.predict(p);
            rep.row(
                JsonRow::new()
                    .field("source", "simulated")
                    .field("pick", pick)
                    .field("benchmark", p.workload_name())
                    .field("window", u64::from(p.window))
                    .field("mshrs", u64::from(p.mshrs))
                    .field("latency", u64::from(p.latency))
                    .field("l2_kb", u64::from(p.l2_kb))
                    .field("cpi", cpi)
                    .field("predicted_cpi", predicted)
                    .field("pct_error", mlp_model::pct_error(predicted, cpi)),
            );
        }
        rep
    }
}

/// Registry entry for `sweep1000`.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "sweep1000"
    }
    fn module(&self) -> &'static str {
        "sweep1000"
    }
    fn description(&self) -> &'static str {
        "surrogate-explored 3888-point window/MSHR/latency/L2 grid with active sampling"
    }
    fn section(&self) -> &'static str {
        "§5 (sweep space, surrogate extension)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let s = run(scale);
        ExperimentRun {
            text: s.render(),
            report: s.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_order() {
        let g = grid();
        assert_eq!(g.len(), 3888);
        assert!(g.len() >= 1000, "issue requires a 1000+-point grid");
        // Workload-major: first block is all Database.
        assert!(g[..1296].iter().all(|p| p.workload == 0));
        // Last axis varies fastest.
        assert_eq!(g[0].latency, LATENCIES[0]);
        assert_eq!(g[1].latency, LATENCIES[1]);
        // All points unique.
        let mut seen = g.clone();
        seen.sort_by_key(|p| (p.workload, p.window, p.l2_kb, p.mshrs, p.latency));
        seen.dedup();
        assert_eq!(seen.len(), g.len());
    }

    #[test]
    fn seed_design_spans_every_axis() {
        let g = grid();
        let seeds = seed_indices(&g);
        assert_eq!(seeds.len(), 36);
        for w in 0..3 {
            assert!(seeds.iter().any(|&i| g[i].workload == w));
        }
        for &(m, lat) in &[(1u32, 1000u32), (4, 300), (32, 150)] {
            assert!(seeds
                .iter()
                .any(|&i| g[i].mshrs == m && g[i].latency == lat));
        }
    }

    #[test]
    fn truth_reduces_to_paper_equation_with_infinite_mshrs() {
        // hist: 3 epochs of 1 miss, 2 of 4 misses → 11 misses, 5 epochs.
        let mut hist = vec![0u64; 8];
        hist[1] = 3;
        hist[4] = 2;
        let r = mlpsim::Report {
            insts: 1_000,
            epochs: 5,
            epoch_size_histogram: hist,
            ..Default::default()
        };
        // m large enough: one round per epoch → onchip + lat·epochs/insts.
        let cpi = truth_cpi(&r, 0, 32, 400);
        let want = ONCHIP_CPI[0] + 400.0 * 5.0 / 1000.0;
        assert!((cpi - want).abs() < 1e-12);
        // m = 1: one round per miss → onchip + lat·misses/insts.
        let cpi1 = truth_cpi(&r, 0, 1, 400);
        let want1 = ONCHIP_CPI[0] + 400.0 * 11.0 / 1000.0;
        assert!((cpi1 - want1).abs() < 1e-12);
        // m = 3: ceil(1/3)·3 + ceil(4/3)·2 = 3 + 4 = 7 rounds.
        let cpi3 = truth_cpi(&r, 0, 3, 400);
        let want3 = ONCHIP_CPI[0] + 400.0 * 7.0 / 1000.0;
        assert!((cpi3 - want3).abs() < 1e-12);
        // Monotone in MSHRs.
        assert!(cpi1 > cpi3 && cpi3 > cpi);
    }

    #[test]
    fn truth_is_total_on_empty_report() {
        let cpi = truth_cpi(&mlpsim::Report::default(), 2, 4, 400);
        assert_eq!(cpi, ONCHIP_CPI[2]);
    }
}
