//! Figure 4: impact of ROB size and issue constraints on MLP.
//!
//! MLP as a function of coupled issue-window/ROB size (16–256) for each
//! of the paper's five issue configurations A–E.

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_mlpsim, sweep_grid};
use crate::table::{f3, TextTable};
use crate::RunScale;
use mlp_workloads::WorkloadKind;
use mlpsim::{IssueConfig, MlpsimConfig};

/// The swept window sizes.
pub const SIZES: [usize; 5] = [16, 32, 64, 128, 256];

/// One workload's MLP surface.
#[derive(Clone, Debug)]
pub struct Surface {
    /// Workload.
    pub kind: WorkloadKind,
    /// `mlp[size_index][config_index]` over [`SIZES`] × [`IssueConfig::ALL`].
    pub mlp: Vec<[f64; 5]>,
}

/// Figure 4 results.
#[derive(Clone, Debug)]
pub struct Figure4 {
    /// One surface per workload.
    pub surfaces: Vec<Surface>,
}

/// Runs Figure 4.
pub fn run(scale: RunScale) -> Figure4 {
    let mut jobs: Vec<(WorkloadKind, usize, IssueConfig)> = Vec::new();
    for kind in WorkloadKind::ALL {
        for &size in &SIZES {
            for &issue in &IssueConfig::ALL {
                jobs.push((kind, size, issue));
            }
        }
    }
    let mlps = sweep_grid(jobs, |&(kind, size, issue)| {
        run_mlpsim(
            kind,
            MlpsimConfig::builder()
                .issue(issue)
                .coupled_window(size)
                .build(),
            scale,
        )
        .mlp()
    });
    let mut surfaces = Vec::new();
    for kind in WorkloadKind::ALL {
        let mut mlp = Vec::new();
        for &size in &SIZES {
            let mut row = [0.0; 5];
            for (cell, &issue) in row.iter_mut().zip(&IssueConfig::ALL) {
                *cell = mlps[&(kind, size, issue)];
            }
            mlp.push(row);
        }
        surfaces.push(Surface { kind, mlp });
    }
    Figure4 { surfaces }
}

impl Figure4 {
    /// Renders one table per workload (size rows × config columns).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.surfaces {
            let mut t =
                TextTable::new(vec!["ROB/IW size", "A", "B", "C", "D", "E"]).with_title(format!(
                    "Figure 4: MLP vs window size and issue constraints — {}",
                    s.kind.name()
                ));
            for (si, &size) in SIZES.iter().enumerate() {
                let mut row = vec![size.to_string()];
                row.extend(s.mlp[si].iter().map(|&m| f3(m)));
                t.row(row);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// MLP for `(kind, size, config)`.
    pub fn mlp(&self, kind: WorkloadKind, size: usize, issue: IssueConfig) -> Option<f64> {
        let s = self.surfaces.iter().find(|s| s.kind == kind)?;
        let si = SIZES.iter().position(|&x| x == size)?;
        let ci = IssueConfig::ALL.iter().position(|&x| x == issue)?;
        Some(s.mlp[si][ci])
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "figure4",
            "Figure 4: MLP vs window size and issue constraints",
            "§5.2 (Figure 4)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("size", SIZES.to_vec());
        rep.axis("config", IssueConfig::ALL.map(|c| c.letter()).to_vec());
        for s in &self.surfaces {
            for (si, &size) in SIZES.iter().enumerate() {
                for (ci, &issue) in IssueConfig::ALL.iter().enumerate() {
                    rep.row(
                        JsonRow::new()
                            .field("benchmark", s.kind.name())
                            .field("size", size)
                            .field("config", issue.letter())
                            .field("mlp", s.mlp[si][ci]),
                    );
                }
            }
        }
        rep
    }
}

/// Registry entry for Figure 4.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "figure4"
    }
    fn module(&self) -> &'static str {
        "figure4"
    }
    fn description(&self) -> &'static str {
        "MLP across coupled window sizes 16-256 and issue configurations A-E"
    }
    fn section(&self) -> &'static str {
        "§5.2 (Figure 4)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let f = run(scale);
        ExperimentRun {
            text: f.render(),
            report: f.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_render() {
        let f = Figure4 {
            surfaces: vec![Surface {
                kind: WorkloadKind::Database,
                mlp: vec![[1.0, 1.1, 1.2, 1.3, 1.4]; SIZES.len()],
            }],
        };
        assert_eq!(f.mlp(WorkloadKind::Database, 64, IssueConfig::C), Some(1.2));
        assert_eq!(f.mlp(WorkloadKind::Database, 63, IssueConfig::C), None);
        assert!(f.render().contains("Figure 4"));
    }
}
