//! One module per table/figure of the paper's evaluation.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table 1: on-/off-chip CPI components, MLP, Overlap_CM |
//! | [`figure2`] | Figure 2: clustering of off-chip accesses |
//! | [`table3`] | Table 3: MLPsim vs cycle-accurate MLP validation |
//! | [`table4`] | Table 4: estimated vs measured CPI |
//! | [`table5`] | Table 5: in-order MLP (stall-on-miss / stall-on-use) |
//! | [`figure4`] | Figure 4: MLP vs ROB size and issue constraints |
//! | [`figure5`] | Figure 5: factors inhibiting further MLP |
//! | [`figure6`] | Figure 6: decoupling issue window and ROB |
//! | [`figure7`] | Figure 7: impact of L2 cache size |
//! | [`figure8`] | Figure 8: runahead execution |
//! | [`figure9`] | Figure 9 + Table 6: missing-load value prediction |
//! | [`figure10`] | Figure 10: perfect-I/VP/BP limit study |
//! | [`figure11`] | Figure 11: overall performance improvement |
//! | [`extensions`] | store-MLP study (paper future work) + ablations |
//! | [`epochs`] | epoch-size distributions (§4.1 queueing-model use) |
//! | [`sweep1000`] | surrogate-explored 3888-point design grid (§5 sweep space) |

pub mod epochs;
pub mod extensions;
pub mod figure10;
pub mod figure11;
pub mod figure2;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod figure7;
pub mod figure8;
pub mod figure9;
pub mod sweep1000;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;
