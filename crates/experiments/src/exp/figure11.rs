//! Figure 11: overall performance improvement.
//!
//! MLP gains are translated into overall performance via the CPI equation
//! (§2.2): each configuration's MLPsim MLP and miss rate is combined with
//! `CPI_perf` and `Overlap_CM` measured by the cycle-accurate simulator
//! (Table 1 methodology), at a 1000-cycle off-chip latency. Improvements
//! are relative to the 64-entry-window configuration D baseline.

use super::figure8::RAE_MAX_DIST;
use super::table1;
use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_mlpsim, sweep_grid};
use crate::table::{f2, pct, TextTable};
use crate::RunScale;
use mlp_model::CpiModel;
use mlp_workloads::WorkloadKind;
use mlpsim::{BranchMode, IssueConfig, MlpsimConfig, ValueMode, WindowModel};

/// Off-chip latency of the figure.
pub const LATENCY: u64 = 1000;

/// The sampled configurations (paper: "a sample of processor
/// configurations studied in Sections 5.3-5.6").
pub fn sample_configs() -> Vec<(&'static str, MlpsimConfig)> {
    let ooo = |issue, iw, rob| {
        MlpsimConfig::builder()
            .issue(issue)
            .window(WindowModel::OutOfOrder {
                iw,
                rob,
                fetch_buffer: 32,
            })
            .build()
    };
    let rae = MlpsimConfig::builder()
        .issue(IssueConfig::D)
        .window(WindowModel::Runahead {
            max_dist: RAE_MAX_DIST,
        })
        .build();
    vec![
        ("64D (base)", ooo(IssueConfig::D, 64, 64)),
        ("64E", ooo(IssueConfig::E, 64, 64)),
        ("64D/ROB256", ooo(IssueConfig::D, 64, 256)),
        ("64E/ROB2048", ooo(IssueConfig::E, 64, 2048)),
        ("RAE", rae.clone()),
        (
            "RAE+VP",
            MlpsimConfig {
                value: ValueMode::LastValue(16 * 1024),
                ..rae.clone()
            },
        ),
        (
            "RAE.perfI",
            MlpsimConfig {
                perfect_ifetch: true,
                ..rae.clone()
            },
        ),
        (
            "RAE.perfVP.perfBP",
            MlpsimConfig {
                value: ValueMode::Perfect,
                branch: BranchMode::Perfect,
                ..rae
            },
        ),
    ]
}

/// One configuration's predicted performance for one workload.
#[derive(Clone, Debug)]
pub struct Point {
    /// Configuration label.
    pub label: &'static str,
    /// MLPsim-measured MLP.
    pub mlp: f64,
    /// Predicted CPI.
    pub cpi: f64,
    /// Percent performance improvement over the 64D baseline.
    pub improvement_pct: f64,
}

/// One workload's series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Workload.
    pub kind: WorkloadKind,
    /// The fitted CPI model used for the translation.
    pub model: CpiModel,
    /// One point per sampled configuration.
    pub points: Vec<Point>,
}

/// Figure 11 results.
#[derive(Clone, Debug)]
pub struct Figure11 {
    /// One series per workload.
    pub series: Vec<Series>,
}

/// Runs Figure 11.
pub fn run(scale: RunScale) -> Figure11 {
    // Table 1 methodology supplies CPI_perf and Overlap_CM at 1000 cycles.
    let t1 = table1::run_with_latencies(scale, &[LATENCY]);
    let configs = sample_configs();
    let mut jobs: Vec<(WorkloadKind, usize)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.extend((0..configs.len()).map(|ci| (kind, ci)));
    }
    let stats = sweep_grid(jobs, |&(kind, ci)| {
        let r = run_mlpsim(kind, configs[ci].1.clone(), scale);
        (r.mlp(), r.offchip.total() as f64 / r.insts as f64)
    });
    let mut series = Vec::new();
    for kind in WorkloadKind::ALL {
        let row = t1
            .row(kind, LATENCY)
            .expect("table 1 has every workload at the chosen latency");
        let mut points = Vec::new();
        let mut base_cpi = None;
        for (ci, (label, _)) in configs.iter().enumerate() {
            let (mlp, miss_rate) = stats[&(kind, ci)];
            let model = CpiModel {
                miss_rate,
                ..row.model
            };
            let cpi = model.cpi(mlp);
            let base = *base_cpi.get_or_insert(cpi);
            points.push(Point {
                label,
                mlp,
                cpi,
                improvement_pct: 100.0 * (base / cpi - 1.0),
            });
        }
        series.push(Series {
            kind,
            model: row.model,
            points,
        });
    }
    Figure11 { series }
}

impl Figure11 {
    /// Renders the improvement bars.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let mut t = TextTable::new(vec!["Configuration", "MLP", "CPI", "Improvement"])
                .with_title(format!(
                    "Figure 11: Overall performance vs 64D — {} (latency {LATENCY})",
                    s.kind.name()
                ));
            for p in &s.points {
                t.row(vec![
                    p.label.into(),
                    f2(p.mlp),
                    f2(p.cpi),
                    pct(p.improvement_pct),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// The improvement of a labelled configuration for a workload.
    pub fn improvement(&self, kind: WorkloadKind, label: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.kind == kind)?
            .points
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.improvement_pct)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "figure11",
            "Figure 11: Overall performance improvement vs 64D",
            "§5.8 (Figure 11)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis(
            "configuration",
            sample_configs().iter().map(|&(l, _)| l).collect::<Vec<_>>(),
        );
        rep.axis("latency", vec![LATENCY]);
        for s in &self.series {
            for p in &s.points {
                rep.row(
                    JsonRow::new()
                        .field("benchmark", s.kind.name())
                        .field("configuration", p.label)
                        .field("mlp", p.mlp)
                        .field("cpi", p.cpi)
                        .field("improvement_pct", p.improvement_pct),
                );
            }
        }
        rep
    }
}

/// Registry entry for Figure 11.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "figure11"
    }
    fn module(&self) -> &'static str {
        "figure11"
    }
    fn description(&self) -> &'static str {
        "MLP gains translated to overall performance via the CPI equation"
    }
    fn section(&self) -> &'static str {
        "§5.8 (Figure 11)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let f = run(scale);
        ExperimentRun {
            text: f.render(),
            report: f.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_set_contains_the_papers_bars() {
        let labels: Vec<&str> = sample_configs().iter().map(|(l, _)| *l).collect();
        assert!(labels.contains(&"RAE"));
        assert!(labels.contains(&"RAE.perfVP.perfBP"));
        assert_eq!(labels[0], "64D (base)");
    }

    #[test]
    fn lookup_and_render() {
        let model = CpiModel {
            cpi_perf: 1.5,
            overlap_cm: 0.2,
            miss_rate: 0.008,
            miss_penalty: 1000.0,
        };
        let f = Figure11 {
            series: vec![Series {
                kind: WorkloadKind::Database,
                model,
                points: vec![Point {
                    label: "RAE",
                    mlp: 2.4,
                    cpi: 4.5,
                    improvement_pct: 60.0,
                }],
            }],
        };
        assert_eq!(f.improvement(WorkloadKind::Database, "RAE"), Some(60.0));
        assert!(f.render().contains("60.0%"));
    }
}
