//! Figure 5: factors inhibiting further MLP.
//!
//! For each window size and issue configuration, the fraction of epochs
//! bound by each window-termination condition: `Imiss start`, `Maxwin`,
//! `Mispred br`, `Imiss end`, `Missing load` (config A only), `Dep store`
//! (configs A/B) and `Serialize`.

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_mlpsim, sweep};
use crate::table::{pct, TextTable};
use crate::RunScale;
use mlp_workloads::WorkloadKind;
use mlpsim::{InhibitorCounts, IssueConfig, MlpsimConfig};

/// The swept window sizes (as in Figure 4).
pub const SIZES: [usize; 5] = [16, 32, 64, 128, 256];

/// One bar of the figure: the inhibitor mix of one configuration.
#[derive(Clone, Debug)]
pub struct Bar {
    /// Workload.
    pub kind: WorkloadKind,
    /// Window size.
    pub size: usize,
    /// Issue configuration.
    pub issue: IssueConfig,
    /// Raw inhibitor counts.
    pub counts: InhibitorCounts,
}

impl Bar {
    /// The inhibitor mix as fractions of all epochs, in the legend order
    /// of [`InhibitorCounts::as_rows`].
    pub fn fractions(&self) -> Vec<(&'static str, f64)> {
        let total = self.counts.total().max(1) as f64;
        self.counts
            .as_rows()
            .iter()
            .map(|&(name, n)| (name, n as f64 / total))
            .collect()
    }
}

/// Figure 5 results.
#[derive(Clone, Debug)]
pub struct Figure5 {
    /// One bar per workload × size × config.
    pub bars: Vec<Bar>,
}

/// Runs Figure 5 for all sizes and configurations.
pub fn run(scale: RunScale) -> Figure5 {
    run_grid(scale, &SIZES, &IssueConfig::ALL)
}

/// Runs a subset of the grid.
pub fn run_grid(scale: RunScale, sizes: &[usize], configs: &[IssueConfig]) -> Figure5 {
    let mut jobs: Vec<(WorkloadKind, usize, IssueConfig)> = Vec::new();
    for kind in WorkloadKind::ALL {
        for &size in sizes {
            for &issue in configs {
                jobs.push((kind, size, issue));
            }
        }
    }
    let bars = sweep(jobs, |&(kind, size, issue)| {
        let r = run_mlpsim(
            kind,
            MlpsimConfig::builder()
                .issue(issue)
                .coupled_window(size)
                .build(),
            scale,
        );
        Bar {
            kind,
            size,
            issue,
            counts: r.inhibitors,
        }
    });
    Figure5 { bars }
}

impl Figure5 {
    /// Renders the inhibitor mix (percent of epochs).
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Benchmark",
            "Bar",
            "Imiss start",
            "Maxwin",
            "Mispred br",
            "Imiss end",
            "Missing load",
            "Dep store",
            "Serialize",
        ])
        .with_title("Figure 5: Factors Inhibiting Further MLP (% of epochs)");
        for b in &self.bars {
            let f = b.fractions();
            t.row(vec![
                b.kind.name().into(),
                format!("{}{}", b.size, b.issue.letter()),
                pct(100.0 * f[0].1),
                pct(100.0 * f[1].1),
                pct(100.0 * f[2].1),
                pct(100.0 * f[3].1),
                pct(100.0 * f[4].1),
                pct(100.0 * f[5].1),
                pct(100.0 * f[6].1),
            ]);
        }
        t.render()
    }

    /// The bar for `(kind, size, config)`.
    pub fn bar(&self, kind: WorkloadKind, size: usize, issue: IssueConfig) -> Option<&Bar> {
        self.bars
            .iter()
            .find(|b| b.kind == kind && b.size == size && b.issue == issue)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "figure5",
            "Figure 5: Factors Inhibiting Further MLP (% of epochs)",
            "§5.2 (Figure 5)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("size", SIZES.to_vec());
        rep.axis("config", IssueConfig::ALL.map(|c| c.letter()).to_vec());
        for b in &self.bars {
            let mut row = JsonRow::new()
                .field("benchmark", b.kind.name())
                .field("size", b.size)
                .field("config", b.issue.letter());
            for (name, frac) in b.fractions() {
                row = row.field(name, frac);
            }
            rep.row(row);
        }
        rep
    }
}

/// Registry entry for Figure 5.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "figure5"
    }
    fn module(&self) -> &'static str {
        "figure5"
    }
    fn description(&self) -> &'static str {
        "Window-termination mix: which factor bounds each epoch's MLP"
    }
    fn section(&self) -> &'static str {
        "§5.2 (Figure 5)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let f = run(scale);
        ExperimentRun {
            text: f.render(),
            report: f.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let counts = InhibitorCounts {
            imiss_start: 2,
            maxwin: 5,
            serialize: 3,
            ..InhibitorCounts::default()
        };
        let b = Bar {
            kind: WorkloadKind::Database,
            size: 64,
            issue: IssueConfig::C,
            counts,
        };
        let sum: f64 = b.fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let fig = Figure5 { bars: vec![b] };
        assert!(fig.render().contains("Serialize"));
        assert!(fig
            .bar(WorkloadKind::Database, 64, IssueConfig::C)
            .is_some());
    }
}
