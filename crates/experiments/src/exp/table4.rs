//! Table 4: estimated vs measured CPI.
//!
//! The CPI of each 64-entry configuration (A/B/C, 1000-cycle latency) is
//! *estimated* by plugging its MLPsim-measured MLP and miss rate into the
//! CPI equation, using `CPI_perf` and `Overlap_CM` measured by the cycle
//! simulator for each configuration — including *other* configurations,
//! demonstrating that the equation predicts the CPI of machines that were
//! never run through the cycle simulator. The paper reports agreement
//! within 2%.

use crate::registry::{Experiment, ExperimentRun};
use crate::report::{Report, Row as JsonRow};
use crate::runner::{run_cyclesim, run_mlpsim, sweep_grid};
use crate::table::{f2, TextTable};
use crate::RunScale;
use mlp_cyclesim::CycleSimConfig;
use mlp_model::{pct_error, CpiModel};
use mlp_workloads::WorkloadKind;
use mlpsim::{IssueConfig, MlpsimConfig};

/// The configurations estimated and measured.
pub const CONFIGS: [IssueConfig; 3] = [IssueConfig::A, IssueConfig::B, IssueConfig::C];
/// Off-chip latency used (the paper's Table 4 uses 1000 cycles).
pub const LATENCY: u64 = 1000;
/// Window size used (issue window = ROB = 64).
pub const SIZE: usize = 64;

/// One row: a target configuration with estimates from every source
/// configuration's model parameters.
#[derive(Clone, Debug)]
pub struct Row {
    /// Workload.
    pub kind: WorkloadKind,
    /// The configuration whose CPI is being predicted.
    pub target: IssueConfig,
    /// Estimated CPI using each source configuration's
    /// `CPI_perf`/`Overlap_CM` (indexed like [`CONFIGS`]).
    pub estimated: [f64; 3],
    /// CPI measured by the cycle-accurate simulator.
    pub measured: f64,
}

impl Row {
    /// Worst-case percentage error across source configurations.
    pub fn max_error_pct(&self) -> f64 {
        self.estimated
            .iter()
            .map(|&e| pct_error(e, self.measured).abs())
            .fold(0.0, f64::max)
    }
}

/// Table 4 results.
#[derive(Clone, Debug)]
pub struct Table4 {
    /// One row per workload × target configuration.
    pub rows: Vec<Row>,
}

/// Runs Table 4.
pub fn run(scale: RunScale) -> Table4 {
    // Use the same instruction window for both simulators: the miss rate
    // of a finite window is position-dependent (the L2 fills over the
    // first millions of instructions), and the equation check is about
    // the *model*, not about window placement.
    let scale = RunScale {
        warmup: scale.cycle_warmup,
        measure: scale.cycle_measure,
        ..scale
    };
    // One job per (workload, configuration): realistic + perfect cycle
    // runs and the epoch-model run for that configuration.
    let mut jobs: Vec<(WorkloadKind, IssueConfig)> = Vec::new();
    for kind in WorkloadKind::ALL {
        jobs.extend(CONFIGS.iter().map(|&issue| (kind, issue)));
    }
    let per_config = sweep_grid(jobs, |&(kind, issue)| {
        let base = CycleSimConfig::default()
            .with_window(SIZE)
            .with_issue(issue)
            .with_mem_latency(LATENCY);
        let real = run_cyclesim(kind, base.clone(), scale);
        let perf = run_cyclesim(kind, base.perfect_l2(), scale);
        let miss_rate = real.offchip.total() as f64 / real.insts as f64;
        let model = CpiModel::from_measured(
            real.cpi(),
            perf.cpi(),
            miss_rate,
            LATENCY as f64,
            real.mlp(),
        );
        let m = run_mlpsim(
            kind,
            MlpsimConfig::builder()
                .issue(issue)
                .coupled_window(SIZE)
                .build(),
            scale,
        );
        (
            model,
            real.cpi(),
            (m.mlp(), m.offchip.total() as f64 / m.insts as f64),
        )
    });
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        for &target in &CONFIGS {
            let &(_, measured, (mlp, miss_rate)) = &per_config[&(kind, target)];
            let mut estimated = [0.0; 3];
            for (si, &source) in CONFIGS.iter().enumerate() {
                let (model, ..) = per_config[&(kind, source)];
                let m = CpiModel { miss_rate, ..model };
                estimated[si] = m.cpi(mlp);
            }
            rows.push(Row {
                kind,
                target,
                estimated,
                measured,
            });
        }
    }
    Table4 { rows }
}

impl Table4 {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Benchmark",
            "Config",
            "Est. w/ A",
            "Est. w/ B",
            "Est. w/ C",
            "Measured",
            "max err",
        ])
        .with_title(format!(
            "Table 4: Estimated vs Measured CPI (window {SIZE}, latency {LATENCY})"
        ));
        for r in &self.rows {
            t.row(vec![
                r.kind.name().into(),
                r.target.letter().into(),
                f2(r.estimated[0]),
                f2(r.estimated[1]),
                f2(r.estimated[2]),
                f2(r.measured),
                format!("{:.1}%", r.max_error_pct()),
            ]);
        }
        t.render()
    }

    /// Worst-case estimation error over every row and source config.
    pub fn max_error_pct(&self) -> f64 {
        self.rows.iter().map(Row::max_error_pct).fold(0.0, f64::max)
    }

    /// The structured report.
    pub fn report(&self, scale: RunScale) -> Report {
        let mut rep = Report::new(
            "table4",
            "Table 4: Estimated vs Measured CPI",
            "§4.3 (Table 4)",
            scale,
        );
        rep.axis("benchmark", WorkloadKind::ALL.map(|k| k.name()).to_vec());
        rep.axis("config", CONFIGS.map(|c| c.letter()).to_vec());
        rep.axis("latency", vec![LATENCY]);
        rep.axis("size", vec![SIZE]);
        for r in &self.rows {
            rep.row(
                JsonRow::new()
                    .field("benchmark", r.kind.name())
                    .field("target_config", r.target.letter())
                    .field("estimated_with_a", r.estimated[0])
                    .field("estimated_with_b", r.estimated[1])
                    .field("estimated_with_c", r.estimated[2])
                    .field("measured", r.measured)
                    .field("max_error_pct", r.max_error_pct()),
            );
        }
        rep
    }
}

/// Registry entry for Table 4.
pub struct Exp;

impl Experiment for Exp {
    fn name(&self) -> &'static str {
        "table4"
    }
    fn module(&self) -> &'static str {
        "table4"
    }
    fn description(&self) -> &'static str {
        "CPI-equation check: estimated vs cycle-measured CPI across configurations"
    }
    fn section(&self) -> &'static str {
        "§4.3 (Table 4)"
    }
    fn run(&self, scale: RunScale) -> ExperimentRun {
        let t = run(scale);
        ExperimentRun {
            text: t.render(),
            report: t.report(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_metric_and_render() {
        let r = Row {
            kind: WorkloadKind::SpecWeb99,
            target: IssueConfig::B,
            estimated: [2.37, 2.37, 2.33],
            measured: 2.36,
        };
        assert!(r.max_error_pct() < 1.5);
        let t = Table4 { rows: vec![r] };
        assert!(t.render().contains("Measured"));
        assert!(t.max_error_pct() < 1.5);
    }
}
