//! The experiment registry: one [`Experiment`] entry per table/figure.
//!
//! The registry is the single source of truth for which experiments
//! exist. The `mlp-experiments` binary, the bench drivers and the
//! golden-snapshot suite all iterate [`REGISTRY`] instead of keeping
//! their own experiment lists, so a new experiment registers once (a
//! unit struct in its `exp::` module plus one line here) and every
//! consumer picks it up.
//!
//! # Examples
//!
//! ```no_run
//! use mlp_experiments::{registry, RunScale};
//!
//! let exp = registry::find("table5").expect("registered");
//! let run = exp.run(RunScale::quick());
//! println!("{}", run.text);
//! println!("{}", run.report.to_json());
//! ```

use crate::report::Report;
use crate::RunScale;

/// The output of one experiment run: the paper-style text rendering and
/// the structured JSON report.
#[derive(Clone, Debug)]
pub struct ExperimentRun {
    /// The rendered text table(s), exactly as printed by the binary.
    pub text: String,
    /// The structured report (see [`crate::report`]).
    pub report: Report,
}

/// One registered experiment.
pub trait Experiment: Sync {
    /// CLI name (`table1`, `figure4`, `store-mlp`, …).
    fn name(&self) -> &'static str;
    /// The `exp::` module housing the implementation (used by the
    /// registry-completeness test).
    fn module(&self) -> &'static str;
    /// One-line description shown by `mlp-experiments --list`.
    fn description(&self) -> &'static str;
    /// Paper anchor (e.g. `§5.2`, `Table 1`).
    fn section(&self) -> &'static str;
    /// Runs the experiment at `scale`.
    fn run(&self, scale: RunScale) -> ExperimentRun;
}

/// Every experiment, in the paper's presentation order.
pub static REGISTRY: [&dyn Experiment; 21] = [
    &crate::exp::table1::Exp,
    &crate::exp::figure2::Exp,
    &crate::exp::table3::Exp,
    &crate::exp::table4::Exp,
    &crate::exp::table5::Exp,
    &crate::exp::figure4::Exp,
    &crate::exp::figure5::Exp,
    &crate::exp::figure6::Exp,
    &crate::exp::figure7::Exp,
    &crate::exp::figure8::Exp,
    &crate::exp::figure9::Exp,
    &crate::exp::figure10::Exp,
    &crate::exp::figure11::Exp,
    &crate::exp::extensions::StoreMlpExp,
    &crate::exp::extensions::AblationsExp,
    &crate::exp::epochs::Exp,
    &crate::exp::extensions::FmExp,
    &crate::exp::extensions::L3Exp,
    &crate::exp::extensions::SmtExp,
    &crate::exp::extensions::RaeTimingExp,
    &crate::exp::sweep1000::Exp,
];

/// The experiment registered under `name`, if any.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().copied().find(|e| e.name() == name)
}

/// All experiments whose name contains `substring` (case-sensitive),
/// in registry order.
pub fn matching(substring: &str) -> Vec<&'static dyn Experiment> {
    REGISTRY
        .iter()
        .copied()
        .filter(|e| e.name().contains(substring))
        .collect()
}

/// All registered names, in registry order.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn find_and_matching() {
        assert_eq!(find("table1").map(|e| e.name()), Some("table1"));
        assert!(find("nope").is_none());
        // figure2 and figure4 through figure11.
        let figs = matching("figure");
        assert_eq!(figs.len(), 9);
        assert!(matching("").len() == REGISTRY.len());
    }

    #[test]
    fn names_are_unique_and_well_formed() {
        let mut seen = BTreeSet::new();
        for e in REGISTRY {
            assert!(seen.insert(e.name()), "duplicate name {}", e.name());
            assert!(
                e.name()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "name {:?} is not lowercase-kebab",
                e.name()
            );
            assert!(!e.description().is_empty());
            assert!(!e.section().is_empty());
        }
    }

    /// The list can never drift again: every `pub mod` under `exp/` must
    /// be claimed by at least one registry entry, and every entry must
    /// point at a real module.
    #[test]
    fn every_exp_module_is_registered() {
        let src = include_str!("exp/mod.rs");
        let modules: BTreeSet<&str> = src
            .lines()
            .filter_map(|l| {
                l.trim()
                    .strip_prefix("pub mod ")
                    .and_then(|m| m.strip_suffix(';'))
            })
            .collect();
        assert!(!modules.is_empty(), "failed to parse exp/mod.rs");
        let claimed: BTreeSet<&str> = REGISTRY.iter().map(|e| e.module()).collect();
        assert_eq!(
            modules, claimed,
            "exp/ modules and registry entries out of sync"
        );
    }

    /// One registry entry per arm of the old CLI: the binary's historic
    /// experiment list is exactly the registry.
    #[test]
    fn registry_covers_the_historic_cli_names() {
        let expected = [
            "table1",
            "figure2",
            "table3",
            "table4",
            "table5",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "store-mlp",
            "ablations",
            "epochs",
            "fm",
            "l3",
            "smt",
            "rae-timing",
            "sweep1000",
        ];
        assert_eq!(names(), expected);
    }
}
