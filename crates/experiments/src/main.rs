//! `mlp-experiments` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! mlp-experiments <experiment|all> [--scale quick|standard|full]
//!                 [--json [dir]] [--only <substring>] [--list]
//! ```
//!
//! The experiment set is the static [`mlp_experiments::registry`]: every
//! table and figure of the paper (`table1`, `figure2`, … `figure11`) plus
//! the extension studies (`store-mlp`, `ablations`, `epochs`, `fm`, `l3`,
//! `smt`, `rae-timing`). `--list` prints it. `--only` selects every
//! experiment whose name contains the given substring. `--json` also
//! writes each experiment's structured report to `<dir>/<name>.<scale>.json`
//! (default directory: `results/`).

use mlp_experiments::registry::{self, Experiment};
use mlp_experiments::RunScale;
use std::time::Instant;

/// Default directory for `--json` output.
const DEFAULT_JSON_DIR: &str = "results";

fn usage() -> ! {
    eprintln!(
        "usage: mlp-experiments <experiment|all> [--scale quick|standard|full] \
         [--json [dir]] [--only <substring>] [--list]\n\
         experiments: {}",
        registry::names().join(", ")
    );
    std::process::exit(2);
}

fn print_list() {
    let width = registry::names().iter().map(|n| n.len()).max().unwrap_or(0);
    for e in registry::REGISTRY {
        println!(
            "{:width$}  {:24}  {}",
            e.name(),
            e.section(),
            e.description()
        );
    }
}

struct Cli {
    scale: RunScale,
    scale_name: String,
    list: bool,
    only: Option<String>,
    json_dir: Option<String>,
    target: Option<String>,
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli = Cli {
        scale: RunScale::standard(),
        scale_name: "standard".to_string(),
        list: false,
        only: None,
        json_dir: None,
        target: None,
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let Some(name) = it.next() else {
                    eprintln!("--scale needs a value");
                    usage()
                };
                let Some(s) = RunScale::parse(name) else {
                    eprintln!("unknown scale '{name}'");
                    usage()
                };
                cli.scale = s;
                cli.scale_name = name.clone();
            }
            "--list" => cli.list = true,
            "--only" => {
                let Some(sub) = it.next() else {
                    eprintln!("--only needs a substring");
                    usage()
                };
                cli.only = Some(sub.clone());
            }
            "--json" => {
                // Optional directory operand: the next token is the
                // directory unless it looks like a flag or a selector.
                let dir = match it.peek() {
                    Some(next)
                        if !next.starts_with('-')
                            && next.as_str() != "all"
                            && registry::find(next).is_none() =>
                    {
                        it.next().unwrap().clone()
                    }
                    _ => DEFAULT_JSON_DIR.to_string(),
                };
                cli.json_dir = Some(dir);
            }
            name if cli.target.is_none() && !name.starts_with('-') => {
                cli.target = Some(name.to_string());
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                usage()
            }
        }
    }
    cli
}

/// Resolves the CLI selection against the registry, exiting via `usage`
/// on an unknown name or an `--only` filter that matches nothing.
fn select(cli: &Cli) -> Vec<&'static dyn Experiment> {
    if let Some(sub) = &cli.only {
        let picked = registry::matching(sub);
        if picked.is_empty() {
            eprintln!("--only '{sub}' matches no experiment");
            usage();
        }
        return picked;
    }
    match cli.target.as_deref() {
        Some("all") => registry::REGISTRY.to_vec(),
        Some(name) => match registry::find(name) {
            Some(e) => vec![e],
            None => {
                eprintln!("unknown experiment '{name}'");
                usage()
            }
        },
        None => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args);
    if cli.list {
        print_list();
        return;
    }
    let selected = select(&cli);
    if let Some(dir) = &cli.json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create JSON directory '{dir}': {e}");
            std::process::exit(1);
        }
    }
    let t_all = Instant::now();
    for e in &selected {
        let t0 = Instant::now();
        let run = e.run(cli.scale);
        println!("{}", run.text);
        if let Some(dir) = &cli.json_dir {
            let path = std::path::Path::new(dir).join(run.report.filename());
            if let Err(err) = std::fs::write(&path, run.report.to_json()) {
                eprintln!("cannot write '{}': {err}", path.display());
                std::process::exit(1);
            }
            eprintln!("[{} report -> {}]", e.name(), path.display());
        }
        eprintln!(
            "[{} finished in {:.1}s]\n",
            e.name(),
            t0.elapsed().as_secs_f64()
        );
    }
    if selected.len() > 1 {
        eprintln!(
            "[{} experiments ({} scale) finished in {:.1}s]",
            selected.len(),
            cli.scale_name,
            t_all.elapsed().as_secs_f64()
        );
    }
}
