//! `mlp-experiments` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! mlp-experiments <experiment|all> [--scale quick|standard|full]
//!                 [--inst-window N] [--trace-cache <dir>]
//!                 [--json [dir]] [--only <substrings>] [--list]
//!                 [--events <dir>]
//! mlp-experiments --surrogate <dir>
//! ```
//!
//! The experiment set is the static [`mlp_experiments::registry`]: every
//! table and figure of the paper (`table1`, `figure2`, … `figure11`) plus
//! the extension studies (`store-mlp`, `ablations`, `epochs`, `fm`, `l3`,
//! `smt`, `rae-timing`). `--list` prints it. `--only` selects every
//! experiment whose name contains one of the given comma-separated
//! substrings (`--only table5,epochs` picks both). `--json` also writes
//! each experiment's structured report to `<dir>/<name>.<scale>.json`
//! (default directory: `results/`).
//!
//! **Long windows:** `--inst-window N` replaces the named scale with a
//! window of `N` total instructions per epoch-model run (1:2
//! warmup:measure split, cycle-accurate runs at half budget). `N` takes
//! `k`/`M`/`G` suffixes, so the paper's windows are `--inst-window 50M`
//! or `100M`. Long windows exceed the in-memory trace budget and stream
//! from spilled v2 files; `--trace-cache <dir>` pins the spill directory
//! (otherwise `MLP_TRACE_CACHE_DIR` or the system temp dir is used), and
//! `MLP_TRACE_CACHE_BYTES` sets the in-memory budget above which traces
//! spill.
//!
//! **Observability:** with `MLP_OBS=counters` (or `all`) exported, each
//! report gains a `metrics` block — counters and phase timers drained
//! from the `mlp-obs` layer after the experiment ran — and the schema
//! tag becomes `mlp-experiments.report/v3`; without it, output is
//! byte-identical to an uninstrumented build. `--events <dir>` arms the
//! event stream and writes one JSONL trace per experiment to
//! `<dir>/<name>.<scale>.jsonl`.
//!
//! **Surrogate mode:** `--surrogate <dir>` trains the `mlp-surrogate`
//! CPI model from every report in `<dir>` (rows carrying the full
//! `benchmark`/`window`/`mshrs`/`latency`/`l2_kb`/`cpi` axes — e.g.
//! `sweep1000`'s — are used, others are skipped), cross-validates it
//! with leave-cells-out k-fold, predicts the whole `sweep1000` grid, and
//! writes the schema-tagged `mlp-surrogate.report/v1` document to
//! `<dir>/surrogate.json`: per-point predictions, ensemble
//! uncertainties, and simulated-vs-predicted provenance. Exits 0 when
//! cross-validation meets the pinned tolerance (≤5% median, ≤15% p99),
//! 1 otherwise.
//!
//! **Failure containment:** every experiment runs inside its own
//! `catch_unwind` boundary. A panic anywhere in one experiment — a bad
//! sweep arm, a truncated trace, an injected fault — is recorded and the
//! remaining experiments still run, print, and write their JSON
//! byte-identically to a fault-free invocation. Failed experiments get a
//! degraded-mode `status: "failed"` report (panic payload + elapsed
//! time) and a line in the failure summary table.
//!
//! Exit codes: `0` when every selected experiment succeeded, `1` when
//! any failed (or an artifact could not be written), `2` for usage
//! errors.

use mlp_experiments::exec;
use mlp_experiments::registry::{self, Experiment};
use mlp_experiments::report::Report;
use mlp_experiments::RunScale;
use std::time::Instant;

/// Default directory for `--json` output.
const DEFAULT_JSON_DIR: &str = "results";

fn usage() -> ! {
    eprintln!(
        "usage: mlp-experiments <experiment|all> [--scale quick|standard|full] \
         [--inst-window N[k|M|G]] [--trace-cache <dir>] \
         [--json [dir]] [--only <substring>[,<substring>...]] [--list] \
         [--events <dir>]\n\
       mlp-experiments --surrogate <dir>\n\
         experiments: {}",
        registry::names().join(", ")
    );
    std::process::exit(2);
}

fn print_list() {
    let width = registry::names().iter().map(|n| n.len()).max().unwrap_or(0);
    for e in registry::REGISTRY {
        println!(
            "{:width$}  {:24}  {}",
            e.name(),
            e.section(),
            e.description()
        );
    }
}

struct Cli {
    scale: RunScale,
    scale_name: String,
    list: bool,
    only: Option<String>,
    json_dir: Option<String>,
    events_dir: Option<String>,
    trace_cache: Option<String>,
    surrogate_dir: Option<String>,
    target: Option<String>,
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli = Cli {
        scale: RunScale::standard(),
        scale_name: "standard".to_string(),
        list: false,
        only: None,
        json_dir: None,
        events_dir: None,
        trace_cache: None,
        surrogate_dir: None,
        target: None,
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let Some(name) = it.next() else {
                    eprintln!("--scale needs a value");
                    usage()
                };
                let Some(s) = RunScale::parse(name) else {
                    eprintln!("unknown scale '{name}'");
                    usage()
                };
                cli.scale = s;
                cli.scale_name = name.clone();
            }
            "--inst-window" => {
                let Some(spec) = it.next() else {
                    eprintln!("--inst-window needs an instruction count");
                    usage()
                };
                let Some(total) = mlp_experiments::parse_insts(spec) else {
                    eprintln!("bad instruction count '{spec}' (try 50M, 100M, 500k)");
                    usage()
                };
                cli.scale = RunScale::window(total);
                cli.scale_name = format!("window:{spec}");
            }
            "--trace-cache" => {
                let Some(dir) = it.next() else {
                    eprintln!("--trace-cache needs a directory");
                    usage()
                };
                cli.trace_cache = Some(dir.clone());
            }
            "--list" => cli.list = true,
            "--only" => {
                let Some(sub) = it.next() else {
                    eprintln!("--only needs a substring");
                    usage()
                };
                cli.only = Some(sub.clone());
            }
            "--json" => {
                // Optional directory operand: the next token is the
                // directory unless it looks like a flag or a selector.
                let dir = match it.peek() {
                    Some(next)
                        if !next.starts_with('-')
                            && next.as_str() != "all"
                            && registry::find(next).is_none() =>
                    {
                        it.next().unwrap().clone()
                    }
                    _ => DEFAULT_JSON_DIR.to_string(),
                };
                cli.json_dir = Some(dir);
            }
            "--surrogate" => {
                let Some(dir) = it.next() else {
                    eprintln!("--surrogate needs a report directory");
                    usage()
                };
                cli.surrogate_dir = Some(dir.clone());
            }
            "--events" => {
                // Mandatory directory operand (unlike --json, there is
                // no sensible default for raw event traces).
                let Some(dir) = it.next() else {
                    eprintln!("--events needs a directory");
                    usage()
                };
                cli.events_dir = Some(dir.clone());
            }
            name if cli.target.is_none() && !name.starts_with('-') => {
                cli.target = Some(name.to_string());
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                usage()
            }
        }
    }
    cli
}

/// Resolves the CLI selection against the registry, exiting via `usage`
/// on an unknown name or an `--only` filter that matches nothing.
fn select(cli: &Cli) -> Vec<&'static dyn Experiment> {
    if let Some(spec) = &cli.only {
        // Comma-separated substrings, unioned, in registry order.
        let subs: Vec<&str> = spec.split(',').map(str::trim).collect();
        let picked: Vec<_> = registry::REGISTRY
            .iter()
            .copied()
            .filter(|e| subs.iter().any(|s| !s.is_empty() && e.name().contains(s)))
            .collect();
        if picked.is_empty() {
            eprintln!("--only '{spec}' matches no experiment");
            usage();
        }
        return picked;
    }
    match cli.target.as_deref() {
        Some("all") => registry::REGISTRY.to_vec(),
        Some(name) => match registry::find(name) {
            Some(e) => vec![e],
            None => {
                eprintln!("unknown experiment '{name}'");
                usage()
            }
        },
        None => usage(),
    }
}

/// One failed experiment, for the summary table and the exit code.
struct Failure {
    name: &'static str,
    elapsed_secs: f64,
    error: String,
}

fn print_failure_summary(failures: &[Failure], total: usize) {
    let width = failures
        .iter()
        .map(|f| f.name.len())
        .max()
        .unwrap_or(0)
        .max("experiment".len());
    println!(
        "== failure summary: {} of {total} experiments failed ==",
        failures.len()
    );
    println!("{:width$}  {:>8}  error", "experiment", "elapsed");
    for f in failures {
        // Panic payloads are almost always one line; flatten just in case
        // so the table stays a table.
        let error = f.error.replace('\n', "; ");
        println!("{:width$}  {:>7.1}s  {}", f.name, f.elapsed_secs, error);
    }
}

/// `--surrogate <dir>`: train from the report corpus in `dir`, predict
/// the full `sweep1000` grid, write `<dir>/surrogate.json`. Returns the
/// process exit code.
fn run_surrogate_mode(dir: &str) -> i32 {
    use mlp_experiments::exp::sweep1000;
    use mlp_surrogate::corpus;

    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("cannot read report directory '{dir}': {e}");
            return 1;
        }
    };
    // Sorted file order so the corpus (and therefore the canonical fit)
    // does not depend on directory iteration order.
    let mut files: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && p.file_name().is_some_and(|n| n != "surrogate.json")
        })
        .collect();
    files.sort();
    let mut rows: Vec<corpus::CorpusRow> = Vec::new();
    let mut used_files = 0usize;
    for path in &files {
        let Ok(text) = std::fs::read_to_string(path) else {
            eprintln!("skipping unreadable '{}'", path.display());
            continue;
        };
        let file_rows = corpus::rows_from_report(&text);
        if !file_rows.is_empty() {
            used_files += 1;
            eprintln!(
                "[surrogate corpus: {} rows from {}]",
                file_rows.len(),
                path.display()
            );
        }
        rows.extend(file_rows);
    }
    if rows.is_empty() {
        eprintln!(
            "no usable corpus rows in '{dir}' ({} json files scanned); \
             need rows with benchmark/window/mshrs/latency/l2_kb/cpi \
             (e.g. from `mlp-experiments sweep1000 --json {dir}`)",
            files.len()
        );
        return 1;
    }
    let points: Vec<mlp_surrogate::ConfigPoint> = rows.iter().map(|r| r.point).collect();
    let cpi: Vec<f64> = rows.iter().map(|r| r.cpi).collect();
    let priors = mlp_surrogate::default_priors();
    let lambda = sweep1000::explore_config().lambda;
    let surrogate = mlp_surrogate::Surrogate::fit_with(&points, &cpi, &priors, lambda);
    let cv = mlp_surrogate::kfold_cv(&points, &cpi, &priors, 5, lambda);
    let grid = sweep1000::grid();
    let index_of: std::collections::BTreeMap<_, usize> = grid
        .iter()
        .enumerate()
        .map(|(i, p)| ((p.workload, p.window, p.mshrs, p.latency, p.l2_kb), i))
        .collect();
    let mut simulated: Vec<(usize, f64)> = Vec::new();
    let mut seen = vec![false; grid.len()];
    for r in &rows {
        let key = (
            r.point.workload,
            r.point.window,
            r.point.mshrs,
            r.point.latency,
            r.point.l2_kb,
        );
        if let Some(&i) = index_of.get(&key) {
            if !std::mem::replace(&mut seen[i], true) {
                simulated.push((i, r.cpi));
            }
        }
    }
    simulated.sort_by_key(|a| a.0);
    let doc = mlp_surrogate::report::render(&surrogate, &grid, &simulated, &cv, rows.len());
    let out_path = std::path::Path::new(dir).join("surrogate.json");
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cannot write '{}': {e}", out_path.display());
        return 1;
    }
    println!(
        "surrogate: {} corpus rows from {used_files} reports, \
         cv over {} points: median {:.2}% p99 {:.2}% worst {:.2}% \
         (tolerance {}% / {}%), {} grid predictions -> {}",
        rows.len(),
        cv.n,
        cv.median_pct,
        cv.p99_pct,
        cv.worst_pct,
        mlp_surrogate::TOL_MEDIAN_PCT,
        mlp_surrogate::TOL_P99_PCT,
        grid.len(),
        out_path.display()
    );
    if cv.within_tolerance() {
        0
    } else {
        eprintln!("surrogate cross-validation is OUT of tolerance");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args);
    if cli.list {
        print_list();
        return;
    }
    if let Some(dir) = &cli.surrogate_dir {
        if cli.target.is_some() || cli.only.is_some() {
            eprintln!("--surrogate does not combine with experiment selection");
            usage();
        }
        std::process::exit(run_surrogate_mode(dir));
    }
    let selected = select(&cli);
    if let Some(dir) = &cli.trace_cache {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create trace cache directory '{dir}': {e}");
            std::process::exit(1);
        }
        mlp_workloads::TraceStore::global().set_cache_dir(dir);
    }
    if let Some(dir) = &cli.json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create JSON directory '{dir}': {e}");
            std::process::exit(1);
        }
    }
    if let Some(dir) = &cli.events_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create events directory '{dir}': {e}");
            std::process::exit(1);
        }
        mlp_obs::enable_events();
    }
    exec::install_compact_panic_hook();
    let mut failures: Vec<Failure> = Vec::new();
    let t_all = Instant::now();
    // Wall time of each whole experiment — recorded before the counter
    // drain below so every metrics block has at least this entry, even
    // for experiments that run no simulator (e.g. figure2's pure trace
    // analysis).
    static EXPERIMENT_TIMER: mlp_obs::PhaseTimer = mlp_obs::PhaseTimer::new("experiment.run");
    for e in &selected {
        let events_path = cli.events_dir.as_ref().map(|dir| {
            std::path::Path::new(dir).join(format!("{}.{}.jsonl", e.name(), cli.scale.label()))
        });
        if let Some(path) = &events_path {
            if let Err(err) = mlp_obs::set_event_sink(Some(path)) {
                eprintln!("cannot create event trace '{}': {err}", path.display());
            }
        }
        let obs_counters = mlp_obs::counters_on();
        if obs_counters {
            // Drop anything a previous experiment (or arming-time noise)
            // left behind so the metrics block is attributable to this
            // experiment alone. Experiments run sequentially; only their
            // internal sweeps are parallel.
            let _ = mlp_obs::snapshot_and_reset();
        }
        mlp_obs::emit(
            "experiment.start",
            &[
                ("experiment", e.name().into()),
                ("scale", cli.scale.label().into()),
            ],
        );
        // The isolation boundary: a panic anywhere inside one experiment
        // (its sweeps run under mlp_par's per-job containment and re-raise
        // here) must not abort the batch. Shared with the mlp-serve
        // daemon via exec::run_isolated.
        let iso = exec::run_isolated(*e, cli.scale);
        let elapsed = iso.elapsed;
        EXPERIMENT_TIMER.record_ns(elapsed.as_nanos() as u64);
        mlp_obs::emit(
            "experiment.end",
            &[
                ("experiment", e.name().into()),
                ("ok", iso.outcome.is_ok().into()),
                ("wall_ms", (elapsed.as_secs_f64() * 1e3).into()),
            ],
        );
        let metrics = obs_counters.then(mlp_obs::snapshot_and_reset);
        match iso.outcome {
            Ok(mut run) => {
                if let Some(snapshot) = &metrics {
                    run.report.set_metrics(snapshot);
                }
                println!("{}", run.text);
                if let Some(dir) = &cli.json_dir {
                    let path = std::path::Path::new(dir).join(run.report.filename());
                    if let Err(err) = std::fs::write(&path, run.report.to_json()) {
                        eprintln!("cannot write '{}': {err}", path.display());
                        failures.push(Failure {
                            name: e.name(),
                            elapsed_secs: elapsed.as_secs_f64(),
                            error: format!("cannot write '{}': {err}", path.display()),
                        });
                    } else {
                        eprintln!("[{} report -> {}]", e.name(), path.display());
                    }
                }
                eprintln!("[{} finished in {:.1}s]\n", e.name(), elapsed.as_secs_f64());
            }
            Err(error) => {
                eprintln!(
                    "[{} FAILED after {:.1}s: {error}]\n",
                    e.name(),
                    elapsed.as_secs_f64()
                );
                if let Some(dir) = &cli.json_dir {
                    let mut report = Report::failed(
                        e.name(),
                        e.description(),
                        e.section(),
                        cli.scale,
                        error.clone(),
                        elapsed.as_millis() as u64,
                    );
                    if let Some(snapshot) = &metrics {
                        report.set_metrics(snapshot);
                    }
                    let path = std::path::Path::new(dir).join(report.filename());
                    match std::fs::write(&path, report.to_json()) {
                        Ok(()) => {
                            eprintln!("[{} degraded report -> {}]", e.name(), path.display())
                        }
                        Err(err) => eprintln!("cannot write '{}': {err}", path.display()),
                    }
                }
                failures.push(Failure {
                    name: e.name(),
                    elapsed_secs: elapsed.as_secs_f64(),
                    error,
                });
            }
        }
        if events_path.is_some() {
            let _ = mlp_obs::set_event_sink(None); // flush + close
        }
    }
    if selected.len() > 1 {
        eprintln!(
            "[{} experiments ({} scale) finished in {:.1}s]",
            selected.len(),
            cli.scale_name,
            t_all.elapsed().as_secs_f64()
        );
    }
    if !failures.is_empty() {
        print_failure_summary(&failures, selected.len());
        std::process::exit(1);
    }
}
