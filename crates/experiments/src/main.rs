//! `mlp-experiments` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! mlp-experiments <experiment> [--scale quick|standard|full]
//! mlp-experiments all [--scale quick|standard|full]
//! ```
//!
//! where `<experiment>` is one of the paper's tables/figures (`table1`,
//! `figure2`, `table3`, `table4`, `table5`, `figure4` … `figure11`) or an
//! extension study (`store-mlp`, `ablations`, `epochs`, `fm`, `l3`,
//! `smt`, `rae-timing`).

use mlp_experiments::{exp, RunScale};
use std::time::Instant;

const EXPERIMENTS: [&str; 20] = [
    "table1",
    "figure2",
    "table3",
    "table4",
    "table5",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "store-mlp",
    "ablations",
    "epochs",
    "fm",
    "l3",
    "smt",
    "rae-timing",
];

fn run_one(name: &str, scale: RunScale) -> Option<String> {
    Some(match name {
        "table1" => exp::table1::run(scale).render(),
        "figure2" => exp::figure2::run(scale).render(),
        "table3" => exp::table3::run(scale).render(),
        "table4" => exp::table4::run(scale).render(),
        "table5" => exp::table5::run(scale).render(),
        "figure4" => exp::figure4::run(scale).render(),
        "figure5" => exp::figure5::run(scale).render(),
        "figure6" => exp::figure6::run(scale).render(),
        "figure7" => exp::figure7::run(scale).render(),
        "figure8" => exp::figure8::run(scale).render(),
        "figure9" => exp::figure9::run(scale).render(),
        "figure10" => exp::figure10::run(scale).render(),
        "figure11" => exp::figure11::run(scale).render(),
        "store-mlp" => exp::extensions::run_store_buffer(scale).render(),
        "ablations" => exp::extensions::run_ablations(scale).render(),
        "epochs" => exp::epochs::run(scale).render(),
        "fm" => exp::extensions::run_fm(scale).render(),
        "l3" => exp::extensions::run_l3(scale).render(),
        "smt" => exp::extensions::run_smt(scale).render(),
        "rae-timing" => exp::extensions::run_rae_timing(scale).render(),
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: mlp-experiments <experiment|all> [--scale quick|standard|full]\n\
         experiments: {}",
        EXPERIMENTS.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = RunScale::standard();
    let mut target: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let Some(name) = it.next() else { usage() };
                let Some(s) = RunScale::parse(name) else {
                    eprintln!("unknown scale '{name}'");
                    usage()
                };
                scale = s;
            }
            name if target.is_none() => target = Some(name.to_string()),
            _ => usage(),
        }
    }
    let Some(target) = target else { usage() };
    let names: Vec<&str> = if target == "all" {
        EXPERIMENTS.to_vec()
    } else {
        vec![target.as_str()]
    };
    for name in names {
        let t0 = Instant::now();
        match run_one(name, scale) {
            Some(output) => {
                println!("{output}");
                eprintln!("[{name} finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment '{name}'");
                usage();
            }
        }
    }
}
