//! Differential tests of the streaming trace path: driving the engines
//! chunk-at-a-time (`run_chunks`) over the same `(kind, seed, len)`
//! trace must reproduce the materialized `run_shared` report exactly —
//! every counter, not just the headline numbers. The reports don't
//! implement `PartialEq`, so equality is checked on the full `Debug`
//! rendering, which covers all fields.

use mlp_cyclesim::{CycleSim, CycleSimConfig};
use mlp_workloads::{TraceStore, WorkloadKind};
use mlpsim::{MlpsimConfig, Simulator};

const SEED: u64 = 42;
/// Enough instructions that the default 64k-inst chunking yields many
/// chunks, exercising cross-chunk state carry-over and buffer eviction.
const LEN: usize = 400_000;
const WARMUP: u64 = 100_000;
const MEASURE: u64 = 250_000;

#[test]
fn streamed_mlpsim_matches_materialized() {
    for kind in [
        WorkloadKind::Database,
        WorkloadKind::SpecJbb2000,
        WorkloadKind::SpecWeb99,
    ] {
        let shared = TraceStore::global().trace(kind, SEED, LEN);
        assert!(!shared.is_spilled(), "test store should stay in memory");
        let materialized =
            Simulator::new(MlpsimConfig::default()).run_shared(shared.soa(), LEN, WARMUP, MEASURE);
        let streamed =
            Simulator::new(MlpsimConfig::default()).run_chunks(shared.chunks(), WARMUP, MEASURE);
        assert_eq!(
            format!("{materialized:?}"),
            format!("{streamed:?}"),
            "mlpsim streamed run diverged on {kind:?}"
        );
    }
}

#[test]
fn streamed_cyclesim_matches_materialized() {
    for kind in [
        WorkloadKind::Database,
        WorkloadKind::SpecJbb2000,
        WorkloadKind::SpecWeb99,
    ] {
        let shared = TraceStore::global().trace(kind, SEED, LEN);
        let materialized =
            CycleSim::new(CycleSimConfig::default()).run_shared(shared.soa(), LEN, WARMUP, MEASURE);
        let streamed =
            CycleSim::new(CycleSimConfig::default()).run_chunks(shared.chunks(), WARMUP, MEASURE);
        assert_eq!(
            format!("{materialized:?}"),
            format!("{streamed:?}"),
            "cyclesim streamed run diverged on {kind:?}"
        );
    }
}
