//! Timing-behaviour tests of the cycle-accurate pipeline on micro traces
//! with hand-checkable cycle counts.

use mlp_cyclesim::{CycleReport, CycleSim, CycleSimConfig};
use mlp_isa::{Inst, Reg, SliceTrace};
use mlp_workloads::micro;
use mlpsim::IssueConfig;

fn run_warm(cfg: CycleSimConfig, trace: &[Inst]) -> CycleReport {
    let max_hot_pc = trace
        .iter()
        .map(|i| i.pc)
        .filter(|&pc| pc < 0x8000_0000)
        .max()
        .unwrap_or(micro::PC_BASE);
    let mut full: Vec<Inst> = (micro::PC_BASE..=max_hot_pc)
        .step_by(4)
        .map(Inst::nop)
        .collect();
    let warm = full.len() as u64;
    full.extend_from_slice(trace);
    CycleSim::new(cfg).run(&mut SliceTrace::new(&full), warm, u64::MAX)
}

#[test]
fn pure_alu_throughput_is_wide() {
    let mut t = Vec::new();
    let mut pc = micro::PC_BASE;
    for _ in 0..1000 {
        t.push(micro::filler(&mut pc));
    }
    let r = run_warm(CycleSimConfig::default(), &t);
    assert_eq!(r.insts, 1000);
    // 4-wide: ~250 cycles plus small pipeline overheads.
    assert!(r.cpi() < 0.6, "CPI {:.3} for independent ALUs", r.cpi());
}

#[test]
fn independent_misses_overlap_in_time() {
    let t = micro::independent_misses(4, 2);
    let r = run_warm(CycleSimConfig::default(), &t);
    assert_eq!(r.offchip.dmiss, 4);
    // Overlapped: roughly one memory latency, not four.
    assert!(
        r.cycles < 2 * 200,
        "4 independent misses should overlap ({} cycles)",
        r.cycles
    );
    assert!(r.mlp() > 3.0, "measured MLP {:.2}", r.mlp());
}

#[test]
fn pointer_chase_serializes_in_time() {
    let t = micro::pointer_chase(4, 1);
    let r = run_warm(CycleSimConfig::default(), &t);
    assert_eq!(r.offchip.dmiss, 4);
    assert!(r.cycles >= 4 * 200, "{} cycles", r.cycles);
    assert!(r.mlp() < 1.1, "measured MLP {:.2}", r.mlp());
}

#[test]
fn membar_serializes_misses() {
    let t = micro::serialized_misses(3);
    let r = run_warm(CycleSimConfig::default(), &t);
    assert_eq!(r.offchip.dmiss, 3);
    assert!(r.cycles >= 3 * 200, "{} cycles", r.cycles);
    assert!(r.mlp() < 1.1);
}

#[test]
fn perfect_l2_hides_memory() {
    let t = micro::pointer_chase(4, 1);
    let real = run_warm(CycleSimConfig::default(), &t);
    let perf = run_warm(CycleSimConfig::default().perfect_l2(), &t);
    assert!(perf.cycles * 5 < real.cycles);
    assert_eq!(perf.offchip.total(), 0);
}

#[test]
fn config_a_blocks_load_overlap_behind_dependence() {
    // Example 4's shape: under A the independent i3/i5 wait behind the
    // dependent chain; under C they overlap with i1.
    let t = micro::paper_example_4();
    let a = run_warm(CycleSimConfig::default().with_issue(IssueConfig::A), &t);
    let c = run_warm(CycleSimConfig::default().with_issue(IssueConfig::C), &t);
    assert!(
        a.cycles > c.cycles + 150,
        "A {} cycles should exceed C {} by ~1 miss",
        a.cycles,
        c.cycles
    );
    assert!(c.mlp() > a.mlp());
}

#[test]
fn mispredicted_branch_costs_a_redirect() {
    // A mispredicted branch between two independent misses (dependent on
    // the first miss) prevents their overlap.
    let r1 = Reg::int;
    let t = vec![
        Inst::load(micro::PC_BASE, r1(1), 0, r1(8), micro::COLD_BASE),
        // branch on the missing value: taken, cold predictor says not-taken
        Inst::cond_branch(micro::PC_BASE + 4, r1(8), true, micro::PC_BASE + 8),
        Inst::load(micro::PC_BASE + 8, r1(1), 0, r1(9), micro::COLD_BASE + 4096),
    ];
    let r = run_warm(CycleSimConfig::default(), &t);
    assert_eq!(r.offchip.dmiss, 2);
    assert!(
        r.cycles >= 2 * 200,
        "unresolvable mispredict must serialize the misses ({} cycles)",
        r.cycles
    );
}

#[test]
fn store_forwarding_avoids_memory() {
    let r1 = Reg::int;
    let t = vec![
        Inst::store(micro::PC_BASE, r1(1), 0, r1(2), micro::COLD_BASE),
        Inst::load(micro::PC_BASE + 4, r1(1), 0, r1(8), micro::COLD_BASE),
        Inst::alu(micro::PC_BASE + 8, &[r1(8)], r1(9)),
    ];
    let r = run_warm(CycleSimConfig::default(), &t);
    assert_eq!(r.offchip.total(), 0, "forwarded load must not go off-chip");
    assert!(r.cycles < 100);
}

#[test]
fn imiss_exposes_full_latency() {
    // A single instruction on a cold line: fetch must wait out the miss.
    let t = vec![Inst::nop(0x9000_0000)];
    let r = run_warm(CycleSimConfig::default(), &t);
    assert_eq!(r.offchip.imiss, 1);
    assert!(r.cycles >= 200, "{} cycles", r.cycles);
}

#[test]
fn mshr_capacity_limits_overlap() {
    let t = micro::independent_misses(8, 1);
    let wide = run_warm(CycleSimConfig::default(), &t);
    let narrow = run_warm(
        CycleSimConfig {
            mshrs: 2,
            ..CycleSimConfig::default()
        },
        &t,
    );
    assert!(
        narrow.cycles > wide.cycles,
        "2 MSHRs must throttle 8 misses"
    );
    assert!(narrow.mlp() <= 2.05);
}

#[test]
fn window_size_limits_overlap_in_time() {
    let t = micro::independent_misses(10, 2);
    let small = run_warm(CycleSimConfig::default().with_window(6), &t);
    let large = run_warm(CycleSimConfig::default().with_window(64), &t);
    assert!(small.cycles > large.cycles);
    assert!(small.mlp() < large.mlp());
}

#[test]
fn measurement_window_excludes_warmup() {
    let t = micro::independent_misses(4, 2);
    let r = run_warm(CycleSimConfig::default(), &t);
    // warm nops excluded: only the micro trace counted
    assert_eq!(r.insts, t.len() as u64);
}

#[test]
fn config_b_waits_for_store_addresses() {
    // Example 4's shape again: under B, i5 must wait for the store i4
    // whose address depends on the missing i2; under C it issues at once.
    let t = micro::paper_example_4();
    let b = run_warm(CycleSimConfig::default().with_issue(IssueConfig::B), &t);
    let c = run_warm(CycleSimConfig::default().with_issue(IssueConfig::C), &t);
    assert!(
        b.cycles > c.cycles + 150,
        "B {} cycles should exceed C {} by ~1 miss round-trip",
        b.cycles,
        c.cycles
    );
    // And B still beats A: i3 overlaps i1 under B but not under A.
    let a = run_warm(CycleSimConfig::default().with_issue(IssueConfig::A), &t);
    assert!(a.cycles >= b.cycles, "A {} vs B {}", a.cycles, b.cycles);
}

#[test]
fn serializing_casa_drains_pipeline() {
    let r1 = Reg::int;
    let t = vec![
        Inst::load(micro::PC_BASE, r1(1), 0, r1(8), micro::COLD_BASE),
        Inst::casa(
            micro::PC_BASE + 4,
            r1(2),
            r1(3),
            r1(4),
            r1(7),
            0x8000, // lock word: hot line after warmup? cold here, but small
        ),
        Inst::load(micro::PC_BASE + 8, r1(1), 0, r1(9), micro::COLD_BASE + 4096),
    ];
    let r = run_warm(CycleSimConfig::default(), &t);
    // The CASA drain forces the second load to wait out the first miss:
    // two serialized off-chip round trips at minimum.
    assert!(r.cycles >= 2 * 200, "{} cycles", r.cycles);
}

#[test]
fn mlp_time_integral_matches_occupancy() {
    // For n fully-overlapped misses, active_cycles ~ latency and the
    // weighted integral ~ n * latency (each access outstanding exactly
    // `mem_latency` cycles).
    let t = micro::independent_misses(4, 2);
    let r = run_warm(CycleSimConfig::default(), &t);
    let lat = 200u64;
    assert!(
        (r.mlp_weighted_cycles as i64 - (4 * lat) as i64).unsigned_abs() < 60,
        "integral {} should be ~{}",
        r.mlp_weighted_cycles,
        4 * lat
    );
    assert!(r.active_cycles >= lat && r.active_cycles < lat + 100);
}

#[test]
fn cpi_decomposition_identity_holds() {
    // cycles = compute-only + active (by construction of the integral).
    let t = micro::independent_misses(6, 10);
    let r = run_warm(CycleSimConfig::default(), &t);
    assert!(r.active_cycles <= r.cycles);
    let off_chip_cpi = r.offchip.total() as f64 * 200.0 / r.mlp() / r.insts as f64;
    let active_cpi = r.active_cycles as f64 / r.insts as f64;
    assert!(
        (off_chip_cpi - active_cpi).abs() < 0.05 * active_cpi.max(0.01),
        "MissRate*Penalty/MLP ({off_chip_cpi:.3}) must equal active CPI ({active_cpi:.3})"
    );
}

#[test]
fn runahead_value_prediction_unblocks_chains() {
    use mlp_cyclesim::runahead::RunaheadSim;
    use mlpsim::ValueMode;
    // A pointer chase with perfectly predictable values: plain runahead
    // gains nothing (poisoned chain), runahead + perfect VP prefetches
    // the whole chain in the first interval.
    let t = micro::pointer_chase(8, 2);
    let max_hot_pc = t.iter().map(|i| i.pc).max().unwrap();
    let mut full: Vec<Inst> = (micro::PC_BASE..=max_hot_pc)
        .step_by(4)
        .map(Inst::nop)
        .collect();
    let warm = full.len() as u64;
    full.extend_from_slice(&t);

    let plain = RunaheadSim::new(CycleSimConfig::default(), 2048).run(
        &mut SliceTrace::new(&full),
        warm,
        u64::MAX,
    );
    let vp = RunaheadSim::new(CycleSimConfig::default(), 2048)
        .with_value_prediction(ValueMode::Perfect)
        .run(&mut SliceTrace::new(&full), warm, u64::MAX);
    assert!(
        vp.cycles * 2 < plain.cycles,
        "VP-assisted runahead must collapse the chain ({} vs {})",
        vp.cycles,
        plain.cycles
    );
    assert!(
        vp.mlp() > plain.mlp() + 1.0,
        "{:.2} vs {:.2}",
        vp.mlp(),
        plain.mlp()
    );
}
