//! Property-based tests of the cycle-accurate pipeline on random traces.

use mlp_cyclesim::{CycleSim, CycleSimConfig};
use mlp_isa::SliceTrace;
use mlp_workloads::micro;
use mlpsim::IssueConfig;
use proptest::prelude::*;

fn run(cfg: CycleSimConfig, trace: &[mlp_isa::Inst]) -> mlp_cyclesim::CycleReport {
    CycleSim::new(cfg).run(&mut SliceTrace::new(trace), 0, u64::MAX)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_instruction_retires(seed in any::<u64>(), len in 1usize..300) {
        let t = micro::random_trace(seed, len);
        let r = run(CycleSimConfig::default(), &t);
        prop_assert_eq!(r.insts, len as u64);
    }

    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), len in 10usize..200) {
        let t = micro::random_trace(seed, len);
        let a = run(CycleSimConfig::default(), &t);
        let b = run(CycleSimConfig::default(), &t);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.offchip, b.offchip);
        prop_assert_eq!(a.mlp_weighted_cycles, b.mlp_weighted_cycles);
    }

    #[test]
    fn cycles_bounded_below_by_width(seed in any::<u64>(), len in 10usize..300) {
        let t = micro::random_trace(seed, len);
        let cfg = CycleSimConfig::default();
        let width = cfg.retire_width as u64;
        let r = run(cfg, &t);
        prop_assert!(r.cycles >= r.insts / width);
    }

    #[test]
    fn mlp_at_least_one_when_active(seed in any::<u64>(), len in 10usize..300) {
        let t = micro::random_trace(seed, len);
        let r = run(CycleSimConfig::default(), &t);
        if r.active_cycles > 0 {
            prop_assert!(r.mlp() >= 1.0);
        }
        prop_assert!(r.active_cycles <= r.cycles + 2 * 200);
    }

    #[test]
    fn perfect_l2_is_never_slower(seed in any::<u64>(), len in 10usize..200) {
        let t = micro::random_trace(seed, len);
        let real = run(CycleSimConfig::default(), &t);
        let perf = run(CycleSimConfig::default().perfect_l2(), &t);
        prop_assert!(perf.cycles <= real.cycles);
        prop_assert_eq!(perf.offchip.total(), 0);
    }

    #[test]
    fn longer_latency_is_never_faster(seed in any::<u64>(), len in 10usize..200) {
        let t = micro::random_trace(seed, len);
        let short = run(CycleSimConfig::default().with_mem_latency(200), &t);
        let long = run(CycleSimConfig::default().with_mem_latency(1000), &t);
        prop_assert!(long.cycles >= short.cycles);
    }

    #[test]
    fn relaxed_issue_is_rarely_slower(seed in any::<u64>(), len in 20usize..200) {
        let t = micro::random_trace(seed, len);
        let a = run(CycleSimConfig::default().with_issue(IssueConfig::A), &t);
        let c = run(CycleSimConfig::default().with_issue(IssueConfig::C), &t);
        // Allow small scheduling noise.
        prop_assert!(c.cycles <= a.cycles + 50, "C {} vs A {}", c.cycles, a.cycles);
    }
}

mod runahead_props {
    use super::*;
    use mlp_cyclesim::runahead::RunaheadSim;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn runahead_retires_every_instruction_once(seed in any::<u64>(), len in 10usize..250) {
            let t = micro::random_trace(seed, len);
            let r = RunaheadSim::new(CycleSimConfig::default(), 2048)
                .run(&mut SliceTrace::new(&t), 0, u64::MAX);
            prop_assert_eq!(r.insts, len as u64);
        }

        #[test]
        fn runahead_is_deterministic(seed in any::<u64>(), len in 10usize..200) {
            let t = micro::random_trace(seed, len);
            let a = RunaheadSim::new(CycleSimConfig::default(), 2048)
                .run(&mut SliceTrace::new(&t), 0, u64::MAX);
            let b = RunaheadSim::new(CycleSimConfig::default(), 2048)
                .run(&mut SliceTrace::new(&t), 0, u64::MAX);
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(a.offchip, b.offchip);
        }

        #[test]
        fn runahead_never_loses_demand_misses(seed in any::<u64>(), len in 10usize..200) {
            // Runahead converts some demand misses into (useful) runahead
            // prefetches, but the total off-chip work is conserved or
            // reduced (prefetched lines merge), never inflated wildly.
            let t = micro::random_trace(seed, len);
            let conv = run(CycleSimConfig::default(), &t);
            let rae = RunaheadSim::new(CycleSimConfig::default(), 2048)
                .run(&mut SliceTrace::new(&t), 0, u64::MAX);
            prop_assert!(
                rae.offchip.total() <= conv.offchip.total() + 2,
                "rae {} vs conv {}",
                rae.offchip.total(),
                conv.offchip.total()
            );
            prop_assert!(
                rae.offchip.total() + 2 >= conv.offchip.total() / 2,
                "rae {} vs conv {}",
                rae.offchip.total(),
                conv.offchip.total()
            );
        }

        #[test]
        fn runahead_is_never_catastrophically_slower(seed in any::<u64>(), len in 10usize..200) {
            // Replay overhead is bounded: runahead costs at most a small
            // constant factor over the conventional core, and usually wins.
            let t = micro::random_trace(seed, len);
            let conv = run(CycleSimConfig::default(), &t);
            let rae = RunaheadSim::new(CycleSimConfig::default(), 2048)
                .run(&mut SliceTrace::new(&t), 0, u64::MAX);
            prop_assert!(
                rae.cycles <= conv.cycles * 3 / 2 + 200,
                "rae {} vs conv {}",
                rae.cycles,
                conv.cycles
            );
        }

        #[test]
        fn smt_solo_matches_instruction_count(seed in any::<u64>(), len in 10usize..200) {
            use mlp_cyclesim::smt::SmtSim;
            let t = micro::random_trace(seed, len);
            let mut s = SliceTrace::new(&t);
            let r = SmtSim::new(CycleSimConfig::default())
                .run(vec![&mut s as &mut dyn mlp_isa::TraceSource], 0, u64::MAX);
            prop_assert_eq!(r.insts.iter().sum::<u64>(), len as u64);
        }
    }
}
