use mlp_predict::BranchStats;
use mlpsim::OffchipCounts;
use std::fmt;

/// Results of a cycle-accurate run over the measurement window.
#[derive(Clone, Debug, Default)]
pub struct CycleReport {
    /// Cycles elapsed in the measurement window.
    pub cycles: u64,
    /// Instructions retired in the measurement window.
    pub insts: u64,
    /// Useful off-chip accesses by kind (primary misses only; merged
    /// secondary misses are not separate accesses).
    pub offchip: OffchipCounts,
    /// Integral of MLP(t) over cycles with at least one useful off-chip
    /// access outstanding.
    pub mlp_weighted_cycles: u64,
    /// Cycles with at least one useful off-chip access outstanding.
    pub active_cycles: u64,
    /// Branch-predictor behaviour over the window.
    pub branch_stats: BranchStats,
    /// Integral of *all* outstanding off-chip transfers (useful accesses
    /// plus store fills) — Sorin et al.'s `fM` numerator (paper §6).
    pub fm_weighted_cycles: u64,
    /// Cycles with at least one transfer of any kind outstanding.
    pub fm_active_cycles: u64,
}

impl CycleReport {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.cycles as f64 / self.insts as f64
        }
    }

    /// Average MLP as defined in the paper's §2.1: MLP(t) averaged over
    /// the cycles where it is non-zero. Returns 1.0 when no off-chip
    /// access ever happened.
    pub fn mlp(&self) -> f64 {
        if self.active_cycles == 0 {
            1.0
        } else {
            self.mlp_weighted_cycles as f64 / self.active_cycles as f64
        }
    }

    /// Sorin et al.'s `fM`: the average number of outstanding off-chip
    /// transfers of *any* kind (including store fills), over cycles with
    /// at least one outstanding. The paper's §6 contrasts this with its
    /// useful-access MLP; comparing the two is the `fm` experiment.
    pub fn fm(&self) -> f64 {
        if self.fm_active_cycles == 0 {
            1.0
        } else {
            self.fm_weighted_cycles as f64 / self.fm_active_cycles as f64
        }
    }

    /// Off-chip accesses per 100 instructions.
    pub fn miss_rate_per_100(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            100.0 * self.offchip.total() as f64 / self.insts as f64
        }
    }
}

impl fmt::Display for CycleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles: {}  insts: {}  CPI: {:.3}",
            self.cycles,
            self.insts,
            self.cpi()
        )?;
        write!(
            f,
            "off-chip: {} (D {} / I {} / P {})  MLP: {:.3}",
            self.offchip.total(),
            self.offchip.dmiss,
            self.offchip.imiss,
            self.offchip.pmiss,
            self.mlp()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_and_mlp_ratios() {
        let r = CycleReport {
            cycles: 1000,
            insts: 500,
            mlp_weighted_cycles: 900,
            active_cycles: 600,
            ..CycleReport::default()
        };
        assert!((r.cpi() - 2.0).abs() < 1e-12);
        assert!((r.mlp() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_defaults() {
        let r = CycleReport::default();
        assert_eq!(r.cpi(), 0.0);
        assert_eq!(r.mlp(), 1.0);
        assert_eq!(r.fm(), 1.0);
        assert_eq!(r.miss_rate_per_100(), 0.0);
    }

    #[test]
    fn fm_ratio() {
        let r = CycleReport {
            fm_weighted_cycles: 300,
            fm_active_cycles: 200,
            ..CycleReport::default()
        };
        assert!((r.fm() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", CycleReport::default());
        assert!(s.contains("CPI"));
        assert!(s.contains("MLP"));
    }
}
